"""Legacy setup shim.

Exists so ``pip install -e .`` works in offline environments without
the ``wheel`` package (pip's legacy editable path runs
``setup.py develop``, which needs only setuptools).  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
