"""Count-min sketch as a CRAM program (paper §2.5, §2.6).

§2.5 lists measurement algorithms — "sketching", per-flow counters,
heavy hitters [17, 68] — among the network applications the CRAM lens
extends to.  This module builds the canonical example:

* a :class:`CountMinSketch` whose ``d`` rows are CRAM *register-match
  tables* (§2.6's stateful extension — their bits are accounted
  separately from TCAM/SRAM);
* the update touches all ``d`` rows **in one step** because the row
  lookups are data-independent — idiom I7 (step reduction) applies to
  measurement exactly as it does to RESAIL's bitmaps;
* a :class:`HeavyHitters` detector in the style of [68]: flows whose
  sketch estimate crosses a threshold are promoted into a small exact
  flow table.

The sketch also illustrates §2.6's caveat about pseudo-random keys:
hash-distributed counters are incompressible, so the compression
idioms (I1–I3) have nothing to grab — the memory is what it is.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..core.metrics import CramMetrics, measure
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import register_table

_MIX = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA6B27D4EB4F,
    0xFF51AFD7ED558CCD,
    0xD6E8FEB86659FD93,
    0xA0761D6478BD642F,
)


class CountMinSketch:
    """A d x w count-min sketch with CRAM accounting.

    Standard guarantees: estimates never under-count, and with
    ``w = ceil(e / epsilon)`` and ``d = ceil(ln(1 / delta))`` the
    over-count exceeds ``epsilon * total`` with probability at most
    ``delta``.
    """

    def __init__(self, width: int, depth: int = 4, counter_bits: int = 32,
                 key_bits: int = 64, name: str = "cms"):
        if not 1 <= depth <= len(_MIX):
            raise ValueError(f"depth must be in [1, {len(_MIX)}]")
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self.key_bits = key_bits
        self.name = name
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total = 0

    @classmethod
    def for_error(cls, epsilon: float, delta: float, **kw) -> "CountMinSketch":
        """Size the sketch from the (epsilon, delta) guarantee."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1 / delta))
        return cls(width=width, depth=max(1, depth), **kw)

    # ------------------------------------------------------------------
    def _index(self, key: int, row: int) -> int:
        mixed = (key + row + 1) * _MIX[row] & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 31
        return mixed % self.width

    def update(self, key: int, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count-min supports non-negative updates only")
        cap = (1 << self.counter_bits) - 1
        for row in range(self.depth):
            index = self._index(key, row)
            self.rows[row][index] = min(cap, self.rows[row][index] + count)
        self.total += count

    def query(self, key: int) -> int:
        return min(self.rows[row][self._index(key, row)]
                   for row in range(self.depth))

    # ------------------------------------------------------------------
    # CRAM model: one parallel update/query step + one combine step
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        registers = ["key", "estimate"] + [f"row_{r}" for r in range(self.depth)]
        prog = CramProgram(self.name, registers=registers)
        row_steps = []
        for row in range(self.depth):
            spec = register_table(
                f"{self.name}_row{row}", entries=self.width,
                register_width=self.counter_bits,
                key_selector=lambda s, row=row: self._index(s["key"], row),
                backing=lambda i, row=row: self.rows[row][i],
            )

            def act(state: dict, result, row=row) -> None:
                state[f"row_{row}"] = result

            step = Step(f"row_{row}", table=spec, reads=["key"],
                        writes=[f"row_{row}"], action=act)
            prog.add_step(step)  # no inter-row edges: I7 parallelism
            row_steps.append(step.name)

        def combine(state: dict, _result) -> None:
            state["estimate"] = min(
                state[f"row_{r}"] for r in range(self.depth)
            )

        prog.add_step(Step("combine", reads=[f"row_{r}" for r in range(self.depth)],
                           writes=["estimate"], action=combine), after=row_steps)
        return prog

    def cram_metrics(self) -> CramMetrics:
        return measure(self.cram_program())

    def register_bits(self) -> int:
        return self.depth * self.width * self.counter_bits


class HeavyHitters:
    """Threshold heavy-hitter detection via sketch + exact promotion [68].

    Flows are counted in the sketch; when a flow's estimate reaches
    ``threshold`` it is promoted to a small exact table (capacity
    bounded, evicting the coldest entry if full) whose counts are
    precise from the moment of promotion.
    """

    def __init__(self, threshold: int, sketch: Optional[CountMinSketch] = None,
                 table_capacity: int = 64):
        if threshold < 1:
            raise ValueError("threshold must be positive")
        if table_capacity < 1:
            raise ValueError("table capacity must be positive")
        self.threshold = threshold
        self.sketch = sketch or CountMinSketch(width=1024, depth=4)
        self.table_capacity = table_capacity
        self.flows: Dict[int, int] = {}

    def update(self, key: int, count: int = 1) -> None:
        if key in self.flows:
            self.flows[key] += count
            return
        self.sketch.update(key, count)
        estimate = self.sketch.query(key)
        if estimate >= self.threshold:
            if len(self.flows) >= self.table_capacity:
                coldest = min(self.flows, key=self.flows.get)
                if self.flows[coldest] >= estimate:
                    return  # table full of hotter flows; stay sketched
                del self.flows[coldest]
            self.flows[key] = estimate

    def heavy_hitters(self) -> List[Tuple[int, int]]:
        """(key, count) of detected heavy flows, hottest first."""
        return sorted(self.flows.items(), key=lambda kv: -kv[1])

    def is_heavy(self, key: int) -> bool:
        return key in self.flows
