"""In-network measurement through the CRAM lens (paper §2.5, §2.6)."""

from .countmin import CountMinSketch, HeavyHitters

__all__ = ["CountMinSketch", "HeavyHitters"]
