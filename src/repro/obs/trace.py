"""Per-lookup CRAM step tracing.

The CRAM interpreter (:func:`repro.core.interpreter.run`) optionally
reports its execution to a :class:`Tracer` sink: run begin/end, each
wave, each step, every table access, and every register write.  Two
guarantees hold:

* **Transparency** — a traced run produces the *identical* final
  state as an untraced run; the tracer only observes.  The parity
  tests drive every algorithm's CRAM program both ways and compare.
* **Near-zero cost when off** — the interpreter guards every hook
  with ``if tracer is not None``; an untraced run makes no calls and
  allocates nothing per step.  :data:`NULL_TRACER` exists for call
  sites that want an always-valid sink object.

Timestamps are **logical ticks** (one per step), not wall clock, so
traces are deterministic and diffable.  Exports:

* :meth:`RecordingTracer.to_jsonl` — one JSON object per event, the
  archival format;
* :meth:`RecordingTracer.to_chrome_trace` — the Chrome trace-event
  array format (every event carries ``name``/``ph``/``ts``/``pid``/
  ``tid``), loadable in Perfetto or ``chrome://tracing``: lookups are
  processes, waves are threads, steps are duration events, and table
  accesses are instant events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def _jsonable(value: Any) -> Any:
    """Coerce an arbitrary lookup result into something JSON-safe."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class TraceEvent:
    """One observed fact about a CRAM execution."""

    kind: str          # run_begin | wave | step | table | write | run_end
    tick: int          # logical timestamp (steps executed so far)
    lookup: int        # 0-based index of the traced run
    wave: Optional[int] = None
    step: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        doc: Dict[str, Any] = {
            "kind": self.kind,
            "tick": self.tick,
            "lookup": self.lookup,
        }
        if self.wave is not None:
            doc["wave"] = self.wave
        if self.step is not None:
            doc["step"] = self.step
        if self.data:
            doc["data"] = {k: _jsonable(v) for k, v in sorted(self.data.items())}
        return doc


class Tracer:
    """No-op sink; subclass and override what you need.

    The interpreter calls these hooks only when a tracer was passed,
    so the base class doubles as an always-safe null implementation.
    """

    def on_run_begin(self, program, state: dict) -> None:
        pass

    def on_wave_begin(self, wave: int, steps: List[str]) -> None:
        pass

    def on_step_begin(self, wave: int, step, state: dict) -> None:
        pass

    def on_table_access(self, step_name: str, table, key, result) -> None:
        pass

    def on_step_end(self, wave: int, step, writes: Dict[str, Any]) -> None:
        pass

    def on_run_end(self, state: dict) -> None:
        pass


#: Shared no-op sink for call sites that want a non-None tracer.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Records every hook into a list of :class:`TraceEvent`.

    One tracer may observe several runs (e.g. ``repro trace`` pushing
    a batch of addresses through an algorithm); each run becomes one
    "process" in the Chrome trace.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._tick = 0
        self._lookup = -1
        self._current_step_tick = 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_run_begin(self, program, state: dict) -> None:
        self._lookup += 1
        self.events.append(TraceEvent(
            "run_begin", self._tick, self._lookup,
            data={"program": getattr(program, "name", "?"),
                  "registers": {k: v for k, v in sorted(state.items())
                                if v is not None}},
        ))

    def on_wave_begin(self, wave: int, steps: List[str]) -> None:
        self.events.append(TraceEvent(
            "wave", self._tick, self._lookup, wave=wave,
            data={"steps": list(steps)},
        ))

    def on_step_begin(self, wave: int, step, state: dict) -> None:
        self._current_step_tick = self._tick
        reads = {name: state.get(name) for name in sorted(step.reads)}
        self.events.append(TraceEvent(
            "step", self._tick, self._lookup, wave=wave, step=step.name,
            data={"reads": reads,
                  "table": step.table.name if step.table is not None else None},
        ))
        self._tick += 1

    def on_table_access(self, step_name: str, table, key, result) -> None:
        self.events.append(TraceEvent(
            "table", self._current_step_tick, self._lookup, step=step_name,
            data={"table": table.name, "match_kind": table.match_kind.value,
                  "key": key, "result": result},
        ))

    def on_step_end(self, wave: int, step, writes: Dict[str, Any]) -> None:
        self.events.append(TraceEvent(
            "write", self._current_step_tick, self._lookup,
            wave=wave, step=step.name, data={"writes": writes},
        ))

    def on_run_end(self, state: dict) -> None:
        self.events.append(TraceEvent(
            "run_end", self._tick, self._lookup,
            data={"final": {k: v for k, v in sorted(state.items())
                            if v is not None}},
        ))
        self._tick += 1  # gap between runs keeps processes disjoint

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One event per line — the archival/replay format."""
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, default=_jsonable)
            for e in self.events
        ) + ("\n" if self.events else "")

    def to_chrome_trace(self) -> List[dict]:
        """The Chrome trace-event array (open in Perfetto).

        Every event carries the required ``name``/``ph``/``ts``/``pid``/
        ``tid`` keys; ``ts`` is the logical tick (rendered as µs).
        """
        out: List[dict] = []
        run_start: Dict[int, int] = {}
        for event in self.events:
            pid = event.lookup
            if event.kind == "run_begin":
                run_start[pid] = event.tick
                out.append({
                    "name": f"lookup#{pid}", "ph": "B", "ts": event.tick,
                    "pid": pid, "tid": 0,
                    "args": event.to_dict().get("data", {}),
                })
            elif event.kind == "run_end":
                out.append({
                    "name": f"lookup#{pid}", "ph": "E", "ts": event.tick,
                    "pid": pid, "tid": 0,
                    "args": event.to_dict().get("data", {}),
                })
            elif event.kind == "step":
                out.append({
                    "name": event.step, "ph": "X", "ts": event.tick, "dur": 1,
                    "pid": pid, "tid": (event.wave or 0) + 1,
                    "args": event.to_dict().get("data", {}),
                })
            elif event.kind == "table":
                out.append({
                    "name": f"{event.data.get('table')}[lookup]",
                    "ph": "i", "ts": event.tick, "pid": pid,
                    "tid": 0, "s": "p",
                    "args": event.to_dict().get("data", {}),
                })
            elif event.kind == "write":
                out.append({
                    "name": f"{event.step}:commit", "ph": "i",
                    "ts": event.tick, "pid": pid,
                    "tid": (event.wave or 0) + 1, "s": "t",
                    "args": event.to_dict().get("data", {}),
                })
            # "wave" events are structural; the tid grouping carries them.
        return out

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1,
                      sort_keys=True, default=_jsonable)
            handle.write("\n")


def validate_chrome_trace(events: List[dict]) -> None:
    """Raise ``ValueError`` unless ``events`` is a valid trace-event array.

    Checks the schema the acceptance tests rely on: a list of objects
    each carrying ``name`` (str), ``ph`` (str), and numeric ``ts``,
    ``pid``, ``tid``.
    """
    if not isinstance(events, list):
        raise ValueError("chrome trace must be a JSON array")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i}: not an object")
        for field_name, types in (
            ("name", str), ("ph", str),
            ("ts", (int, float)), ("pid", (int, float)), ("tid", (int, float)),
        ):
            if field_name not in event:
                raise ValueError(f"event {i}: missing {field_name!r}")
            if not isinstance(event[field_name], types):
                raise ValueError(
                    f"event {i}: {field_name!r} has type "
                    f"{type(event[field_name]).__name__}"
                )
