"""Request-lifecycle spans for the serving stack.

Where :mod:`repro.obs.trace` records a lookup's journey across SRAM
banks, this module records a *request's* journey across threads and
processes: coalescer enqueue, batch formation, queue wait, gate
acquisition, worker execute, scatter — and the failure outcomes
(timeout, shed, brownout, retry after a worker death).  The serving
layer stamps wall-clock timestamps as the request moves; spans are
assembled *post hoc* when the request resolves, so there is never an
"open" span dangling across a thread or a killed worker process.

Determinism contract: IDs and the sampling decision derive purely from
the request sequence number and the serving epoch (a seeded
multiplicative hash — no ``random.Random`` allocation on the hot
path), so two runs with the same seeds sample the same requests and
emit the same IDs.  Timestamps are wall clock and therefore live only
in exports (JSONL, Chrome trace, timings) — never in the registry's
deterministic sections; the registry only counts spans
(``repro_server_spans_total`` by phase, sampled/unsampled request
totals), which *is* byte-stable.

Exports:

* :meth:`SpanRecorder.to_jsonl` — one span per line, the archival
  format (``repro serve --span-jsonl``);
* :meth:`SpanRecorder.to_chrome_trace` — the Chrome trace-event array
  (``repro serve --span-chrome``, opens in ``chrome://tracing`` /
  Perfetto): request root spans render one lane per request under
  pid 0, batch-phase spans render per worker pid;
* :func:`check_span_metrics_consistency` — proves the span-derived
  request-latency histogram agrees with the ``repro_server_request``
  registry timer on count, sum, and bucket counts (the acceptance
  gate for "spans tell the same story as the metrics").
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

from .registry import LATENCY_BUCKETS_S, MetricsRegistry, _format_bound
from .trace import validate_chrome_trace

__all__ = [
    "DEFAULT_SPAN_SAMPLE_RATE",
    "SPAN_PHASES",
    "SpanRecord",
    "SpanRecorder",
    "span_sampled",
    "trace_id_for",
    "batch_trace_id_for",
    "check_span_metrics_consistency",
]

#: Default head-sampling rate for detailed span records (1 in 16).
#: SLO percentile tracking observes *every* request regardless — the
#: rate only gates the per-phase span detail, keeping the serving
#: overhead within the bench gate.
DEFAULT_SPAN_SAMPLE_RATE = 0.0625

#: The span phases the serving path emits, in lifecycle order.
SPAN_PHASES = (
    "request",      # submit -> last scatter (the root span)
    "coalesce",     # first address entered the open batch -> batch cut
    "queue_wait",   # batch cut -> a worker picked it up
    "gate",         # worker waiting on the commit gate's read side
    "execute",      # engine.lookup_batch inside the gate
    "scatter",      # answers delivered back to the request futures
)

#: Outcome marker spans (zero-duration events on the request trace).
OUTCOME_PHASES = ("timeout", "shed", "brownout_hit", "brownout_shed",
                  "retry", "error")


def span_sampled(seq: int, rate: float, seed: int = 0) -> bool:
    """Deterministic head-based sampling decision for request ``seq``.

    A seeded multiplicative hash (no allocation, stable across runs
    and Python versions) — cheap enough to call on every submit.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    h = (seq * 2654435761 + seed * 40503 + 0x9E3779B9) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    return h < rate * 4294967296.0


def trace_id_for(seq: int, epoch: int = 0) -> str:
    """The request trace ID: pure function of (seq, epoch)."""
    return f"req-{epoch:04x}-{seq:012x}"


def batch_trace_id_for(batch_seq: int, epoch: int = 0) -> str:
    """The batch trace ID: pure function of (batch seq, epoch)."""
    return f"bat-{epoch:04x}-{batch_seq:012x}"


class SpanRecord:
    """One closed span: a named interval on a trace, plus attributes."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start_s", "end_s", "attrs")

    def __init__(self, trace_id: str, span_id: str, name: str,
                 start_s: float, end_s: float,
                 parent_id: Optional[str] = None,
                 attrs: Optional[dict] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s = end_s
        self.attrs = attrs or {}

    @property
    def dur_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        doc = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "dur_s": self.dur_s,
        }
        if self.parent_id is not None:
            doc["parent_id"] = self.parent_id
        if self.attrs:
            doc["attrs"] = dict(sorted(self.attrs.items()))
        return doc


class SpanRecorder:
    """Bounded, thread-safe store of closed spans with exporters.

    ``capacity`` bounds memory (a ring buffer: old spans fall off);
    ``sample_rate`` is the head-based knob consulted by
    :meth:`sampled` — the serving layer asks once per request at
    submit time and stamps the decision on the handle, so every span
    of one request shares its fate (whole traces, never fragments).
    """

    def __init__(
        self,
        *,
        sample_rate: float = DEFAULT_SPAN_SAMPLE_RATE,
        capacity: int = 65536,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        server: str = "server",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = sample_rate
        self.seed = seed
        self.server = server
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._spans_total = None
        self._sampled_total = None
        self._unsampled_total = None
        if registry is not None:
            self._spans_total = registry.counter(
                "repro_server_spans_total",
                "Request-lifecycle spans recorded, by phase.")
            self._sampled_total = registry.counter(
                "repro_server_span_requests_sampled_total",
                "Requests picked by the head-based span sampler.")
            self._unsampled_total = registry.counter(
                "repro_server_span_requests_unsampled_total",
                "Requests skipped by the head-based span sampler.")

    # -- sampling ------------------------------------------------------
    def sampled(self, seq: int) -> bool:
        """The (counted) head-sampling decision for request ``seq``."""
        decision = span_sampled(seq, self.sample_rate, self.seed)
        if decision:
            if self._sampled_total is not None:
                self._sampled_total.inc(1, server=self.server)
        elif self._unsampled_total is not None:
            self._unsampled_total.inc(1, server=self.server)
        return decision

    # -- recording -----------------------------------------------------
    def record(self, trace_id: str, name: str, start_s: float,
               end_s: float, *, parent_id: Optional[str] = None,
               **attrs) -> SpanRecord:
        """Append one closed span (clamps a negative duration to 0)."""
        if end_s < start_s:
            end_s = start_s
        span_id = f"{trace_id}:{name}"
        retry = attrs.get("retry")
        if retry:
            span_id = f"{span_id}:{retry}"
        span = SpanRecord(trace_id, span_id, name, start_s, end_s,
                          parent_id=parent_id, attrs=attrs)
        with self._lock:
            self._spans.append(span)
        if self._spans_total is not None:
            self._spans_total.inc(1, server=self.server, phase=name)
        return span

    def event(self, trace_id: str, name: str, at_s: float,
              *, parent_id: Optional[str] = None, **attrs) -> SpanRecord:
        """A zero-duration outcome marker (timeout, shed, retry...)."""
        return self.record(trace_id, name, at_s, at_s,
                           parent_id=parent_id, **attrs)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self, name: Optional[str] = None) -> List[SpanRecord]:
        with self._lock:
            out = list(self._spans)
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def tail(self, n: int = 100) -> List[dict]:
        """The most recent ``n`` spans as dicts (oldest first) — the
        payload of the status endpoint's ``/spans``."""
        with self._lock:
            out = list(self._spans)[-max(0, n):]
        return [s.to_dict() for s in out]

    def counts(self) -> Dict[str, int]:
        """Span counts by phase (for summaries and sidecars)."""
        out: Dict[str, int] = {}
        for span in self.spans():
            out[span.name] = out.get(span.name, 0) + 1
        return dict(sorted(out.items()))

    def phase_histogram(self, name: str) -> dict:
        """Span-derived latency histogram for one phase, shaped like
        the registry's ``_Timing.to_dict`` (the consistency check
        compares the two directly)."""
        buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)
        count, total = 0, 0.0
        for span in self.spans(name):
            dur = span.dur_s
            count += 1
            total += dur
            for i, bound in enumerate(LATENCY_BUCKETS_S):
                if dur <= bound:
                    buckets[i] += 1
                    break
            else:
                buckets[-1] += 1
        bounds = [_format_bound(b) for b in LATENCY_BUCKETS_S] + ["+Inf"]
        return {"count": count, "total_s": total,
                "buckets": dict(zip(bounds, buckets))}

    # -- exports -------------------------------------------------------
    def to_jsonl(self) -> str:
        spans = self.spans()
        return "\n".join(
            json.dumps(s.to_dict(), sort_keys=True) for s in spans
        ) + ("\n" if spans else "")

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def to_chrome_trace(self) -> List[dict]:
        """The Chrome trace-event array.

        Layout: request root spans get one lane per request under
        pid 0 (``tid`` = request seq); batch-phase spans group under
        one pid per worker (``tid`` = batch seq), so the per-worker
        pipeline (queue wait -> gate -> execute -> scatter) reads as a
        stacked timeline.  Zero-duration outcome markers render as
        instant events.  ``ts`` is microseconds, as the format wants.
        """
        spans = self.spans()
        if not spans:
            return []
        t0 = min(s.start_s for s in spans)
        out: List[dict] = []
        for span in spans:
            attrs = span.attrs
            if "worker" in attrs:
                pid = 1 + int(attrs["worker"] or 0)
                tid = int(attrs.get("batch", 0) or 0)
            else:
                pid = 0
                tid = int(attrs.get("seq", 0) or 0)
            ts = (span.start_s - t0) * 1e6
            args = {"trace_id": span.trace_id}
            args.update(sorted(attrs.items()))
            if span.end_s == span.start_s:
                out.append({"name": span.name, "ph": "i", "ts": ts,
                            "pid": pid, "tid": tid, "s": "t",
                            "args": args})
            else:
                out.append({"name": span.name, "ph": "X", "ts": ts,
                            "dur": span.dur_s * 1e6,
                            "pid": pid, "tid": tid, "args": args})
        validate_chrome_trace(out)
        return out

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")


def check_span_metrics_consistency(
    recorder: SpanRecorder,
    registry: MetricsRegistry,
    *,
    phase: str = "request",
    timer: str = "repro_server_request",
    server: str = "server",
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-9,
) -> dict:
    """Do span-derived latencies agree with the registry timers?

    The server records the root request span with the *same* measured
    duration it feeds the ``repro_server_request`` timer, so with
    ``sample_rate=1.0`` the two must agree exactly on count, sum, and
    per-bucket counts.  Returns a report dict with ``ok`` plus both
    sides; callers (tests, the serve CLI) assert on ``ok``.
    """
    from_spans = recorder.phase_histogram(phase)
    key = f'{timer}{{server="{server}"}}'
    from_timer = registry.timings_snapshot().get(key)
    report = {
        "phase": phase,
        "timer": key,
        "spans": from_spans,
        "timings": from_timer,
        "ok": False,
        "mismatches": [],
    }
    if from_timer is None:
        report["mismatches"].append(f"timer series {key!r} not found")
        return report
    if from_spans["count"] != from_timer["count"]:
        report["mismatches"].append(
            f"count: spans={from_spans['count']} "
            f"timer={from_timer['count']}")
    span_sum, timer_sum = from_spans["total_s"], from_timer["total_s"]
    if abs(span_sum - timer_sum) > max(abs_tol,
                                       rel_tol * max(abs(span_sum),
                                                     abs(timer_sum))):
        report["mismatches"].append(
            f"sum: spans={span_sum!r} timer={timer_sum!r}")
    if from_spans["buckets"] != from_timer["buckets"]:
        report["mismatches"].append(
            f"buckets: spans={from_spans['buckets']} "
            f"timer={from_timer['buckets']}")
    report["ok"] = not report["mismatches"]
    return report
