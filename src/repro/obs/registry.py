"""Metrics registry: counters, gauges, histograms — plus wall-clock timings.

The registry is the one place the package is allowed to count things
for telemetry.  It is split into two strictly separated halves:

* **Deterministic instruments** — :class:`Counter`, :class:`Gauge`,
  :class:`Histogram`.  Their values derive only from the workload (ops
  applied, bits allocated, batch sizes), so two runs with the same
  seeds produce byte-identical :meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.render_prometheus` output.  Tests assert on
  these.
* **Timings** — created with :meth:`MetricsRegistry.timer` /
  :meth:`MetricsRegistry.observe_seconds`, backed by
  ``time.perf_counter``.  Wall clock is inherently non-deterministic,
  so timings are *excluded* from snapshots and from the default
  Prometheus rendering; they live in their own
  :meth:`MetricsRegistry.timings_snapshot` section and the
  machine-readable JSON sidecars.

The determinism contract mirrors :mod:`repro.control.events`: nothing
in a deterministic section may depend on the clock, the pid, or hash
randomization.  Label values are coerced to strings and label names
are sorted, so rendering order is stable by construction.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Label set in canonical form: name-sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Bucket bounds (seconds) for latency timings, log-spaced 1 µs – 10 s.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """Bucket bound rendering: stable and human-readable ("0.001", "16")."""
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


class Counter:
    """A monotonically increasing family of per-label values."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._values: Dict[LabelKey, Number] = {}

    def inc(self, amount: Number = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> Number:
        return self._values.get(_label_key(labels), 0)

    def items(self) -> Iterator[Tuple[LabelKey, Number]]:
        return iter(sorted(self._values.items()))

    def samples(self) -> List[Tuple[str, str]]:
        return [(self.name + _render_labels(key), _format_value(v))
                for key, v in self.items()]


class Gauge(Counter):
    """A settable family of per-label values (health states, sizes)."""

    kind = "gauge"

    def set(self, value: Number, **labels: object) -> None:
        self._values[_label_key(labels)] = value

    def inc(self, amount: Number = 1, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: Number = 1, **labels: object) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """A fixed-bucket histogram family (Prometheus ``le`` semantics).

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket is always appended.  An observation lands
    in the first bucket whose bound is **>=** the value (cumulative
    rendering sums upward, as Prometheus requires).
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float], help_text: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: buckets must strictly increase")
        if bounds and bounds[-1] == float("inf"):
            bounds = bounds[:-1]
        self.name = name
        self.help = help_text
        self.bounds = bounds
        # per label-key: ([per-bucket counts..., +Inf count], sum, count)
        self._series: Dict[LabelKey, List] = {}

    def observe(self, value: Number, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [[0] * (len(self.bounds) + 1), 0, 0]
        counts, _total, _n = series
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        series[1] += value
        series[2] += 1

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def sum(self, **labels: object) -> Number:
        series = self._series.get(_label_key(labels))
        return series[1] if series else 0

    def bucket_counts(self, **labels: object) -> Dict[str, int]:
        """Non-cumulative per-bucket counts, keyed by rendered bound."""
        series = self._series.get(_label_key(labels))
        counts = series[0] if series else [0] * (len(self.bounds) + 1)
        bounds = [_format_bound(b) for b in self.bounds] + ["+Inf"]
        return dict(zip(bounds, counts))

    def items(self) -> Iterator[Tuple[LabelKey, List]]:
        return iter(sorted(self._series.items()))

    def samples(self) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for key, (counts, total, n) in self.items():
            cumulative = 0
            for bound, bucket in zip(self.bounds, counts):
                cumulative += bucket
                out.append((
                    self.name + "_bucket"
                    + _render_labels(key, [("le", _format_bound(bound))]),
                    _format_value(cumulative),
                ))
            out.append((
                self.name + "_bucket" + _render_labels(key, [("le", "+Inf")]),
                _format_value(cumulative + counts[-1]),
            ))
            out.append((self.name + "_sum" + _render_labels(key),
                        _format_value(total)))
            out.append((self.name + "_count" + _render_labels(key),
                        _format_value(n)))
        return out


class _Timing:
    """One wall-clock series: count/total/min/max + latency buckets."""

    __slots__ = ("count", "total_s", "min_s", "max_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        self.buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.min_s = seconds if self.min_s is None else min(self.min_s, seconds)
        self.max_s = seconds if self.max_s is None else max(self.max_s, seconds)
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if seconds <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        bounds = [_format_bound(b) for b in LATENCY_BUCKETS_S] + ["+Inf"]
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "buckets": dict(zip(bounds, self.buckets)),
        }


class _TimerContext:
    """``with registry.timer("phase"):`` — observes elapsed seconds."""

    __slots__ = ("_timing", "_start")

    def __init__(self, timing: _Timing):
        self._timing = timing
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timing.observe(perf_counter() - self._start)


class MetricsRegistry:
    """A collection of named metric families plus a timings section."""

    def __init__(self) -> None:
        self._families: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._timings: Dict[Tuple[str, LabelKey], _Timing] = {}

    # ------------------------------------------------------------------
    # Family constructors (idempotent: same name returns same family)
    # ------------------------------------------------------------------
    def _register(self, family):
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family):
                raise ValueError(
                    f"metric {family.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter(name, help_text))

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge(name, help_text))

    def histogram(self, name: str, buckets: Sequence[float],
                  help_text: str = "") -> Histogram:
        return self._register(Histogram(name, buckets, help_text))

    def get(self, name: str):
        return self._families.get(name)

    # ------------------------------------------------------------------
    # Timings (wall clock — never part of deterministic output)
    # ------------------------------------------------------------------
    def timer(self, name: str, **labels: object) -> _TimerContext:
        return _TimerContext(self._timing(name, **labels))

    def observe_seconds(self, name: str, seconds: float, **labels: object) -> None:
        self._timing(name, **labels).observe(seconds)

    def _timing(self, name: str, **labels: object) -> _Timing:
        key = (name, _label_key(labels))
        timing = self._timings.get(key)
        if timing is None:
            timing = self._timings[key] = _Timing()
        return timing

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic state of every counter/gauge/histogram.

        No timings, no timestamps: byte-stable for seeded runs.
        """
        counters: Dict[str, dict] = {}
        gauges: Dict[str, dict] = {}
        histograms: Dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            if isinstance(family, Histogram):
                histograms[name] = {
                    _render_labels(key): {
                        "buckets": dict(zip(
                            [_format_bound(b) for b in family.bounds] + ["+Inf"],
                            counts,
                        )),
                        "sum": total,
                        "count": n,
                    }
                    for key, (counts, total, n) in family.items()
                }
            elif isinstance(family, Gauge):
                gauges[name] = {_render_labels(k): v for k, v in family.items()}
            else:
                counters[name] = {_render_labels(k): v for k, v in family.items()}
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def timings_snapshot(self) -> dict:
        """Wall-clock section: per-phase latency stats (non-deterministic)."""
        return {
            name + _render_labels(key): timing.to_dict()
            for (name, key), timing in sorted(self._timings.items())
        }

    def render_prometheus(self, include_timings: bool = False) -> str:
        """Prometheus text exposition, deterministically ordered.

        The default output contains only the deterministic instruments;
        pass ``include_timings=True`` to append the wall-clock section
        (marked as such) for human consumption.
        """
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for sample, value in family.samples():
                lines.append(f"{sample} {value}")
        if include_timings and self._timings:
            lines.append("# --- wall-clock timings (non-deterministic) ---")
            for series, stats in self.timings_snapshot().items():
                lines.append(f"# TYPE {series.split('{')[0]}_seconds summary")
                lines.append(f"{series}_seconds_count {stats['count']}")
                lines.append(f"{series}_seconds_sum {stats['total_s']:.6f}")
        return "\n".join(lines) + "\n"

    def to_json(self, include_timings: bool = True, indent: int = 2) -> str:
        """JSON document: deterministic metrics + (optionally) timings."""
        doc = {"metrics": self.snapshot()}
        if include_timings:
            doc["timings"] = self.timings_snapshot()
        return json.dumps(doc, indent=indent, sort_keys=True)
