"""Memory-access accounting for the behavioural memory simulators.

Every TCAM/SRAM/d-left structure in :mod:`repro.memory` owns an
:class:`AccessStats` and bumps its plain-integer counters on each
search (read) and mutation (write).  The increments are cheap enough
to leave permanently on; the *per-key hit tally* — the FIB-caching
signal (which prefixes absorb the traffic, how skewed is the access
distribution) — allocates a ``Counter`` and is therefore opt-in via
:meth:`AccessStats.enable_hit_tracking`.

:func:`collect_access_stats` walks an algorithm instance and gathers
the stats of every memory structure it holds, so ``repro lookup
--stats`` and ``repro metrics`` can report hot tables without each
algorithm enumerating its internals.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Any, Iterable, List, Optional, Tuple

from .registry import MetricsRegistry


class AccessStats:
    """Read/write/hit/miss counters for one memory structure."""

    __slots__ = ("name", "reads", "writes", "hits", "misses", "hit_tally")

    def __init__(self, name: str):
        self.name = name
        self.reads = 0
        self.writes = 0
        self.hits = 0
        self.misses = 0
        #: ``None`` until enabled; then key -> hit count.
        self.hit_tally: Optional[TallyCounter] = None

    def enable_hit_tracking(self) -> None:
        if self.hit_tally is None:
            self.hit_tally = TallyCounter()

    def reset(self) -> None:
        self.reads = self.writes = self.hits = self.misses = 0
        if self.hit_tally is not None:
            self.hit_tally = TallyCounter()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.reads if self.reads else 0.0

    def snapshot(self) -> dict:
        doc = {
            "name": self.name,
            "reads": self.reads,
            "writes": self.writes,
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.hit_tally is not None:
            doc["hit_tally"] = {
                _render_key(key): count
                for key, count in sorted(
                    self.hit_tally.items(),
                    key=lambda kv: (-kv[1], _render_key(kv[0])),
                )
            }
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AccessStats({self.name}: r={self.reads} w={self.writes} "
                f"h={self.hits} m={self.misses})")


def _render_key(key: Any) -> str:
    """A stable, readable rendering of a tally key."""
    if isinstance(key, tuple):
        return "/".join(_render_key(part) for part in key)
    if isinstance(key, int):
        return format(key, "#x")
    return str(key)


def collect_access_stats(obj: Any) -> List[AccessStats]:
    """All :class:`AccessStats` reachable from an object's attributes.

    Looks one container level deep (dicts/lists/tuples of structures),
    which covers every algorithm in this package (e.g. RESAIL's
    ``bitmaps`` dict, BSIC's per-level table lists).  Order is
    deterministic: attribute name, then container key/index.
    """
    found: List[AccessStats] = []
    seen: set = set()

    def visit(candidate: Any) -> None:
        stats = getattr(candidate, "stats", None)
        if isinstance(stats, AccessStats) and id(stats) not in seen:
            seen.add(id(stats))
            found.append(stats)

    attributes = getattr(obj, "__dict__", None)
    if attributes is None:
        return found
    for name in sorted(attributes):
        value = attributes[name]
        visit(value)
        if isinstance(value, dict):
            for key in sorted(value, key=str):
                visit(value[key])
        elif isinstance(value, (list, tuple)):
            for item in value:
                visit(item)
    return found


def enable_hit_tracking(obj: Any) -> List[AccessStats]:
    """Turn on per-key hit tallies for every structure in ``obj``."""
    stats_list = collect_access_stats(obj)
    for stats in stats_list:
        stats.enable_hit_tracking()
    return stats_list


def export_access_stats(
    registry: MetricsRegistry,
    stats_iterable: Iterable[AccessStats],
    **labels: object,
) -> None:
    """Mirror access counters into a registry (deterministic values)."""
    reads = registry.counter(
        "repro_table_reads_total", "Memory-structure read accesses.")
    writes = registry.counter(
        "repro_table_writes_total", "Memory-structure write accesses.")
    hits = registry.counter(
        "repro_table_hits_total", "Reads that matched an entry.")
    misses = registry.counter(
        "repro_table_misses_total", "Reads that matched nothing.")
    for stats in stats_iterable:
        reads.inc(stats.reads, table=stats.name, **labels)
        writes.inc(stats.writes, table=stats.name, **labels)
        hits.inc(stats.hits, table=stats.name, **labels)
        misses.inc(stats.misses, table=stats.name, **labels)


def hot_table_report(stats_iterable: Iterable[AccessStats],
                     top_keys: int = 5) -> str:
    """A human-readable hot-table / access-skew summary."""
    stats_list = sorted(stats_iterable, key=lambda s: (-s.reads, s.name))
    if not stats_list:
        return "no instrumented tables"
    lines = ["table accesses (hottest first):"]
    for stats in stats_list:
        lines.append(
            f"  {stats.name}: reads={stats.reads} writes={stats.writes} "
            f"hits={stats.hits} misses={stats.misses} "
            f"hit_rate={stats.hit_rate:.2f}"
        )
        if stats.hit_tally:
            total = sum(stats.hit_tally.values())
            ranked = sorted(stats.hit_tally.items(),
                            key=lambda kv: (-kv[1], _render_key(kv[0])))
            for key, count in ranked[:top_keys]:
                lines.append(
                    f"    {_render_key(key)}: {count} hits "
                    f"({count / total:.0%} of table hits)"
                )
    return "\n".join(lines)


def access_skew(stats: AccessStats) -> Optional[float]:
    """Fraction of hits landing on the single hottest key (0..1).

    ``None`` when hit tracking is off or nothing hit.  A value near
    1.0 means one prefix absorbs the traffic — the FIB-caching signal.
    """
    if not stats.hit_tally:
        return None
    total = sum(stats.hit_tally.values())
    return max(stats.hit_tally.values()) / total if total else None
