"""A stdlib-only live status surface for a running server.

``repro serve --status-port N`` starts one of these next to the
:class:`~repro.server.LookupServer`; it answers on a background
thread-per-request HTTP server (``http.server`` — no dependencies)
while serving continues:

==============  ====================================================
``/``           tiny JSON index of the endpoints
``/metrics``    Prometheus text exposition (``?timings=1`` appends
                the wall-clock section)
``/health``     serving health state + transition count (JSON)
``/epoch``      the serving epoch (JSON)
``/slo``        the SLO tracker's report: per-phase window
                percentiles, targets, breaches (JSON)
``/spans``      recent-span tail (``?n=200``, JSON array)
==============  ====================================================

The server is wired with callables, not a ``LookupServer`` reference,
so it composes with anything (tests feed it lambdas).  Bind port 0
for an ephemeral port; :attr:`StatusServer.port` reports the real one
after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlparse

from .registry import MetricsRegistry

__all__ = ["StatusServer"]


class StatusServer:
    """Serve ``/metrics``, ``/health``, ``/epoch``, ``/slo``, ``/spans``."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Optional[Callable[[], dict]] = None,
        epoch: Optional[Callable[[], int]] = None,
        spans: Optional[Callable[[int], list]] = None,
        slo: Optional[Callable[[], dict]] = None,
    ):
        self.registry = registry
        self._host = host
        self._want_port = port
        self._health = health
        self._epoch = epoch
        self._spans = spans
        self._slo = slo
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> Optional[int]:
        """The bound port (None before :meth:`start`)."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    @property
    def url(self) -> Optional[str]:
        if self._httpd is None:
            return None
        return f"http://{self._host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "StatusServer":
        if self._httpd is not None:
            return self
        status = self

        class _Handler(BaseHTTPRequestHandler):
            # Quiet: serving stats belong in the registry, not stderr.
            def log_message(self, format, *args):  # noqa: A002
                pass

            def do_GET(self):  # noqa: N802 — http.server API
                status._respond(self)

        self._httpd = ThreadingHTTPServer(
            (self._host, self._want_port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-status",
            daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _respond(self, handler: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(handler.path)
        route = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        try:
            if route == "/":
                self._send_json(handler, {
                    "endpoints": ["/metrics", "/health", "/epoch",
                                  "/slo", "/spans"]})
            elif route == "/metrics":
                timings = query.get("timings", ["0"])[0] not in ("0", "")
                body = self.registry.render_prometheus(
                    include_timings=timings)
                self._send(handler, 200, body.encode("utf-8"),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif route == "/health":
                doc = self._health() if self._health is not None else {}
                self._send_json(handler, doc)
            elif route == "/epoch":
                epoch = self._epoch() if self._epoch is not None else 0
                self._send_json(handler, {"epoch": epoch})
            elif route == "/slo":
                doc = self._slo() if self._slo is not None else {}
                self._send_json(handler, doc)
            elif route == "/spans":
                try:
                    n = int(query.get("n", ["100"])[0])
                except ValueError:
                    n = 100
                tail = self._spans(n) if self._spans is not None else []
                self._send_json(handler, tail)
            else:
                self._send_json(handler, {"error": f"no route {route!r}"},
                                status=404)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 — a 500, not a crash
            try:
                self._send_json(handler, {"error": repr(exc)}, status=500)
            except Exception:  # pragma: no cover - socket already dead
                pass

    @staticmethod
    def _send(handler, status: int, body: bytes,
              content_type: str) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def _send_json(self, handler, doc, status: int = 200) -> None:
        body = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode(
            "utf-8")
        self._send(handler, status, body, "application/json")
