"""Telemetry for the reproduction: metrics, tracing, access accounting.

The paper's whole argument is resource accounting; this package makes
the accounting *observable* at run time instead of only as end-of-run
totals.  Three pieces, used by every layer:

* :mod:`repro.obs.registry` — counters/gauges/histograms with labels
  and deterministic Prometheus/JSON output, plus a wall-clock timing
  facility kept strictly out of the deterministic sections;
* :mod:`repro.obs.trace` — per-lookup CRAM step tracing for the
  interpreter, exportable as JSONL and Chrome trace-event JSON;
* :mod:`repro.obs.accounting` — per-structure read/write counters and
  per-prefix hit tallies for the TCAM/SRAM/d-left simulators;
* :mod:`repro.obs.spans` — request-lifecycle spans for the serving
  stack (deterministic IDs, head-based sampling, JSONL/Chrome-trace
  export, span<->metrics consistency check);
* :mod:`repro.obs.slo` — sliding-window p50/p99/p999 latency
  estimators over the span phases, with SLO breach detection;
* :mod:`repro.obs.status` — a stdlib-only HTTP status surface
  (``/metrics``, ``/health``, ``/epoch``, ``/slo``, ``/spans``);
* :mod:`repro.obs.trajectory` — the benchmark trajectory tracker
  (``BENCH_history.jsonl`` + regression report).

Determinism contract: this is the **only** package under ``repro``
allowed to touch ``time.*`` (see ``tests/test_telemetry_audit.py``).
"""

from .accounting import (
    AccessStats,
    access_skew,
    collect_access_stats,
    enable_hit_tracking,
    export_access_stats,
    hot_table_report,
)
from .clock import Clock, FakeClock, MonotonicClock, TimerHandle
from .registry import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .slo import SLO_QUANTILES, SloConfig, SloTracker, window_percentile
from .spans import (
    DEFAULT_SPAN_SAMPLE_RATE,
    SPAN_PHASES,
    SpanRecord,
    SpanRecorder,
    batch_trace_id_for,
    check_span_metrics_consistency,
    span_sampled,
    trace_id_for,
)
from .status import StatusServer
from .trace import (
    NULL_TRACER,
    RecordingTracer,
    TraceEvent,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_SPAN_SAMPLE_RATE",
    "SPAN_PHASES",
    "SLO_QUANTILES",
    "SloConfig",
    "SloTracker",
    "SpanRecord",
    "SpanRecorder",
    "StatusServer",
    "batch_trace_id_for",
    "check_span_metrics_consistency",
    "span_sampled",
    "trace_id_for",
    "window_percentile",
    "AccessStats",
    "access_skew",
    "collect_access_stats",
    "enable_hit_tracking",
    "export_access_stats",
    "hot_table_report",
    "Clock",
    "FakeClock",
    "LATENCY_BUCKETS_S",
    "MonotonicClock",
    "TimerHandle",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "validate_chrome_trace",
]
