"""Telemetry for the reproduction: metrics, tracing, access accounting.

The paper's whole argument is resource accounting; this package makes
the accounting *observable* at run time instead of only as end-of-run
totals.  Three pieces, used by every layer:

* :mod:`repro.obs.registry` — counters/gauges/histograms with labels
  and deterministic Prometheus/JSON output, plus a wall-clock timing
  facility kept strictly out of the deterministic sections;
* :mod:`repro.obs.trace` — per-lookup CRAM step tracing for the
  interpreter, exportable as JSONL and Chrome trace-event JSON;
* :mod:`repro.obs.accounting` — per-structure read/write counters and
  per-prefix hit tallies for the TCAM/SRAM/d-left simulators.

Determinism contract: this is the **only** package under ``repro``
allowed to touch ``time.*`` (see ``tests/test_telemetry_audit.py``).
"""

from .accounting import (
    AccessStats,
    access_skew,
    collect_access_stats,
    enable_hit_tracking,
    export_access_stats,
    hot_table_report,
)
from .clock import Clock, FakeClock, MonotonicClock, TimerHandle
from .registry import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    NULL_TRACER,
    RecordingTracer,
    TraceEvent,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "AccessStats",
    "access_skew",
    "collect_access_stats",
    "enable_hit_tracking",
    "export_access_stats",
    "hot_table_report",
    "Clock",
    "FakeClock",
    "LATENCY_BUCKETS_S",
    "MonotonicClock",
    "TimerHandle",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "validate_chrome_trace",
]
