"""Clock abstraction: monotonic time + cancellable deadline timers.

``repro.obs`` is the only package under ``repro`` allowed to touch
``time`` (see ``tests/test_telemetry_audit.py``), so anything else
that needs a notion of *now* — most importantly the serving
frontend's request coalescer, whose deadline trigger flushes a
half-full batch after ``max_wait`` — goes through a :class:`Clock`.

Two implementations:

* :class:`MonotonicClock` — the real thing.  ``now()`` is
  ``time.monotonic()``; ``call_at(when, fn)`` arms a daemonic
  :class:`threading.Timer` that fires ``fn`` once the deadline
  passes.
* :class:`FakeClock` — a deterministic shim for tests.  Time only
  moves when the test calls :meth:`FakeClock.advance`, which runs any
  timers that came due *synchronously on the advancing thread*, in
  deadline order, with ``now()`` pinned to each timer's deadline while
  it runs.  No test that uses it ever sleeps on the wall clock.

Both give the same contract: timers fire at most once, ``cancel()``
before firing suppresses the callback, and callbacks run without any
clock-internal lock held (so they may re-arm new timers freely).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, List, Optional, Tuple

__all__ = ["Clock", "MonotonicClock", "FakeClock", "TimerHandle"]


class TimerHandle:
    """A cancellable one-shot timer returned by :meth:`Clock.call_at`."""

    __slots__ = ("_cancel", "_cancelled")

    def __init__(self, cancel: Optional[Callable[[], None]] = None):
        self._cancel = cancel
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        if self._cancel is not None:
            self._cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Clock:
    """Interface: a monotonic ``now()`` plus one-shot deadline timers."""

    def now(self) -> float:
        raise NotImplementedError

    def call_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        """Arrange for ``callback()`` once ``now() >= when``."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block the calling thread until ``seconds`` have passed.

        The retry/backoff primitive for code outside ``repro.obs``
        (which may not import ``time``): :class:`MonotonicClock` really
        sleeps; :class:`FakeClock` advances virtual time instead, so a
        test's retry loop runs instantly and any timers due within the
        backoff window fire synchronously, in order.
        """
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real wall-clock time (monotonic, immune to clock steps)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def call_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle()

        def fire() -> None:
            if not handle.cancelled:
                callback()

        timer = threading.Timer(max(0.0, when - self.now()), fire)
        timer.daemon = True
        handle._cancel = timer.cancel
        timer.start()
        return handle


class FakeClock(Clock):
    """Virtual time for deterministic tests: advances only on demand.

    Thread-safe; due callbacks run on the thread calling
    :meth:`advance`, outside the clock's lock, with ``now()`` set to
    the timer's deadline (so a callback that re-arms ``now() + wait``
    schedules relative to its own due time, exactly like a real timer
    wheel).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()
        self._sequence = itertools.count()
        self._timers: List[Tuple[float, int, Callable[[], None], TimerHandle]] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle()
        with self._lock:
            heapq.heappush(
                self._timers,
                (float(when), next(self._sequence), callback, handle),
            )
        return handle

    def sleep(self, seconds: float) -> None:
        """Virtual sleep: advances the clock (fires due timers)."""
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration ({seconds})")
        self.advance(seconds)

    def pending_timers(self) -> int:
        """Armed (uncancelled) timers — a determinism probe for tests."""
        with self._lock:
            return sum(1 for *_rest, handle in self._timers
                       if not handle.cancelled)

    def advance(self, dt: float) -> None:
        """Move virtual time forward, firing due timers in order."""
        if dt < 0:
            raise ValueError(f"cannot advance time backwards ({dt})")
        with self._lock:
            target = self._now + dt
        while True:
            with self._lock:
                if not self._timers or self._timers[0][0] > target:
                    self._now = target
                    break
                when, _seq, callback, handle = heapq.heappop(self._timers)
                # Time reaches the deadline before the callback runs.
                self._now = max(self._now, when)
            if not handle.cancelled:
                callback()
