"""Benchmark trajectory: turn point-in-time sidecars into a history.

Every ``bench_*`` run writes a JSON sidecar under
``benchmarks/results/`` — a snapshot with no memory.  This module
appends each crop of sidecars to a versioned ``BENCH_history.jsonl``
(one record per bench per run, keyed by a monotonically increasing
run index — no timestamps, so appending is deterministic and the
telemetry audit stays happy), computes deltas against the previous
run, and emits a regression report: **warn** on a >10% drop in any
throughput-like metric or a >10% inflation of any p99-like latency.

``repro bench-history`` is the CLI face (``benchmarks/trajectory.py``
wraps it for direct execution); CI runs ``--check`` as a *soft* gate
after the bench smokes — the report lands in the job log and the
history file in the artifacts, but only ``--strict`` turns warnings
into a non-zero exit.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

__all__ = [
    "HISTORY_VERSION",
    "DEFAULT_THRESHOLD",
    "collect_sidecars",
    "extract_record",
    "load_history",
    "append_run",
    "compare_runs",
    "render_report",
]

HISTORY_VERSION = 1

#: Relative change that trips a warning (10%).
DEFAULT_THRESHOLD = 0.10

#: Metric-name suffixes treated as "bigger is better" (throughput).
_THROUGHPUT_SUFFIXES = ("lookups_per_s", "per_s", "speedup_x", "_x")

#: Metric-name markers treated as "smaller is better" (tail latency).
_LATENCY_MARKERS = ("p99_s", "p999_s", "p50_s", "recovery_s")


def _flatten(prefix: str, value, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     value[key], out)


def metric_kind(name: str) -> Optional[str]:
    """Classify a flattened metric name for regression checking."""
    leaf = name.rsplit(".", 1)[-1]
    for marker in _LATENCY_MARKERS:
        if leaf == marker or leaf.endswith("_" + marker):
            return "latency"
    for suffix in _THROUGHPUT_SUFFIXES:
        if leaf.endswith(suffix):
            return "throughput"
    return None


def collect_sidecars(results_dir: str) -> List[Tuple[str, dict]]:
    """Read every ``*.json`` bench sidecar (sorted by name)."""
    out: List[Tuple[str, dict]] = []
    if not os.path.isdir(results_dir):
        return out
    for entry in sorted(os.listdir(results_dir)):
        if not entry.endswith(".json") or entry.endswith(".jsonl"):
            continue
        path = os.path.join(results_dir, entry)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict) and doc.get("bench"):
            out.append((str(doc["bench"]), doc))
    return out


def extract_record(run: int, bench: str, doc: dict) -> dict:
    """One history record: the sidecar's numeric content, flattened."""
    metrics: Dict[str, float] = {}
    for section in ("values", "timings", "wall_timings"):
        payload = doc.get(section)
        if isinstance(payload, dict):
            _flatten(section, payload, metrics)
    return {
        "history_version": HISTORY_VERSION,
        "run": run,
        "bench": bench,
        "metrics": metrics,
    }


def load_history(history_path: str) -> List[dict]:
    records: List[dict] = []
    if not os.path.exists(history_path):
        return records
    with open(history_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "bench" in record:
                records.append(record)
    return records


def append_run(results_dir: str, history_path: str) -> Tuple[int, List[dict]]:
    """Append the current sidecars as the next run; returns
    ``(run_index, new_records)``.  No sidecars -> nothing appended."""
    history = load_history(history_path)
    run = 1 + max((r.get("run", 0) for r in history), default=0)
    sidecars = collect_sidecars(results_dir)
    records = [extract_record(run, bench, doc) for bench, doc in sidecars]
    if records:
        directory = os.path.dirname(os.path.abspath(history_path))
        os.makedirs(directory, exist_ok=True)
        with open(history_path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    return run, records


def _runs_by_bench(history: List[dict]) -> Dict[str, Dict[int, dict]]:
    out: Dict[str, Dict[int, dict]] = {}
    for record in history:
        out.setdefault(record["bench"], {})[record.get("run", 0)] = record
    return out


def compare_runs(history: List[dict],
                 threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Delta report between the last two runs of every bench.

    ``findings`` lists every classified metric's change; entries whose
    relative regression exceeds ``threshold`` carry
    ``severity="warn"`` (throughput drop / latency inflation), the
    rest ``severity="ok"``.
    """
    findings: List[dict] = []
    benches = _runs_by_bench(history)
    latest_run = max((r.get("run", 0) for r in history), default=0)
    for bench in sorted(benches):
        runs = benches[bench]
        run_ids = sorted(runs)
        if not run_ids:
            continue
        current_id = run_ids[-1]
        previous_id = run_ids[-2] if len(run_ids) > 1 else None
        if previous_id is None:
            findings.append({
                "bench": bench, "metric": None, "kind": "baseline",
                "severity": "ok", "run": current_id,
                "note": "first recorded run — baseline only",
            })
            continue
        cur, prev = runs[current_id]["metrics"], runs[previous_id]["metrics"]
        for name in sorted(set(cur) & set(prev)):
            kind = metric_kind(name)
            if kind is None:
                continue
            was, now = prev[name], cur[name]
            if was == 0:
                continue
            change = (now - was) / abs(was)
            if kind == "throughput":
                regressed = change < -threshold
            else:
                regressed = change > threshold
            findings.append({
                "bench": bench, "metric": name, "kind": kind,
                "prev": was, "cur": now,
                "change_pct": round(change * 100.0, 2),
                "severity": "warn" if regressed else "ok",
                "run": current_id, "vs_run": previous_id,
            })
    warnings = [f for f in findings if f["severity"] == "warn"]
    return {
        "history_version": HISTORY_VERSION,
        "threshold_pct": round(threshold * 100.0, 2),
        "latest_run": latest_run,
        "benches": sorted(benches),
        "findings": findings,
        "warnings": warnings,
        "ok": not warnings,
    }


def render_report(report: dict) -> str:
    """Human-readable regression report (the CLI prints this)."""
    lines = [
        f"bench trajectory: run {report['latest_run']} across "
        f"{len(report['benches'])} bench(es), threshold "
        f"{report['threshold_pct']:g}%",
    ]
    for finding in report["findings"]:
        if finding["kind"] == "baseline":
            lines.append(f"  [base] {finding['bench']}: {finding['note']}")
            continue
        if finding["severity"] != "warn":
            continue
        arrow = "dropped" if finding["kind"] == "throughput" else "inflated"
        lines.append(
            f"  [WARN] {finding['bench']} {finding['metric']}: {arrow} "
            f"{finding['change_pct']:+.2f}% "
            f"({finding['prev']:g} -> {finding['cur']:g})")
    tracked = sum(1 for f in report["findings"]
                  if f["kind"] in ("throughput", "latency"))
    lines.append(
        f"  {tracked} tracked metric(s), "
        f"{len(report['warnings'])} warning(s)")
    return "\n".join(lines)
