"""Latency SLO tracking: sliding-window percentiles over span phases.

The spans module answers "where did *this* request's time go"; this
module answers "is the *population* of requests meeting its latency
objectives".  A :class:`SloTracker` keeps one bounded sliding window
of raw durations per phase (``request`` plus the batch decomposition
phases ``queue_wait``/``execute``/``scatter``), computes **exact**
p50/p99/p999 over the window on demand, and compares the ``request``
phase against a :class:`SloConfig`'s targets.

Every request is observed — sampling never touches SLO accounting, so
the percentiles are exact over the window even at a 1/16 span rate.
Evaluation is amortised (every ``evaluate_every`` observations, a
sort of the window), keeping the per-request cost to a deque append.

Determinism contract: percentile *values* are wall-clock durations and
therefore never enter the registry's deterministic sections — they
live in :meth:`report`, the bench sidecars, and the status endpoint.
What the registry does get is byte-stable: the configured targets as
gauges (``repro_server_slo_target_seconds``) and breach counts
(``repro_server_slo_breaches_total``), which under a
:class:`~repro.obs.FakeClock` (all durations zero) are deterministic
too.  Breaches also feed :class:`~repro.server.supervisor.ServingHealth`
via ``on_breach`` — a sustained p99 blowout degrades serving just like
a deadline-miss storm does.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from .registry import MetricsRegistry

__all__ = ["SLO_QUANTILES", "SloConfig", "SloTracker", "window_percentile"]

#: The quantiles tracked everywhere (reports, sidecars, gauges).
SLO_QUANTILES = ("p50", "p99", "p999")

_QUANTILE_VALUES = {"p50": 0.50, "p99": 0.99, "p999": 0.999}


def window_percentile(values: List[float], quantile: float) -> Optional[float]:
    """Exact nearest-rank percentile of ``values`` (None when empty)."""
    if not values:
        return None
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be within (0, 1]")
    ordered = sorted(values)
    # Nearest-rank: ceil(q * n), clamped to the window.
    rank = int(-(-(quantile * len(ordered)) // 1))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


class SloConfig:
    """Latency targets for the ``request`` phase, by quantile.

    ``targets`` maps quantile names (:data:`SLO_QUANTILES`) to budget
    seconds.  The defaults are generous for an in-process Python
    server — they exist to catch *collapse* (queueing blowups, a
    stalled gate), not to grade microseconds.
    """

    def __init__(
        self,
        *,
        p50_s: float = 0.050,
        p99_s: float = 0.500,
        p999_s: float = 2.000,
        window: int = 4096,
        evaluate_every: int = 256,
    ):
        for label, value in (("p50_s", p50_s), ("p99_s", p99_s),
                             ("p999_s", p999_s)):
            if value <= 0:
                raise ValueError(f"{label} must be > 0")
        if p50_s > p99_s or p99_s > p999_s:
            raise ValueError("targets must be non-decreasing p50<=p99<=p999")
        if window < 1:
            raise ValueError("window must be >= 1")
        if evaluate_every < 1:
            raise ValueError("evaluate_every must be >= 1")
        self.targets: Dict[str, float] = {
            "p50": p50_s, "p99": p99_s, "p999": p999_s}
        self.window = window
        self.evaluate_every = evaluate_every

    def to_dict(self) -> dict:
        return {
            "targets_s": dict(self.targets),
            "window": self.window,
            "evaluate_every": self.evaluate_every,
        }


class _PhaseWindow:
    """One phase's sliding window of durations."""

    __slots__ = ("values", "observed", "total_s")

    def __init__(self, window: int):
        self.values: deque = deque(maxlen=window)
        self.observed = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        self.values.append(seconds)
        self.observed += 1
        self.total_s += seconds

    def percentiles(self) -> Dict[str, Optional[float]]:
        snapshot = list(self.values)
        return {name: window_percentile(snapshot, q)
                for name, q in _QUANTILE_VALUES.items()}


class SloTracker:
    """Per-phase sliding-window percentiles + SLO breach detection."""

    def __init__(
        self,
        config: Optional[SloConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        server: str = "server",
        on_breach: Optional[Callable[[str, float, float], None]] = None,
    ):
        self.config = config if config is not None else SloConfig()
        self.server = server
        self._on_breach = on_breach
        self._lock = threading.Lock()
        self._phases: Dict[str, _PhaseWindow] = {}
        self._since_eval = 0
        self.breaches = 0
        self._breach_counter = None
        if registry is not None:
            self._breach_counter = registry.counter(
                "repro_server_slo_breaches_total",
                "Sliding-window SLO breaches, by quantile.")
            target_gauge = registry.gauge(
                "repro_server_slo_target_seconds",
                "Configured request-latency SLO targets.")
            for quantile, seconds in sorted(self.config.targets.items()):
                target_gauge.set(seconds, server=server, quantile=quantile)

    # -- observation ---------------------------------------------------
    def observe(self, phase: str, seconds: float) -> None:
        """Record one duration; periodically evaluates the SLO."""
        evaluate = False
        with self._lock:
            window = self._phases.get(phase)
            if window is None:
                window = self._phases[phase] = _PhaseWindow(
                    self.config.window)
            window.observe(seconds)
            if phase == "request":
                self._since_eval += 1
                if self._since_eval >= self.config.evaluate_every:
                    self._since_eval = 0
                    evaluate = True
        if evaluate:
            self.evaluate()

    # -- evaluation ----------------------------------------------------
    def evaluate(self) -> List[Tuple[str, float, float]]:
        """Compare the request window to the targets now; returns the
        breaches as ``(quantile, measured_s, target_s)`` triples."""
        with self._lock:
            window = self._phases.get("request")
            measured = window.percentiles() if window is not None else {}
        breaches = []
        for quantile, target_s in self.config.targets.items():
            value = measured.get(quantile)
            if value is not None and value > target_s:
                breaches.append((quantile, value, target_s))
        for quantile, value, target_s in breaches:
            with self._lock:
                self.breaches += 1
            if self._breach_counter is not None:
                self._breach_counter.inc(1, server=self.server,
                                         quantile=quantile)
            if self._on_breach is not None:
                self._on_breach(quantile, value, target_s)
        return breaches

    # -- reporting -----------------------------------------------------
    def phases(self) -> List[str]:
        with self._lock:
            return sorted(self._phases)

    def percentiles(self, phase: str = "request") -> Dict[str, Optional[float]]:
        with self._lock:
            window = self._phases.get(phase)
            return window.percentiles() if window is not None else {
                name: None for name in SLO_QUANTILES}

    def report(self) -> dict:
        """Per-phase window stats + targets + breach count (JSON-able;
        the sidecars and the status endpoint serve this verbatim)."""
        with self._lock:
            phases = {
                name: {
                    "observed": window.observed,
                    "window_n": len(window.values),
                    "total_s": window.total_s,
                    **{f"{q}_s": v
                       for q, v in window.percentiles().items()},
                }
                for name, window in sorted(self._phases.items())
            }
            breaches = self.breaches
        return {
            "slo": self.config.to_dict(),
            "phases": phases,
            "breaches": breaches,
        }
