"""CRAM programs: a DAG of steps plus parser/deparser (§2.1).

A :class:`CramProgram` owns a set of registers, a DAG of
:class:`~repro.core.step.Step` nodes, and (optionally) parser and
deparser callables.  It enforces the paper's legality condition — any
two steps that conflict on a register must be connected by a directed
path — and computes the model's time metric, the number of steps on
the longest directed path.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from .step import Step

Parser = Callable[[bytes], dict]
Deparser = Callable[[dict], bytes]


class DependencyError(ValueError):
    """Two conflicting steps are not ordered by the DAG."""


class CramProgram:
    """A CRAM model program.

    Steps are added with :meth:`add_step`; dependencies either
    explicitly with :meth:`add_dependency` or inferred from declared
    register reads/writes in insertion order with
    :meth:`infer_dependencies` (the RMT-compiler behaviour [37]).
    """

    def __init__(
        self,
        name: str,
        register_width: int = 64,
        registers: Iterable[str] = (),
        parser: Optional[Parser] = None,
        deparser: Optional[Deparser] = None,
    ):
        if register_width <= 0:
            raise ValueError("register width must be positive")
        self.name = name
        self.register_width = register_width
        self.registers: Set[str] = set(registers)
        self.parser = parser
        self.deparser = deparser
        self._steps: Dict[str, Step] = {}
        self._order: List[str] = []  # insertion order
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_register(self, name: str) -> None:
        self.registers.add(name)

    def add_step(self, step: Step, after: Sequence[str] = ()) -> Step:
        """Add ``step``, optionally depending on named earlier steps."""
        if step.name in self._steps:
            raise ValueError(f"duplicate step name {step.name!r}")
        for register in step.reads | step.writes:
            self.registers.add(register)
        self._steps[step.name] = step
        self._order.append(step.name)
        self._succ[step.name] = set()
        self._pred[step.name] = set()
        for dep in after:
            self.add_dependency(dep, step.name)
        return step

    def add_dependency(self, first: str, then: str) -> None:
        """Require step ``first`` to execute before step ``then``."""
        if first not in self._steps or then not in self._steps:
            missing = first if first not in self._steps else then
            raise KeyError(f"unknown step {missing!r}")
        if first == then:
            raise ValueError("a step cannot depend on itself")
        self._succ[first].add(then)
        self._pred[then].add(first)
        if self._has_cycle():
            self._succ[first].discard(then)
            self._pred[then].discard(first)
            raise DependencyError(f"edge {first} -> {then} creates a cycle")

    def infer_dependencies(self) -> None:
        """Order conflicting steps by insertion order (compiler default)."""
        names = self._order
        for i, earlier in enumerate(names):
            for later in names[i + 1 :]:
                if self._steps[earlier].conflicts_with(self._steps[later]):
                    if not self._path_exists(earlier, later):
                        self.add_dependency(earlier, later)

    # ------------------------------------------------------------------
    # Validation and metrics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the paper's legality rule for every register conflict."""
        names = self._order
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if self._steps[a].conflicts_with(self._steps[b]):
                    if not (self._path_exists(a, b) or self._path_exists(b, a)):
                        conflict = sorted(
                            (self._steps[a].writes & (self._steps[b].reads | self._steps[b].writes))
                            | (self._steps[b].writes & self._steps[a].reads)
                        )
                        raise DependencyError(
                            f"steps {a!r} and {b!r} conflict on registers "
                            f"{conflict} but are unordered"
                        )

    def steps(self) -> List[Step]:
        return [self._steps[name] for name in self._order]

    def step(self, name: str) -> Step:
        return self._steps[name]

    def tables(self):
        return [s.table for s in self.steps() if s.table is not None]

    def critical_path_length(self) -> int:
        """The CRAM time metric: steps on the longest directed path."""
        if not self._steps:
            return 0
        order = self._topological_order()
        longest = {name: 1 for name in self._steps}
        for name in order:
            for succ in self._succ[name]:
                longest[succ] = max(longest[succ], longest[name] + 1)
        return max(longest.values())

    def critical_path(self) -> List[str]:
        """Step names along one longest path (for diagnostics)."""
        if not self._steps:
            return []
        order = self._topological_order()
        longest: Dict[str, int] = {name: 1 for name in self._steps}
        parent: Dict[str, Optional[str]] = {name: None for name in self._steps}
        for name in order:
            for succ in self._succ[name]:
                if longest[name] + 1 > longest[succ]:
                    longest[succ] = longest[name] + 1
                    parent[succ] = name
        tail = max(longest, key=lambda n: longest[n])
        path: List[str] = []
        node: Optional[str] = tail
        while node is not None:
            path.append(node)
            node = parent[node]
        return list(reversed(path))

    def parallel_schedule(self) -> List[List[str]]:
        """Steps grouped into waves that may execute simultaneously."""
        depth: Dict[str, int] = {}
        for name in self._topological_order():
            preds = self._pred[name]
            depth[name] = 1 + max((depth[p] for p in preds), default=0)
        waves: Dict[int, List[str]] = {}
        for name in self._order:
            waves.setdefault(depth[name], []).append(name)
        return [waves[d] for d in sorted(waves)]

    def render_dot(self) -> str:
        """The step DAG in Graphviz dot syntax.

        Table-bearing steps render as boxes labelled with the table's
        shape; pure-compute steps as ellipses.  Paste into any dot
        viewer to see the wave structure the time metric measures.
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for name in self._order:
            step = self._steps[name]
            if step.table is not None:
                kind = step.table.match_kind.value
                label = (f"{name}\\n{step.table.name}: {kind} "
                         f"{step.table.entries}x{step.table.key_width}b")
                lines.append(f'  "{name}" [shape=box, label="{label}"];')
            else:
                lines.append(f'  "{name}" [shape=ellipse];')
        for src in self._order:
            for dst in sorted(self._succ[src]):
                lines.append(f'  "{src}" -> "{dst}";')
        lines.append("}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Graph internals
    # ------------------------------------------------------------------
    def _topological_order(self) -> List[str]:
        indegree = {name: len(self._pred[name]) for name in self._steps}
        frontier = [name for name in self._order if indegree[name] == 0]
        out: List[str] = []
        while frontier:
            name = frontier.pop(0)
            out.append(name)
            for succ in sorted(self._succ[name]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if len(out) != len(self._steps):
            raise DependencyError("dependency graph contains a cycle")
        return out

    def _has_cycle(self) -> bool:
        try:
            self._topological_order()
        except DependencyError:
            return True
        return False

    def _path_exists(self, src: str, dst: str) -> bool:
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            for succ in self._succ[node]:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False
