"""P4-sketch generation from CRAM programs.

The paper's workflow ends with hand-written P4 compiled by the Intel
toolchain (§6.2).  This module automates the boilerplate half of that
step: given a :class:`~repro.core.program.CramProgram`, it emits a
P4-16-flavoured *sketch* — table declarations with match kinds, sizes,
and action signatures, plus an ``apply`` block that respects the
program's dependency waves (parallel steps are grouped under one
comment; sequential waves follow pipeline order).

The output is a design document, not a compilable program: key
selectors and opaque step actions are summarized as TODO actions for a
P4 engineer, exactly the part of the paper's flow that required "an
expert with intimate knowledge of the product" (§8).  Emitting the
mechanical 90% is what makes the CRAM-first workflow practical.
"""

from __future__ import annotations

import re
from typing import List

from .program import CramProgram
from .step import Step
from .table import MatchKind, TableSpec


def _sanitize(name: str) -> str:
    """Make an identifier P4-safe."""
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "t_" + cleaned
    return cleaned.lower()


def _render_expr(expr) -> str:
    from .step import Assoc, Bin, Const, Reg, Un

    if isinstance(expr, Reg):
        return f"meta.{_sanitize(expr.name)}"
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Assoc):
        return f"hit_data[{expr.index}]"
    if isinstance(expr, Un):
        return f"({expr.op}{_render_expr(expr.operand)})"
    if isinstance(expr, Bin):
        return f"({_render_expr(expr.left)} {expr.op} {_render_expr(expr.right)})"
    raise TypeError(f"not an expression: {expr!r}")


def _table_decl(table: TableSpec, register_width: int) -> List[str]:
    name = _sanitize(table.name)
    match = "ternary" if table.match_kind is MatchKind.TERNARY else (
        "exact" if not table.is_direct_indexed else "exact /* direct-indexed */"
    )
    lines = [
        f"table {name} {{",
        "    key = {",
        f"        meta.{name}_key : {match};  // {table.key_width} bits",
        "    }",
        "    actions = {",
        f"        {name}_hit;  // returns {table.data_width} bits of data",
        "        NoAction;",
        "    }",
        f"    size = {max(1, table.entries)};",
        "    default_action = NoAction();",
        "}",
    ]
    return lines


def _statement_lines(step: Step) -> List[str]:
    lines = []
    for stmt in step.statements:
        target = f"meta.{_sanitize(stmt.dest)}"
        assignment = f"{target} = {_render_expr(stmt.expr)};"
        if stmt.cond is not None:
            lines.append(f"if ({_render_expr(stmt.cond)}) {{ {assignment} }}")
        else:
            lines.append(assignment)
    if step.action is not None:
        reads = ", ".join(sorted(step.reads)) or "-"
        writes = ", ".join(sorted(step.writes)) or "-"
        lines.append(f"// TODO(engineer): opaque action (reads: {reads}; "
                     f"writes: {writes})")
    return lines


def generate_p4_sketch(program: CramProgram) -> str:
    """Emit the P4-16-flavoured sketch for ``program``."""
    program.validate()
    out: List[str] = [
        "// Auto-generated P4 sketch from CRAM program "
        f"'{program.name}'.",
        "// Tables and pipeline structure are mechanical; key selection",
        "// and action bodies marked TODO need a P4 engineer.",
        "",
        "#include <core.p4>",
        "",
        "struct metadata_t {",
    ]
    for register in sorted(program.registers):
        out.append(f"    bit<{program.register_width}> {_sanitize(register)};")
    tables = []
    seen = set()
    for step in program.steps():
        if step.table is not None and id(step.table) not in seen:
            seen.add(id(step.table))
            tables.append(step.table)
            out.append(
                f"    bit<{max(1, step.table.key_width)}> "
                f"{_sanitize(step.table.name)}_key;"
            )
    out.append("}")
    out.append("")

    for table in tables:
        out.extend(_table_decl(table, program.register_width))
        out.append("")

    out.append("apply {")
    for wave_index, wave in enumerate(program.parallel_schedule()):
        out.append(f"    // --- wave {wave_index + 1} "
                   f"({'parallel' if len(wave) > 1 else 'sequential'}: "
                   f"{len(wave)} step{'s' if len(wave) != 1 else ''}) ---")
        for step_name in wave:
            step = program.step(step_name)
            out.append(f"    // step {step.name}")
            if step.table is not None:
                out.append(f"    // TODO(engineer): set "
                           f"meta.{_sanitize(step.table.name)}_key")
                out.append(f"    {_sanitize(step.table.name)}.apply();")
            for line in _statement_lines(step):
                out.append(f"    {line}")
    out.append("}")
    return "\n".join(out) + "\n"


def estimate_p4_effort(program: CramProgram) -> dict:
    """Rough engineering-effort summary: what the sketch cannot generate."""
    opaque = sum(1 for s in program.steps() if s.action is not None)
    selectors = sum(1 for s in program.steps() if s.table is not None)
    return {
        "tables": len({id(s.table) for s in program.steps() if s.table}),
        "steps": len(program.steps()),
        "waves": len(program.parallel_schedule()),
        "todo_key_selectors": selectors,
        "todo_opaque_actions": opaque,
    }
