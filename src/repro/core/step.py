"""CRAM steps and the intra-step statement language (§2.1).

A *step* optionally begins with one table lookup, followed by a
sequence of guarded assignments ``if (cond): dest = expr`` with two
restrictions from the paper:

* ``expr`` contains at most one unary or binary operator;
* no statement may read a register that an earlier statement in the
  same step assigned — so all statements of a step can run in parallel.

Expressions are tiny ASTs over registers (``Reg``), the current
lookup's associated-data words (``Assoc``), and constants (``Const``).
For algorithm code that would be awkward to express in the statement
grammar, a step can instead carry an opaque ``action`` callable; such
steps still participate fully in dependency/metric analysis through
their declared ``reads``/``writes`` sets, but skip the intra-step
parallelism check (the callable is trusted to be a faithful rendering
of a legal statement list).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from .table import TableSpec

# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A reference to register ``name``."""

    name: str


@dataclass(frozen=True)
class Assoc:
    """Word ``index`` of the current table lookup's associated data."""

    index: int = 0


@dataclass(frozen=True)
class Const:
    """A ``w``-bit constant."""

    value: int


Operand = Union[Reg, Assoc, Const]

_UNARY = {
    "-": operator.neg,
    "~": operator.invert,
    "!": lambda a: int(not a),
    "+": operator.pos,
}

_BINARY = {
    "+": operator.add,
    "-": operator.sub,
    "<<": operator.lshift,
    ">>": operator.rshift,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


@dataclass(frozen=True)
class Un:
    """A single unary operation."""

    op: str
    operand: Operand

    def __post_init__(self) -> None:
        if self.op not in _UNARY:
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Bin:
    """A single binary operation."""

    op: str
    left: Operand
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in _BINARY:
            raise ValueError(f"unknown binary operator {self.op!r}")


Expr = Union[Operand, Un, Bin]


def expr_registers(expr: Expr) -> Set[str]:
    """Registers read by an expression."""
    if isinstance(expr, Reg):
        return {expr.name}
    if isinstance(expr, (Assoc, Const)):
        return set()
    if isinstance(expr, Un):
        return expr_registers(expr.operand)
    if isinstance(expr, Bin):
        return expr_registers(expr.left) | expr_registers(expr.right)
    raise TypeError(f"not an expression: {expr!r}")


def eval_expr(expr: Expr, state: dict, assoc: Sequence[int]) -> int:
    """Evaluate an expression against a register state and lookup data."""
    if isinstance(expr, Reg):
        value = state.get(expr.name)
        return 0 if value is None else value
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Assoc):
        return assoc[expr.index] if expr.index < len(assoc) else 0
    if isinstance(expr, Un):
        return _UNARY[expr.op](eval_expr(expr.operand, state, assoc))
    if isinstance(expr, Bin):
        return _BINARY[expr.op](
            eval_expr(expr.left, state, assoc), eval_expr(expr.right, state, assoc)
        )
    raise TypeError(f"not an expression: {expr!r}")


@dataclass(frozen=True)
class Statement:
    """``if (cond): dest = expr`` — cond may be ``None`` (always run)."""

    dest: str
    expr: Expr
    cond: Optional[Expr] = None

    def reads(self) -> Set[str]:
        regs = expr_registers(self.expr)
        if self.cond is not None:
            regs |= expr_registers(self.cond)
        return regs


# ---------------------------------------------------------------------------
# Steps
# ---------------------------------------------------------------------------

#: Opaque step behaviour: (state, lookup_result) -> None, mutating state.
Action = Callable[[dict, Any], None]


class Step:
    """One node of a CRAM program's DAG."""

    def __init__(
        self,
        name: str,
        table: Optional[TableSpec] = None,
        statements: Sequence[Statement] = (),
        action: Optional[Action] = None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
    ):
        if statements and action is not None:
            raise ValueError(f"step {name}: give statements or an action, not both")
        self.name = name
        self.table = table
        self.statements: Tuple[Statement, ...] = tuple(statements)
        self.action = action
        self._validate_statements()

        inferred_reads: Set[str] = set(reads)
        inferred_writes: Set[str] = set(writes)
        for stmt in self.statements:
            inferred_reads |= stmt.reads()
            inferred_writes.add(stmt.dest)
        self.reads: FrozenSet[str] = frozenset(inferred_reads)
        self.writes: FrozenSet[str] = frozenset(inferred_writes)

    def _validate_statements(self) -> None:
        """Enforce the paper's intra-step parallelism rule."""
        written: Set[str] = set()
        for stmt in self.statements:
            overlap = stmt.reads() & written
            if overlap:
                raise ValueError(
                    f"step {self.name}: statement reads {sorted(overlap)} "
                    "written by an earlier statement in the same step"
                )
            written.add(stmt.dest)

    def touches(self, register: str) -> bool:
        return register in self.reads or register in self.writes

    def conflicts_with(self, other: "Step") -> bool:
        """True if the two steps must be ordered (write/read-write overlap)."""
        return bool(
            (self.writes & other.reads)
            or (self.writes & other.writes)
            or (self.reads & other.writes)
        )

    # ------------------------------------------------------------------
    # Execution (used by the interpreter)
    # ------------------------------------------------------------------
    def execute(self, state: dict, tracer: Optional[Any] = None) -> None:
        result: Any = None
        if self.table is not None:
            if self.table.key_selector is None:
                raise RuntimeError(
                    f"step {self.name}: table {self.table.name} has no key selector"
                )
            key = self.table.key_selector(state)
            if key is not None:
                result = self.table.lookup(key)
            if tracer is not None:
                tracer.on_table_access(self.name, self.table, key, result)
        if self.action is not None:
            self.action(state, result)
            return
        assoc: Sequence[int]
        if result is None:
            assoc = ()
        elif isinstance(result, (tuple, list)):
            assoc = tuple(result)
        else:
            assoc = (result,)
        # All statements read the pre-step state: evaluate first, commit after.
        pending: List[Tuple[str, int]] = []
        for stmt in self.statements:
            if stmt.cond is not None and not eval_expr(stmt.cond, state, assoc):
                continue
            pending.append((stmt.dest, eval_expr(stmt.expr, state, assoc)))
        for dest, value in pending:
            state[dest] = value

    def __repr__(self) -> str:
        table = self.table.name if self.table else "-"
        return f"Step({self.name}, table={table})"
