"""Compiled lookup plans: the CRAM interpreter, flattened.

:func:`repro.core.interpreter.run` is a faithful model of §2.1's wave
semantics, but it pays for that fidelity on every packet: the program
is validated, the dependency DAG is re-scheduled, and every step gets
its own snapshot of the register file.  A production dataplane cannot
afford any of that per packet, and does not need to — the program, its
schedule, and its table bindings are all fixed between route updates.

:class:`LookupPlan` does the per-program work exactly once:

* ``validate()`` and ``parallel_schedule()`` run at compile time; the
  wave structure is flattened into one tuple of step runners executed
  in schedule order.
* Each table-driven step is compiled to a prebound
  ``(key_selector, reader, action)`` triple.  The reader bypasses the
  :meth:`~repro.core.table.TableSpec.lookup` backing dispatch (and its
  per-access :class:`~repro.obs.AccessStats` bookkeeping): memory
  backings expose an uninstrumented ``plan_reader()`` view —
  bit-packed ``bytes`` for bitmaps, flat dict views for SRAM/d-left,
  a frozen group index for TCAM — and algorithms may override readers
  per step via :meth:`~repro.algorithms.base.LookupAlgorithm.plan_backings`.
* The register file is a single dict, reset from a precomputed base
  state (all registers ``None`` plus ``cram_initial_state()``) and
  reused across a batch, so the steady-state loop allocates nothing
  but the result list.

Running waves sequentially over one shared register file is equivalent
to the interpreter's snapshot semantics because ``validate()`` rejects
programs where two steps in a wave conflict on declared registers —
the same guarantee the interpreter itself leans on.  The conformance
suite (``tests/test_engine_conformance.py``) pins plan == interpreter
== trie oracle for every algorithm in the package.

A plan is a *snapshot*: it binds the tables as they are at compile
time.  After any route update, recompile (``compile_plan(algo)``);
:class:`repro.engine.BatchEngine` does this automatically on every
committed :class:`~repro.control.ManagedFib` batch.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence

from .program import CramProgram
from .step import Step

__all__ = ["LookupPlan", "PlanError", "compile_plan"]


class PlanError(ValueError):
    """The program (or its backings) cannot be compiled into a plan."""


def _raw_reader(table) -> Callable[[Any], Any]:
    """An uninstrumented reader for a table's backing.

    Mirrors :meth:`TableSpec.lookup`'s dispatch order (search / load /
    lookup / test / callable) but resolves it once, at compile time,
    and prefers the backing's ``plan_reader()`` snapshot view when the
    memory simulator provides one.
    """
    backing = table.backing
    if backing is None:
        raise PlanError(f"table {table.name!r} has no behavioural backing")
    plan_reader = getattr(backing, "plan_reader", None)
    if callable(plan_reader):
        return plan_reader()
    for attr in ("search", "load", "lookup", "test"):
        method = getattr(backing, attr, None)
        if callable(method):
            return method
    if callable(backing):
        return backing
    raise PlanError(f"table {table.name!r} backing is not executable")


def _compile_step(step: Step, reader_override) -> Callable[[dict], None]:
    """One step as a single ``runner(state)`` callable."""
    action = step.action
    if action is None:
        # Statement-based steps (guarded ALU assignments) are rare and
        # cheap; Step.execute already has exactly the right semantics.
        return step.execute
    if step.table is None:
        def run_action_only(state, _action=action):
            _action(state, None)
        return run_action_only
    select = step.table.key_selector
    if select is None:
        raise PlanError(f"step {step.name!r} has a table but no key selector")
    raw = reader_override if reader_override is not None else _raw_reader(step.table)
    default = step.table.default
    if default is None:
        def run_table(state, _select=select, _raw=raw, _action=action):
            key = _select(state)
            _action(state, _raw(key) if key is not None else None)
        return run_table

    def run_table_default(state, _select=select, _raw=raw, _action=action,
                          _default=default):
        key = _select(state)
        if key is None:
            _action(state, None)
            return
        result = _raw(key)
        _action(state, _default if result is None else result)
    return run_table_default


class LookupPlan:
    """A compiled, allocation-free execution of one CRAM program."""

    def __init__(self, algo, program: Optional[CramProgram] = None):
        program = program if program is not None else algo.cram_program()
        program.validate()
        backings: Dict[str, Callable] = dict(algo.plan_backings())
        step_names: List[str] = []
        runners: List[Callable[[dict], None]] = []
        readers: Dict[str, Optional[Callable]] = {}
        waves = program.parallel_schedule()
        for wave in waves:
            for name in wave:
                step_names.append(name)
                reader = backings.pop(name, None)
                readers[name] = reader
                runners.append(_compile_step(program.step(name), reader))
        if backings:
            raise PlanError(
                f"plan_backings for unknown steps: {sorted(backings)}"
            )
        if "addr" not in program.registers:
            raise PlanError("program declares no 'addr' register")
        base: Dict[str, Any] = {name: None for name in program.registers}
        initial = algo.cram_initial_state()
        unknown = set(initial) - program.registers
        if unknown:
            raise PlanError(f"unknown registers in initial state: {sorted(unknown)}")
        base.update(initial)

        self.algorithm: str = getattr(algo, "name", type(algo).__name__)
        self.width: int = algo.width
        #: The validated source program (the lane compiler re-walks it).
        self.program = program
        #: Step names in execution (schedule) order.
        self.step_names = tuple(step_names)
        #: Wave count of the source schedule (depth, not work).
        self.wave_count = len(waves)
        self._base = base
        self._runners = list(runners)
        self._index = {name: i for i, name in enumerate(step_names)}
        self._readers = readers
        self._algo = algo
        self._bind_extract()

    def _bind_extract(self) -> None:
        """Bind extraction, preferring the algorithm's frozen factory."""
        frozen = self._algo.plan_extract_factory()
        self._extract = frozen if frozen is not None \
            else self._algo.cram_extract_hop

    def patch(self, readers: Dict[str, Callable]) -> None:
        """Rebind the named steps' table readers in place.

        ``readers`` comes from the algorithm's ``plan_patch(delta)``
        hook: frozen snapshot readers for exactly the steps a committed
        delta invalidated.  Every other runner (and the schedule, base
        state, and register layout — none of which a route update can
        change) is reused as-is, making a patch O(touched steps)
        instead of O(program).  Extraction is re-frozen too, since
        factory-frozen state (e.g. SAIL's default hop) may have moved.
        """
        program = self.program
        for name, reader in readers.items():
            index = self._index.get(name)
            if index is None:
                raise PlanError(f"plan_patch for unknown step: {name!r}")
            self._runners[index] = _compile_step(program.step(name), reader)
            self._readers[name] = reader
        self._bind_extract()

    def step_reader(self, name: str):
        """The snapshot reader ``name`` was compiled against, or
        ``None`` when the step compiled against its raw backing.
        ``plan_patch`` hooks hand it back to the backing's
        ``plan_reader(prev=...)`` for an incremental re-freeze."""
        return self._readers.get(name)

    def __len__(self) -> int:
        return len(self._runners)

    def lookup(self, address: int) -> Optional[int]:
        """One packet through the compiled step array."""
        state = self._base.copy()
        state["addr"] = address
        for run in self._runners:
            run(state)
        return self._extract(state)

    def lookup_batch(self, addresses: Sequence[int],
                     out: Optional[List[Optional[int]]] = None
                     ) -> List[Optional[int]]:
        """A batch of packets over one reused register file.

        ``out`` lets callers reuse a result list across batches; the
        steady-state loop then allocates nothing per packet.
        """
        if out is not None:
            results = out
            del results[:]  # a reused list must not accumulate batches
        else:
            results = []
        append = results.append
        base = self._base
        runners = self._runners
        extract = self._extract
        state = base.copy()
        for address in addresses:
            state.clear()
            state.update(base)
            state["addr"] = address
            for run in runners:
                run(state)
            append(extract(state))
        return results

    def describe(self) -> Dict[str, Any]:
        """Deterministic plan summary (for telemetry and docs)."""
        return {
            "algorithm": self.algorithm,
            "width": self.width,
            "steps": len(self._runners),
            "waves": self.wave_count,
            "step_names": list(self.step_names),
        }

    def fingerprint(self) -> str:
        """Stable identity of the compiled program's *shape*.

        Hashes the algorithm name, width and ordered step names — the
        things that must re-derive identically when an artifact's
        state import rebuilds this plan.  The artifact store saves it
        at write time and compares after load, so a structurally
        drifted import fails typed instead of serving off the wrong
        program.
        """
        h = hashlib.sha256()
        h.update(f"{self.algorithm}:{self.width}".encode("utf-8"))
        for name in self.step_names:
            h.update(b"\0")
            h.update(name.encode("utf-8"))
        return h.hexdigest()


def compile_plan(algo, program: Optional[CramProgram] = None) -> LookupPlan:
    """Compile ``algo``'s CRAM program into a :class:`LookupPlan`."""
    return LookupPlan(algo, program)
