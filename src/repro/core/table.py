"""CRAM table specifications (§2.1).

A CRAM table ``t`` has a match kind (exact or ternary), a key width
``k_t``, a maximum entry count ``n_t``, and ``d_t`` bits of associated
data.  Memory accounting rules from the paper:

* ternary table: keys cost ``n_t * k_t`` **TCAM** bits (only the value
  component of each (value, mask) pair is counted);
* exact table: keys cost ``n_t * k_t`` **SRAM** bits, except in the
  directly-indexed special case ``n_t == 2**k_t`` where the key is the
  index and costs nothing;
* both kinds: associated data costs ``n_t * d_t`` SRAM bits.

A :class:`TableSpec` may optionally carry a *behavioural* backing table
(from :mod:`repro.memory`) and a key-selector callable, which the CRAM
interpreter uses to actually execute lookups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional


class MatchKind(enum.Enum):
    """The two CRAM match kinds."""

    EXACT = "exact"
    TERNARY = "ternary"


#: A key selector maps the register state to a key, or ``None`` to
#: signal "skip this lookup" (e.g. a predicated table).
KeySelector = Callable[[dict], Optional[int]]


@dataclass
class TableSpec:
    """Shape (and optionally behaviour) of one CRAM table."""

    name: str
    match_kind: MatchKind
    key_width: int
    entries: int
    data_width: int
    default: Any = None
    key_selector: Optional[KeySelector] = None
    backing: Any = None  # TcamTable | DirectIndexTable | ExactMatchTable | ...
    register_bits: int = 0  # stateful register-match memory (§2.6), counted apart

    def __post_init__(self) -> None:
        if self.key_width < 0:
            raise ValueError(f"table {self.name}: negative key width")
        if self.entries < 0:
            raise ValueError(f"table {self.name}: negative entry count")
        if self.data_width < 0:
            raise ValueError(f"table {self.name}: negative data width")
        if self.match_kind is MatchKind.TERNARY and self.key_width == 0:
            raise ValueError(f"table {self.name}: ternary table needs a key")

    # ------------------------------------------------------------------
    # CRAM accounting
    # ------------------------------------------------------------------
    @property
    def is_direct_indexed(self) -> bool:
        """Exact table with ``n_t == 2**k_t``: key needs no storage."""
        return self.match_kind is MatchKind.EXACT and self.entries == (1 << self.key_width)

    def tcam_bits(self) -> int:
        if self.match_kind is MatchKind.TERNARY:
            return self.entries * self.key_width
        return 0

    def sram_bits(self) -> int:
        data = self.entries * self.data_width
        if self.match_kind is MatchKind.EXACT and not self.is_direct_indexed:
            return data + self.entries * self.key_width
        return data

    # ------------------------------------------------------------------
    # Behaviour (used by the interpreter)
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Any:
        """Execute the lookup on the backing table.

        Returns the matched associated data, or ``default`` on a miss.
        """
        if self.backing is None:
            raise RuntimeError(f"table {self.name} has no behavioural backing")
        if hasattr(self.backing, "search"):  # TcamTable
            result = self.backing.search(key)
        elif hasattr(self.backing, "load"):  # DirectIndexTable / ExactMatchTable
            result = self.backing.load(key)
        elif hasattr(self.backing, "lookup"):  # DLeftHashTable
            result = self.backing.lookup(key)
        elif hasattr(self.backing, "test"):  # Bitmap
            result = self.backing.test(key)
        elif callable(self.backing):
            result = self.backing(key)
        else:
            raise TypeError(f"table {self.name}: unsupported backing {self.backing!r}")
        return self.default if result is None else result


def exact_table(name: str, key_width: int, entries: int, data_width: int, **kw) -> TableSpec:
    """Convenience constructor for an exact-match :class:`TableSpec`."""
    return TableSpec(name, MatchKind.EXACT, key_width, entries, data_width, **kw)


def ternary_table(name: str, key_width: int, entries: int, data_width: int, **kw) -> TableSpec:
    """Convenience constructor for a ternary :class:`TableSpec`."""
    return TableSpec(name, MatchKind.TERNARY, key_width, entries, data_width, **kw)


def direct_index_table(name: str, key_width: int, data_width: int, **kw) -> TableSpec:
    """Exact table with ``2**key_width`` entries (free keys)."""
    return TableSpec(name, MatchKind.EXACT, key_width, 1 << key_width, data_width, **kw)


def register_table(name: str, entries: int, register_width: int, **kw) -> TableSpec:
    """A stateful register-match table (§2.6).

    P4 register arrays are the data plane's mutable state.  The CRAM
    model incorporates them as an SRAM-backed exact table whose memory
    is counted *separately* from regular TCAM/SRAM bits, exactly as
    §2.6 prescribes: ``entries * register_width`` lands in
    :attr:`TableSpec.register_bits`, and :class:`CramMetrics` reports
    it in its own column.
    """
    # Index-addressed: no stored keys, no associated data — the whole
    # footprint is the register state itself.
    return TableSpec(
        name,
        MatchKind.EXACT,
        key_width=0,
        entries=entries,
        data_width=0,
        register_bits=entries * register_width,
        **kw,
    )
