"""CRAM space/time metrics (§2.1) and their presentation (§6.4, §8)."""

from __future__ import annotations

from dataclasses import dataclass

from .program import CramProgram
from .units import format_bits, sram_bits_to_pages, tcam_bits_to_blocks


@dataclass(frozen=True)
class CramMetrics:
    """The three CRAM measures for one program.

    * ``tcam_bits`` — sum of ``n_t * k_t`` over ternary tables,
    * ``sram_bits`` — key bits of non-direct exact tables plus data
      bits of every table,
    * ``steps`` — nodes on the longest directed path of the DAG,
    * ``register_bits`` — stateful register-match memory, counted
      separately as §2.6 prescribes (zero for every algorithm here).
    """

    tcam_bits: int
    sram_bits: int
    steps: int
    register_bits: int = 0

    @property
    def tcam_blocks(self) -> float:
        """Fractional Tofino-2 TCAM blocks (Table 10/11 conversion)."""
        return tcam_bits_to_blocks(self.tcam_bits)

    @property
    def sram_pages(self) -> float:
        """Fractional Tofino-2 SRAM pages (Table 10/11 conversion)."""
        return sram_bits_to_pages(self.sram_bits)

    def describe(self) -> str:
        return (
            f"TCAM {format_bits(self.tcam_bits)}, "
            f"SRAM {format_bits(self.sram_bits)}, "
            f"{self.steps} steps"
        )

    def __add__(self, other: "CramMetrics") -> "CramMetrics":
        """Combine metrics of independent programs (steps take the max)."""
        return CramMetrics(
            self.tcam_bits + other.tcam_bits,
            self.sram_bits + other.sram_bits,
            max(self.steps, other.steps),
            self.register_bits + other.register_bits,
        )


def measure(program: CramProgram) -> CramMetrics:
    """Compute the CRAM metrics of a (validated) program."""
    program.validate()
    tcam = 0
    sram = 0
    registers = 0
    seen_ids = set()
    tables = []
    for table in program.tables():
        # A table referenced by several steps (legal in the plain CRAM
        # model, e.g. DXR's range table before memory fan-out) is one
        # physical table and is counted once.
        if id(table) not in seen_ids:
            seen_ids.add(id(table))
            tables.append(table)
    for table in tables:
        tcam += table.tcam_bits()
        sram += table.sram_bits()
        registers += table.register_bits
    return CramMetrics(tcam, sram, program.critical_path_length(), registers)
