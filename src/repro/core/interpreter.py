"""Executing CRAM programs (§2.1's machine semantics).

The CRAM model is not only an accounting sheet: a program with
behavioural table backings and key selectors is an executable machine.
The interpreter runs steps wave-by-wave along the dependency DAG —
steps in the same wave see the same pre-wave register state, the
model's notion of parallel execution — and is used by the tests to
check that each algorithm's CRAM program computes exactly the same
next hops as its native Python implementation.
"""

from __future__ import annotations

from typing import Any, Dict

from .program import CramProgram


def run(program: CramProgram, initial_state: Dict[str, Any]) -> Dict[str, Any]:
    """Execute ``program`` from ``initial_state`` and return the final state.

    ``initial_state`` plays the role of the parser output: a register
    assignment.  Unknown registers are rejected so typos in tests fail
    loudly rather than silently reading zero.
    """
    program.validate()
    unknown = set(initial_state) - program.registers
    if unknown:
        raise KeyError(f"unknown registers in initial state: {sorted(unknown)}")
    state: Dict[str, Any] = {name: None for name in program.registers}
    state.update(initial_state)
    for wave in program.parallel_schedule():
        # Steps in one wave are data-independent (validate() guarantees
        # it), so sequential execution within the wave is equivalent to
        # parallel execution; we still snapshot to make the semantics
        # obvious and to catch undeclared dependencies in action code.
        snapshot = dict(state)
        updates: Dict[str, Any] = {}
        for step_name in wave:
            step = program.step(step_name)
            scratch = dict(snapshot)
            step.execute(scratch)
            for register in step.writes:
                if scratch.get(register) != snapshot.get(register):
                    updates[register] = scratch[register]
            # Opaque actions may legitimately write a register to the
            # value it already had; propagate declared writes as well.
            for register in step.writes:
                if register in scratch:
                    updates.setdefault(register, scratch[register])
        state.update(updates)
    return state


def run_packet(program: CramProgram, packet: bytes) -> bytes:
    """Full parser -> steps -> deparser pipeline for raw packets."""
    if program.parser is None or program.deparser is None:
        raise RuntimeError(f"program {program.name} lacks a parser/deparser")
    state = run(program, program.parser(packet))
    return program.deparser(state)
