"""Executing CRAM programs (§2.1's machine semantics).

The CRAM model is not only an accounting sheet: a program with
behavioural table backings and key selectors is an executable machine.
The interpreter runs steps wave-by-wave along the dependency DAG —
steps in the same wave see the same pre-wave register state, the
model's notion of parallel execution — and is used by the tests to
check that each algorithm's CRAM program computes exactly the same
next hops as its native Python implementation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .program import CramProgram


def run(
    program: CramProgram,
    initial_state: Dict[str, Any],
    tracer: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute ``program`` from ``initial_state`` and return the final state.

    ``initial_state`` plays the role of the parser output: a register
    assignment.  Unknown registers are rejected so typos in tests fail
    loudly rather than silently reading zero.

    ``tracer`` is an optional :class:`repro.obs.Tracer` sink; when
    given, every wave, step, table access, and register write is
    reported to it.  Tracing is purely observational — a traced run
    returns the identical final state as an untraced one — and when
    ``tracer`` is ``None`` (the default) no hook is called and nothing
    is allocated per step.
    """
    program.validate()
    unknown = set(initial_state) - program.registers
    if unknown:
        raise KeyError(f"unknown registers in initial state: {sorted(unknown)}")
    state: Dict[str, Any] = {name: None for name in program.registers}
    state.update(initial_state)
    if tracer is not None:
        tracer.on_run_begin(program, dict(state))
    for wave_index, wave in enumerate(program.parallel_schedule()):
        # Steps in one wave are data-independent (validate() guarantees
        # it), so sequential execution within the wave is equivalent to
        # parallel execution; we still snapshot to make the semantics
        # obvious and to catch undeclared dependencies in action code.
        if tracer is not None:
            tracer.on_wave_begin(wave_index, list(wave))
        snapshot = dict(state)
        updates: Dict[str, Any] = {}
        for step_name in wave:
            step = program.step(step_name)
            scratch = dict(snapshot)
            if tracer is not None:
                tracer.on_step_begin(wave_index, step, snapshot)
                step.execute(scratch, tracer)
            else:
                step.execute(scratch)
            for register in step.writes:
                if scratch.get(register) != snapshot.get(register):
                    updates[register] = scratch[register]
            # Opaque actions may legitimately write a register to the
            # value it already had; propagate declared writes as well.
            for register in step.writes:
                if register in scratch:
                    updates.setdefault(register, scratch[register])
            if tracer is not None:
                tracer.on_step_end(
                    wave_index, step,
                    {r: scratch.get(r) for r in sorted(step.writes)},
                )
        state.update(updates)
    if tracer is not None:
        tracer.on_run_end(dict(state))
    return state


def run_packet(
    program: CramProgram,
    packet: bytes,
    tracer: Optional[Any] = None,
) -> bytes:
    """Full parser -> steps -> deparser pipeline for raw packets."""
    if program.parser is None or program.deparser is None:
        raise RuntimeError(f"program {program.name} lacks a parser/deparser")
    state = run(program, program.parser(packet), tracer)
    return program.deparser(state)
