"""The eight CRAM optimization idioms (§2.2).

The idioms are design *strategies*; most of their substance lives in
the algorithms that apply them.  This module gives them first-class
identities (so algorithms can declare which idioms they embody and the
reports in :mod:`repro.analysis` can cite them) plus the small
quantitative decision rules the paper states:

* I2's "expand to SRAM if expansion < 3x" rule
  (:func:`prefer_sram`), used by MASHUP's node hybridization;
* I5's tag-width arithmetic (:func:`tag_width`), used by MASHUP's
  table coalescing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

#: TCAM needs ~3x more transistors per bit than SRAM [82]; the paper
#: adopts c = 3 as the expansion break-even constant for idiom I2.
TCAM_AREA_FACTOR = 3


class Idiom(enum.Enum):
    """The eight optimization idioms, numbered as in the paper."""

    COMPRESS_WITH_TCAM = 1  # I1: wildcard entries as single TCAM rows
    EXPAND_TO_SRAM = 2  # I2: SRAM when expansion < 3x
    COMPRESS_WITH_SRAM = 3  # I3: hash tables over direct indexing
    STRATEGIC_CUTTING = 4  # I4: cut where shared prefixes end
    TABLE_COALESCING = 5  # I5: merge sparse tables with tag bits
    LOOK_ASIDE_TCAM = 6  # I6: special-case prefixes searched in parallel
    STEP_REDUCTION = 7  # I7: consolidate independent lookups per stage
    MEMORY_FAN_OUT = 8  # I8: split tables accessed multiple times

    @property
    def label(self) -> str:
        return f"I{self.value}"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    Idiom.COMPRESS_WITH_TCAM: (
        "Store wildcarded entries as single TCAM rows instead of their "
        "SRAM prefix expansions."
    ),
    Idiom.EXPAND_TO_SRAM: (
        "Replace a TCAM block with SRAM when the expanded form costs "
        f"less than {TCAM_AREA_FACTOR}x the original TCAM entries."
    ),
    Idiom.COMPRESS_WITH_SRAM: (
        "Prefer hashed SRAM over directly indexed arrays: RMT/dRMT "
        "ASICs price both lookups identically."
    ),
    Idiom.STRATEGIC_CUTTING: (
        "Cut at the bit position where shared prefixes end, storing the "
        "repeated bits once (multibit-trie strides, BSIC's k)."
    ),
    Idiom.TABLE_COALESCING: (
        "Merge minimally populated logical tables into shared physical "
        "blocks/pages, differentiated by tag bits."
    ),
    Idiom.LOOK_ASIDE_TCAM: (
        "Move uncommon entries (very short/long prefixes) into a "
        "separate TCAM searched trivially in parallel."
    ),
    Idiom.STEP_REDUCTION: (
        "Consolidate data-independent lookups into a single stage using "
        "MAU parallelism."
    ),
    Idiom.MEMORY_FAN_OUT: (
        "Split a multiply-accessed table so each per-packet access hits "
        "a distinct table (one memory access per table per packet)."
    ),
}


def prefer_sram(expanded_entries: int, tcam_entries: int, c: int = TCAM_AREA_FACTOR) -> bool:
    """Idiom I2's decision rule.

    Keep a node in SRAM when storing its prefix expansion costs less
    than ``c`` times the TCAM entries it would otherwise need.  The
    comparison is entry-for-entry at equal widths, mirroring the
    paper's treatment of MASHUP trie nodes.
    """
    if tcam_entries < 0 or expanded_entries < 0:
        raise ValueError("entry counts must be non-negative")
    if tcam_entries == 0:
        return True
    return expanded_entries < c * tcam_entries


def tag_width(logical_tables: int) -> int:
    """Idiom I5: bits of tag needed to coalesce ``logical_tables`` tables."""
    if logical_tables <= 0:
        raise ValueError("need at least one logical table")
    return max(0, math.ceil(math.log2(logical_tables)))


@dataclass(frozen=True)
class IdiomApplication:
    """A record that an algorithm applied an idiom, for reporting."""

    idiom: Idiom
    where: str
    effect: str

    def describe(self) -> str:
        return f"{self.idiom.label} @ {self.where}: {self.effect}"
