"""Memory unit model: bits, KB/MB, Tofino-2 TCAM blocks and SRAM pages.

The CRAM model measures raw bits (§2.1); the ideal-RMT and Tofino-2
models measure hardware allocation units (§6.2, §8):

* a TCAM block is 44 bits wide by 512 entries deep;
* an SRAM page is 128 bits wide by 1024 words deep (16 KiB).

Table 10/11 of the paper convert CRAM bits into *fractional* blocks and
pages for uniform comparison; :func:`tcam_bits_to_blocks` and
:func:`sram_bits_to_pages` are those conversions.
"""

from __future__ import annotations

TCAM_BLOCK_WIDTH = 44  # bits per TCAM row (Tofino-2)
TCAM_BLOCK_ENTRIES = 512  # rows per TCAM block
SRAM_PAGE_WIDTH = 128  # bits per SRAM word (Tofino-2)
SRAM_PAGE_WORDS = 1024  # words per SRAM page

TCAM_BLOCK_BITS = TCAM_BLOCK_WIDTH * TCAM_BLOCK_ENTRIES
SRAM_PAGE_BITS = SRAM_PAGE_WIDTH * SRAM_PAGE_WORDS

KB = 1024 * 8  # bits per kilobyte
MB = 1024 * KB  # bits per megabyte


def tcam_bits_to_blocks(bits: int) -> float:
    """Fractional TCAM blocks equivalent to ``bits`` (Table 10/11 style)."""
    return bits / TCAM_BLOCK_BITS


def sram_bits_to_pages(bits: int) -> float:
    """Fractional SRAM pages equivalent to ``bits`` (Table 10/11 style)."""
    return bits / SRAM_PAGE_BITS


def tcam_blocks_for_table(entries: int, key_width: int) -> int:
    """Whole TCAM blocks a ternary table of this shape occupies.

    A table wider than one block gangs ``ceil(width/44)`` blocks side by
    side; each gang holds 512 entries.  This is how a 64-bit IPv6 key
    costs two blocks per 512 entries (§6.5.1's logical-TCAM capacities).
    """
    if entries == 0:
        return 0
    width_blocks = -(-key_width // TCAM_BLOCK_WIDTH)
    depth_blocks = -(-entries // TCAM_BLOCK_ENTRIES)
    return width_blocks * depth_blocks


def sram_pages_for_table(entries: int, entry_bits: int) -> int:
    """Whole SRAM pages a table of ``entries`` rows of ``entry_bits`` needs.

    Rows are packed into 128-bit words: narrow rows share a word
    (``floor(128 / entry_bits)`` per word), wide rows span several
    words.  A table always occupies at least one page.
    """
    if entries == 0:
        return 0
    if entry_bits <= 0:
        raise ValueError("entry bits must be positive for a populated table")
    if entry_bits <= SRAM_PAGE_WIDTH:
        per_word = SRAM_PAGE_WIDTH // entry_bits
        words = -(-entries // per_word)
    else:
        words_per_entry = -(-entry_bits // SRAM_PAGE_WIDTH)
        words = entries * words_per_entry
    return -(-words // SRAM_PAGE_WORDS)


def sram_pages_for_bits(bits: int) -> int:
    """Whole pages for a raw bit array (bitmaps pack perfectly)."""
    if bits == 0:
        return 0
    return -(-bits // SRAM_PAGE_BITS)


def format_bits(bits: float) -> str:
    """Human form matching the paper's tables: '3.13 KB', '8.58 MB'."""
    if bits >= MB / 10:
        return f"{bits / MB:.2f} MB"
    if bits >= KB / 10:
        return f"{bits / KB:.2f} KB"
    return f"{bits:.0f} b"
