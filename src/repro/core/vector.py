"""The lane compiler: compiled plans lowered to NumPy batch kernels.

:class:`~repro.core.plan.LookupPlan` removed per-packet interpretation,
but it still runs one Python closure per step *per packet*.  The CRAM
lens says every packet performs the same small set of table reads — the
exact shape array (SoA) execution wants.  :class:`VectorPlan` lowers an
already-compiled plan one level further: each step executes **once per
batch**, as a NumPy kernel over every lane at the same time.

The execution model:

* **SoA register file** (:class:`Lanes`).  Each CRAM register becomes a
  pair of arrays: an ``int64`` value vector plus a boolean ``none``
  mask (the sentinel + mask convention for ``None`` lanes — masked
  lanes hold value 0, so scalar truthiness ``state.get(r)`` lowers to
  ``vals != 0`` and presence to ``~none``).  A lazily-allocated object
  sidecar carries the rare non-integer register values (Poptrie leaf
  refs, BST node objects) that only the scalar bridge produces.
* **Vector table views.**  Memory backings grow ``vector_reader()``
  snapshot views alongside ``plan_reader()``: bitmaps as packed
  ``uint8`` arrays gathered by an index vector
  (:class:`BitmapView`), SRAM/d-left dict views densified into
  index → value arrays (:class:`DenseArrayView`, with a sorted-key
  :class:`SparseMapView` probe fallback when the key space is too
  large to densify), and TCAM groups flattened into ``(value, mask)``
  row matrices answered by a broadcast ``(keys & mask) == value``
  compare plus a priority argmax (:class:`TcamMatrixView`).
* **Per-step lowering specs.**  Algorithms describe how each step's
  selector/action lower to array form via
  :meth:`~repro.algorithms.base.LookupAlgorithm.vector_specs` —
  a dict of step name → :class:`VectorStepSpec`.  A spec either binds
  ``select`` (keys + active mask) to a table view's ``gather`` and an
  ``update`` kernel, or is compute-only (``select=None``) and reads
  the lanes directly.
* **The scalar bridge.**  Steps without a spec (or whose table cannot
  produce a vector view) fall back to the *scalar* plan closure under
  a per-lane gather/scatter bridge: consecutive un-lowered steps are
  grouped into one segment that extracts a register dict per lane,
  runs the original runners, and scatters the results back.  Every
  algorithm therefore compiles — SAIL/RESAIL/DXR/multibit/Poptrie
  fully lowered, the rest mixed-mode — and stays conformant.

Like a :class:`~repro.core.plan.LookupPlan`, a vector plan is a
**snapshot**: its views freeze the tables at compile time, and it must
be recompiled after updates (:class:`repro.engine.BatchEngine` does so
on every committed batch when its ``backend`` is ``"vector"`` or
``"auto"``).

Addresses are carried in ``int64`` lanes, so widths above 62 bits (the
IPv6 view is 64) cannot enter the SoA file; :meth:`VectorPlan.lookup_batch`
transparently delegates such batches to the embedded scalar plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .plan import LookupPlan

__all__ = [
    "VectorError",
    "VectorBridgeError",
    "Lanes",
    "BitmapView",
    "DenseArrayView",
    "SparseMapView",
    "TcamMatrixView",
    "TcamGroupView",
    "VectorStepSpec",
    "VectorPlan",
    "compile_vector_plan",
    "map_view",
    "view_state",
    "view_from_state",
    "popcount64",
    "MISS_HOP",
    "DENSE_LIMIT",
    "MATRIX_ROW_LIMIT",
]


class VectorError(ValueError):
    """The program (or its backings) cannot be lowered to lane kernels."""


class VectorBridgeError(VectorError):
    """A bridged scalar step (or scalar extraction) raised mid-batch.

    Without this wrapper a raising bridge would leave every lane of the
    batch holding the MISS sentinel — indistinguishable from a genuine
    no-route answer.  The lane compiler therefore converts any
    exception escaping a bridged runner into this typed error, naming
    the step and lane, so the *batch* fails instead of silently
    missing.  The original exception rides along as ``__cause__``.
    """


#: Sentinel stored in result arrays for ``None`` (no-route) lanes.
MISS_HOP: int = int(np.iinfo(np.int64).min)

#: Largest key space a dict view is densified to; beyond it the
#: sorted-key probe (:class:`SparseMapView`) is used instead.
DENSE_LIMIT = 1 << 20

#: Lanes per kernel invocation: bounds the footprint of broadcast
#: intermediates (TCAM row matrices are ``lanes x rows``).
DEFAULT_CHUNK = 4096

#: Addresses must fit int64 lanes with headroom for shifts: widths
#: above this delegate whole batches to the scalar plan.
MAX_VECTOR_WIDTH = 62

#: Largest TCAM a ``vector_reader()`` renders as one broadcast row
#: matrix (:class:`TcamMatrixView`); beyond it the per-group
#: ``searchsorted`` probe (:class:`TcamGroupView`) is used instead —
#: the matrix compare is O(lanes x rows) while real priority tables
#: have few distinct (priority, mask) groups but many rows.
MATRIX_ROW_LIMIT = 128

_INT_TYPES = (int, np.integer)
_BOOL_TYPES = (bool, np.bool_)


if hasattr(np, "bitwise_count"):
    def popcount64(values: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        return np.bitwise_count(values).astype(np.int64)
else:  # numpy < 2.0 (the 3.9 CI cell): 16-bit lookup-table fallback
    _POP16 = np.array([bin(i).count("1") for i in range(1 << 16)],
                      dtype=np.uint8)

    def popcount64(values: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        v = values.astype(np.uint64)
        low = np.uint64(0xFFFF)
        total = _POP16[(v & low).astype(np.int64)].astype(np.int64)
        for shift in (16, 32, 48):
            total += _POP16[((v >> np.uint64(shift)) & low).astype(np.int64)]
        return total


# ---------------------------------------------------------------------------
# The SoA register file
# ---------------------------------------------------------------------------


class Lanes:
    """A batch of CRAM register files in structure-of-arrays form.

    Invariants:

    * ``vals[reg][lane] == 0`` wherever ``none[reg][lane]`` is set, so
      scalar truthiness lowers to ``vals != 0``;
    * the object sidecar ``objs[reg]`` (allocated on demand) overrides
      a lane's value when its entry is not ``None`` — only the scalar
      bridge writes it.
    """

    __slots__ = ("n", "vals", "none", "objs")

    def __init__(self, registers: Sequence[str], n: int):
        self.n = n
        self.vals: Dict[str, np.ndarray] = {
            reg: np.zeros(n, dtype=np.int64) for reg in registers
        }
        self.none: Dict[str, np.ndarray] = {
            reg: np.ones(n, dtype=bool) for reg in registers
        }
        self.objs: Dict[str, np.ndarray] = {}

    # -- whole-register reads ------------------------------------------
    def values(self, reg: str) -> np.ndarray:
        """The value vector (``None`` lanes read 0, as in ``eval_expr``)."""
        return self.vals[reg]

    def is_none(self, reg: str) -> np.ndarray:
        return self.none[reg]

    def present(self, reg: str) -> np.ndarray:
        """Lanes where the register ``is not None``."""
        return ~self.none[reg]

    def truthy(self, reg: str) -> np.ndarray:
        """Scalar ``if state.get(reg):`` — None lanes hold 0, so one test."""
        return self.vals[reg] != 0

    # -- whole-register writes -----------------------------------------
    def fill(self, reg: str, value: Any) -> None:
        """Broadcast one scalar initial value to every lane."""
        vals, none = self.vals[reg], self.none[reg]
        if value is None:
            vals[:] = 0
            none[:] = True
        elif isinstance(value, _BOOL_TYPES + _INT_TYPES):
            vals[:] = int(value)
            none[:] = False
        else:
            sidecar = np.empty(self.n, dtype=object)
            sidecar[:] = [value] * self.n
            self.objs[reg] = sidecar
            vals[:] = 0
            none[:] = False
            return
        self.objs.pop(reg, None)

    def assign(self, reg: str, values, none=None) -> None:
        """Assign every lane: values + optional none mask."""
        vals, mask = self.vals[reg], self.none[reg]
        vals[:] = values
        if none is None:
            mask[:] = False
        else:
            mask[:] = none
            vals[mask] = 0
        self.objs.pop(reg, None)

    def assign_where(self, reg: str, where: np.ndarray, values,
                     none=None) -> None:
        """Assign only the lanes selected by ``where``."""
        vals, mask = self.vals[reg], self.none[reg]
        np.copyto(vals, values, where=where)
        if none is None:
            mask[where] = False
        else:
            np.copyto(mask, none, where=where)
        vals[mask] = 0
        sidecar = self.objs.get(reg)
        if sidecar is not None:
            sidecar[where] = None

    # -- per-lane access (the scalar bridge) ---------------------------
    def lane_value(self, reg: str, lane: int) -> Any:
        sidecar = self.objs.get(reg)
        if sidecar is not None:
            value = sidecar[lane]
            if value is not None:
                return value
        if self.none[reg][lane]:
            return None
        return int(self.vals[reg][lane])

    def set_lane(self, reg: str, lane: int, value: Any) -> None:
        sidecar = self.objs.get(reg)
        if value is None:
            self.none[reg][lane] = True
            self.vals[reg][lane] = 0
        elif isinstance(value, _BOOL_TYPES + _INT_TYPES):
            try:
                self.vals[reg][lane] = int(value)
            except OverflowError:
                self._set_lane_object(reg, lane, value)
                return
            self.none[reg][lane] = False
        else:
            self._set_lane_object(reg, lane, value)
            return
        if sidecar is not None:
            sidecar[lane] = None

    def _set_lane_object(self, reg: str, lane: int, value: Any) -> None:
        sidecar = self.objs.get(reg)
        if sidecar is None:
            sidecar = self.objs[reg] = np.empty(self.n, dtype=object)
        sidecar[lane] = value
        self.none[reg][lane] = False
        self.vals[reg][lane] = 0


# ---------------------------------------------------------------------------
# Vector table views (the vector_reader() contract)
# ---------------------------------------------------------------------------
#
# A view answers `gather(keys, active) -> (vals, found)`:
#   * `keys`   int64 lane vector (contents of inactive lanes ignored);
#   * `active` bool mask of lanes that actually probe the table;
#   * `vals`   int64 results, 0 wherever not found;
#   * `found`  bool mask — the vector form of "result is not None"
#     (implies active).
# Views are snapshots: building one freezes the table.  A backing that
# supports incremental freezing stamps the view with the write-log
# `version` it is synced to and, handed the view back on the next
# freeze (`vector_reader(prev=view)`), replays only the log tail into
# it instead of re-copying the whole table — the O(delta) path behind
# plan patching.  A view is only ever resynced while it is being
# rebound to its (quiesced) plan, never while serving.


class BitmapView:
    """A packed bitmap: one ``uint8`` per slot, gathered by index."""

    __slots__ = ("packed", "version")

    def __init__(self, packed: np.ndarray, version: int = 0):
        self.packed = packed
        self.version = version

    def gather(self, keys: np.ndarray,
               active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        idx = np.where(active, keys, 0)
        vals = self.packed[idx].astype(np.int64)
        vals[~active] = 0
        # A clear bit is still a stored value: found == probed.
        return vals, active.copy()


class DenseArrayView:
    """A dict view densified to index → value arrays (small key spaces)."""

    __slots__ = ("dense", "present")

    def __init__(self, dense: np.ndarray, present: np.ndarray):
        self.dense = dense
        self.present = present

    def gather(self, keys: np.ndarray,
               active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        idx = np.where(active, keys, 0)
        found = active & self.present[idx]
        vals = np.where(found, self.dense[idx], 0)
        return vals, found


class SparseMapView:
    """A dict view as sorted keys + ``searchsorted`` probe (sparse keys)."""

    __slots__ = ("keys", "data", "version")

    def __init__(self, keys: np.ndarray, data: np.ndarray, version: int = 0):
        self.keys = keys
        self.data = data
        self.version = version

    def gather(self, keys: np.ndarray,
               active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self.keys.size == 0:
            zero = np.zeros(keys.shape, dtype=np.int64)
            return zero, np.zeros(keys.shape, dtype=bool)
        pos = np.searchsorted(self.keys, keys)
        pos = np.minimum(pos, self.keys.size - 1)
        found = active & (self.keys[pos] == keys)
        vals = np.where(found, self.data[pos], 0)
        return vals, found


class TcamMatrixView:
    """TCAM groups as ``(value, mask)`` row matrices, priority-ordered.

    Rows are flattened in frozen group order (lowest ``(priority,
    mask)`` first — the winning order), so the broadcast compare
    ``(keys & mask) == value`` followed by ``argmax`` along the row
    axis returns the highest-priority match per lane.
    """

    __slots__ = ("values_", "masks", "data")

    def __init__(self, values: np.ndarray, masks: np.ndarray,
                 data: np.ndarray):
        self.values_ = values
        self.masks = masks
        self.data = data

    def gather(self, keys: np.ndarray,
               active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self.values_.size == 0:
            zero = np.zeros(keys.shape, dtype=np.int64)
            return zero, np.zeros(keys.shape, dtype=bool)
        match = (keys[:, None] & self.masks[None, :]) == self.values_[None, :]
        match &= active[:, None]
        found = match.any(axis=1)
        first = match.argmax(axis=1)
        vals = np.where(found, self.data[first], 0)
        return vals, found


class TcamGroupView:
    """TCAM groups as per-group sorted-key probes, priority-ordered.

    The scalable form of :class:`TcamMatrixView`: one
    :class:`SparseMapView` per frozen ``(priority, mask)`` group,
    probed in winning order with the group's mask applied to the keys.
    Lanes answered by an earlier (higher-priority) group drop out of
    later probes, so the first hit per lane wins — exactly
    :meth:`TcamTable.search`.  Cost is O(groups x lanes x log rows)
    instead of the matrix's O(lanes x rows); prefix-style tables have
    at most ``key_width + 1`` groups.
    """

    __slots__ = ("groups",)

    def __init__(self, groups: Sequence[Tuple[int, "SparseMapView"]]):
        #: ``(mask, view)`` pairs in frozen group (winning) order.
        self.groups = tuple(groups)

    def gather(self, keys: np.ndarray,
               active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        vals = np.zeros(keys.shape, dtype=np.int64)
        found = np.zeros(keys.shape, dtype=bool)
        # Compress to the active lanes once, then shrink the probe set
        # as groups answer: each searchsorted touches only lanes no
        # earlier (higher-priority) group matched, so deep probe chains
        # cost O(sum of survivors) instead of O(groups x lanes).
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return vals, found
        sub = keys[idx]
        for mask, view in self.groups:
            gkeys = view.keys
            if gkeys.size == 0:
                continue
            probe = sub & mask
            pos = np.minimum(np.searchsorted(gkeys, probe), gkeys.size - 1)
            gfound = gkeys[pos] == probe
            if gfound.any():
                hit = idx[gfound]
                vals[hit] = view.data[pos[gfound]]
                found[hit] = True
                keep = ~gfound
                idx = idx[keep]
                if idx.size == 0:
                    break
                sub = sub[keep]
        return vals, found


def view_state(view) -> Tuple[str, Dict[str, Any], Dict[str, np.ndarray]]:
    """A view's content as ``(kind, meta, arrays)`` for persistence.

    The inverse of :func:`view_from_state`; together they let the
    artifact store write compiled vector backings as raw sections and
    map them straight back into live view objects (zero-copy — the
    arrays back the readers directly).
    """
    if isinstance(view, BitmapView):
        return "bitmap", {"version": int(view.version)}, {
            "packed": view.packed}
    if isinstance(view, DenseArrayView):
        return "dense", {}, {"dense": view.dense, "present": view.present}
    if isinstance(view, SparseMapView):
        return "sparse", {"version": int(view.version)}, {
            "keys": view.keys, "data": view.data}
    if isinstance(view, TcamMatrixView):
        return "tcam_matrix", {}, {"values": view.values_,
                                   "masks": view.masks, "data": view.data}
    if isinstance(view, TcamGroupView):
        sizes = [view_.keys.size for _mask, view_ in view.groups]
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        empty = np.zeros(0, dtype=np.int64)
        return "tcam_group", {}, {
            "group_masks": np.array([m for m, _v in view.groups],
                                    dtype=np.int64),
            "group_offsets": offsets,
            "keys": (np.concatenate([v.keys for _m, v in view.groups])
                     if view.groups else empty),
            "data": (np.concatenate([v.data for _m, v in view.groups])
                     if view.groups else empty),
        }
    raise VectorError(f"cannot serialize view of type {type(view).__name__}")


def view_from_state(kind: str, meta: Dict[str, Any],
                    arrays: Dict[str, np.ndarray]):
    """Rebuild a view object from :func:`view_state` output.

    Arrays are adopted as-is — handing in copy-on-write slices of an
    mmapped artifact makes the reconstructed view serve directly off
    the mapped pages.
    """
    if kind == "bitmap":
        return BitmapView(np.asarray(arrays["packed"]),
                          int(meta.get("version", 0)))
    if kind == "dense":
        return DenseArrayView(np.asarray(arrays["dense"]),
                              np.asarray(arrays["present"]).view(np.bool_)
                              if arrays["present"].dtype == np.uint8
                              else np.asarray(arrays["present"]))
    if kind == "sparse":
        return SparseMapView(np.asarray(arrays["keys"]),
                             np.asarray(arrays["data"]),
                             int(meta.get("version", 0)))
    if kind == "tcam_matrix":
        return TcamMatrixView(np.asarray(arrays["values"]),
                              np.asarray(arrays["masks"]),
                              np.asarray(arrays["data"]))
    if kind == "tcam_group":
        masks = np.asarray(arrays["group_masks"])
        offsets = np.asarray(arrays["group_offsets"])
        keys = np.asarray(arrays["keys"])
        data = np.asarray(arrays["data"])
        if offsets.size != masks.size + 1:
            raise ValueError("group offsets do not match group count")
        groups = []
        for g in range(masks.size):
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            groups.append((int(masks[g]),
                           SparseMapView(keys[lo:hi], data[lo:hi])))
        return TcamGroupView(groups)
    raise VectorError(f"unknown serialized view kind {kind!r}")


def _int_items(slots: Dict[int, Any]) -> Optional[List[Tuple[int, int]]]:
    """``(key, value)`` pairs with int-like values, or None if any
    stored value cannot live in an int64 lane (stored ``None`` means
    "miss" and is simply dropped, matching the scalar reader)."""
    items: List[Tuple[int, int]] = []
    for key, value in slots.items():
        if value is None:
            continue
        if isinstance(value, _BOOL_TYPES + _INT_TYPES):
            items.append((int(key), int(value)))
        else:
            return None
    return items


def map_view(slots: Dict[int, Any], capacity: Optional[int] = None):
    """A vector view over a dict: dense when the key space is small
    enough (``capacity <= DENSE_LIMIT``), sorted-probe otherwise.

    Returns ``None`` when the stored values are not int-like — the
    lane compiler then bridges the step to its scalar closure.
    """
    items = _int_items(slots)
    if items is None:
        return None
    if capacity is not None and 0 <= capacity <= DENSE_LIMIT:
        dense = np.zeros(max(1, capacity), dtype=np.int64)
        present = np.zeros(max(1, capacity), dtype=bool)
        for key, value in items:
            dense[key] = value
            present[key] = True
        return DenseArrayView(dense, present)
    if not items:
        empty = np.zeros(0, dtype=np.int64)
        return SparseMapView(empty, empty)
    items.sort()
    keys = np.array([k for k, _v in items], dtype=np.int64)
    data = np.array([v for _k, v in items], dtype=np.int64)
    return SparseMapView(keys, data)


def patch_sparse_view(view: SparseMapView,
                      updates: Dict[int, Optional[int]]) -> None:
    """Apply ``key -> value`` updates (``None`` deletes) to a sorted
    probe view in place: drop every updated key, then merge-insert the
    survivors.  Pure array surgery — O(rows) memmove, no Python loop —
    so an incremental freeze costs a delta, not a rebuild."""
    if not updates:
        return
    keys, data = view.keys, view.data
    changed = np.fromiter(sorted(updates), dtype=np.int64, count=len(updates))
    if keys.size:
        keep = np.isin(keys, changed, invert=True)
        keys, data = keys[keep], data[keep]
    fresh = sorted((k, v) for k, v in updates.items() if v is not None)
    if fresh:
        new_keys = np.fromiter((k for k, _v in fresh), np.int64, len(fresh))
        new_data = np.fromiter((int(v) for _k, v in fresh),
                               np.int64, len(fresh))
        pos = np.searchsorted(keys, new_keys)
        keys = np.insert(keys, pos, new_keys)
        data = np.insert(data, pos, new_data)
    view.keys, view.data = keys, data


# ---------------------------------------------------------------------------
# Step lowering specs
# ---------------------------------------------------------------------------


@dataclass
class VectorStepSpec:
    """How one CRAM step lowers to a lane kernel.

    ``update(lanes, vals, found, active)`` is the array form of the
    step's action.  With ``select`` set, the compiler gathers from the
    step's table view first (``select(lanes) -> (keys, active)``;
    ``active=None`` means every lane) and passes the results through;
    a compute-only spec (``select=None``) receives ``(None, None,
    None)`` and reads/gathers from the lanes itself.  ``reader``
    overrides the view otherwise obtained from the table backing's
    ``vector_reader()``.
    """

    update: Callable[[Lanes, Optional[np.ndarray], Optional[np.ndarray],
                      Optional[np.ndarray]], None]
    select: Optional[Callable[[Lanes], Tuple[np.ndarray,
                                             Optional[np.ndarray]]]] = None
    reader: Optional[Any] = None


def _resolve_view(step) -> Optional[Any]:
    table = getattr(step, "table", None)
    backing = getattr(table, "backing", None)
    vector_reader = getattr(backing, "vector_reader", None)
    if callable(vector_reader):
        return vector_reader()
    return None


def _compile_spec(step, spec: VectorStepSpec) -> Callable[[Lanes], None]:
    update = spec.update
    if spec.select is None:
        def run_compute(lanes: Lanes) -> None:
            update(lanes, None, None, None)
        return run_compute
    view = spec.reader if spec.reader is not None else _resolve_view(step)
    if view is None:
        raise VectorError(
            f"step {step.name!r}: spec needs a table view but the backing "
            "has no vector_reader()"
        )
    select = spec.select

    def run_table(lanes: Lanes) -> None:
        keys, active = select(lanes)
        if active is None:
            active = np.ones(lanes.n, dtype=bool)
        vals, found = view.gather(keys, active)
        update(lanes, vals, found, active)
    return run_table


def _compile_bridge(steps: Sequence[Tuple[str, Callable[[dict], None]]],
                    registers: Sequence[str]) -> Callable[[Lanes], None]:
    """Consecutive un-lowered steps as one per-lane gather/scatter
    segment over the scalar plan's own runner closures.

    A raising runner would otherwise leave the whole batch holding
    MISS sentinels — indistinguishable from genuine misses — so every
    exception escaping a bridged step is re-raised as a
    :class:`VectorBridgeError` naming the step and lane.
    """
    steps = tuple(steps)
    registers = tuple(registers)

    def run_bridge(lanes: Lanes) -> None:
        lane_value = lanes.lane_value
        set_lane = lanes.set_lane
        name = steps[0][0] if steps else "?"
        lane = 0
        try:
            for lane in range(lanes.n):
                state = {reg: lane_value(reg, lane) for reg in registers}
                for name, run in steps:
                    run(state)
                for reg in registers:
                    set_lane(reg, lane, state.get(reg))
        except Exception as exc:
            raise VectorBridgeError(
                f"bridged step {name!r} raised on lane {lane}: "
                f"{type(exc).__name__}: {exc}") from exc
    return run_bridge


def _fuse_kernels(
        kernels: Sequence[Callable[["Lanes"], None]]
) -> Callable[["Lanes"], None]:
    """One callable running a run of adjacent lane kernels back to
    back — the fusion pass output.  The chunk dispatch loop then makes
    a single Python call for the whole gather→compare→select chain."""
    chain = tuple(kernels)

    def run_fused(lanes: Lanes) -> None:
        for kernel in chain:
            kernel(lanes)
    return run_fused


# ---------------------------------------------------------------------------
# The vector plan
# ---------------------------------------------------------------------------


class VectorPlan:
    """A compiled plan lowered to array-wide NumPy kernels.

    ``lookup_batch`` returns an ``int64`` array with :data:`MISS_HOP`
    in ``None`` lanes; ``lookup_batch_hops`` converts to the familiar
    ``List[Optional[int]]``.  ``fully_lowered`` is True when every
    step *and* the final hop extraction run as kernels — the condition
    under which the engine's ``backend="auto"`` picks this plan.
    """

    MISS = MISS_HOP

    def __init__(self, algo, plan: Optional[LookupPlan] = None,
                 chunk: int = DEFAULT_CHUNK, fuse: bool = True):
        if chunk <= 0:
            raise VectorError("chunk must be positive")
        self.plan = plan if plan is not None else LookupPlan(algo)
        program = self.plan.program
        self.algorithm: str = self.plan.algorithm
        self.width: int = self.plan.width
        self._chunk = chunk
        self._registers: Tuple[str, ...] = tuple(sorted(program.registers))
        self._base: Dict[str, Any] = self.plan._base
        #: Whether the fusion pass ran (``--no-fuse`` turns it off).
        self.fuse = bool(fuse)

        specs: Dict[str, VectorStepSpec] = dict(algo.vector_specs())
        # Units in schedule order: ("kernel", (name,), fn) for lowered
        # steps, ("bridge", names, fn) for scalar-bridge segments.
        units: List[Tuple[str, Tuple[str, ...], Callable[[Lanes], None]]] = []
        lowered: List[str] = []
        bridged: List[str] = []
        pending: List[Tuple[str, Callable[[dict], None]]] = []

        def flush_bridge() -> None:
            if pending:
                names = tuple(name for name, _runner in pending)
                units.append(("bridge", names,
                              _compile_bridge(pending, self._registers)))
                bridged.extend(names)
                del pending[:]

        views: Dict[str, Any] = {}
        for name, runner in zip(self.plan.step_names, self.plan._runners):
            spec = specs.pop(name, None)
            kernel = None
            if spec is not None:
                try:
                    kernel = _compile_spec(program.step(name), spec)
                except VectorError:
                    kernel = None  # un-lowerable table: bridge the step
            if kernel is None:
                pending.append((name, runner))
            else:
                flush_bridge()
                units.append(("kernel", (name,), kernel))
                lowered.append(name)
                views[name] = spec.reader
        flush_bridge()
        if specs:
            raise VectorError(
                f"vector_specs for unknown steps: {sorted(specs)}")

        #: Step names executed as lane kernels, in schedule order.
        self.lowered_steps = tuple(lowered)
        #: Step names served by the per-lane scalar bridge.
        self.bridged_steps = tuple(bridged)
        #: Schedule-ordered compile units; :meth:`patch` swaps kernels
        #: here and re-runs the fusion assembly.
        self._units = units
        self._views = views
        self._algo = algo
        self._assemble()
        self._bind_extract()

        self._numpy_ok = self.width <= MAX_VECTOR_WIDTH
        self.fully_lowered = (self._numpy_ok and not self.bridged_steps
                              and self.extract_mode == "vector")

    def _assemble(self) -> None:
        """The fusion pass: collapse maximal runs of adjacent lowered
        kernels into single fused callables, so the per-chunk dispatch
        loop makes one Python call per *run* instead of one per step.
        Bridge segments are fusion barriers."""
        kernels: List[Callable[[Lanes], None]] = []
        sequence: List[Dict[str, Any]] = []
        fused_groups: List[Tuple[str, ...]] = []
        run_names: List[str] = []
        run_kernels: List[Callable[[Lanes], None]] = []

        def flush_run() -> None:
            if not run_kernels:
                return
            if self.fuse and len(run_kernels) > 1:
                kernels.append(_fuse_kernels(run_kernels))
                fused_groups.append(tuple(run_names))
                sequence.append({"steps": list(run_names),
                                 "mode": "vector", "fused": True})
            else:
                for name, kernel in zip(run_names, run_kernels):
                    kernels.append(kernel)
                    sequence.append({"steps": [name],
                                     "mode": "vector", "fused": False})
            del run_names[:]
            del run_kernels[:]

        for kind, names, fn in self._units:
            if kind == "kernel":
                run_names.extend(names)
                run_kernels.append(fn)
            else:
                flush_run()
                kernels.append(fn)
                sequence.append({"steps": list(names),
                                 "mode": "bridge", "fused": False})
        flush_run()

        self._kernels = tuple(kernels)
        #: Step-name groups collapsed into single fused kernels.
        self.fused_groups = tuple(fused_groups)
        #: Steps executing inside fused kernels (the gauge value).
        self.fused_steps = sum(len(group) for group in self.fused_groups)
        #: Dispatch-ordered kernel description (goldens + --explain).
        self._sequence = tuple(
            {key: (list(value) if isinstance(value, list) else value)
             for key, value in entry.items()} for entry in sequence)

    def _bind_extract(self) -> None:
        algo = self._algo
        from ..algorithms.base import LookupAlgorithm
        frozen = algo.vector_extract_factory()
        if frozen is not None:
            self._extract_vec = frozen
            self.extract_mode = "vector"
        elif (type(algo).vector_extract_hop
                is not LookupAlgorithm.vector_extract_hop):
            self._extract_vec = algo.vector_extract_hop
            self.extract_mode = "vector"
        elif (type(algo).cram_extract_hop
                is LookupAlgorithm.cram_extract_hop):
            self._extract_vec = _extract_hop_register
            self.extract_mode = "vector"
        else:
            # A custom scalar extractor with no vector counterpart:
            # run it per lane (the extraction analogue of the bridge).
            self._extract_scalar = algo.cram_extract_hop
            self._extract_vec = None
            self.extract_mode = "scalar"

    def patch(self, specs: Dict[str, VectorStepSpec]) -> None:
        """Swap the named steps' kernels for freshly-frozen ones.

        ``specs`` comes from the algorithm's ``vector_patch(delta)``
        hook.  Only single-step kernel units can be patched; a name
        currently served by the scalar bridge raises
        :class:`VectorError` (the engine then falls back to a full
        recompile).  Fusion re-runs over the updated unit list, and
        extraction re-freezes, so a patched plan is indistinguishable
        from a recompiled one.
        """
        program = self.plan.program
        index = {}
        for i, (kind, names, _fn) in enumerate(self._units):
            if kind == "kernel":
                index[names[0]] = i
        for name, spec in specs.items():
            i = index.get(name)
            if i is None:
                raise VectorError(
                    f"vector_patch for un-lowered or unknown step {name!r}")
            kernel = _compile_spec(program.step(name), spec)
            self._units[i] = ("kernel", (name,), kernel)
            self._views[name] = spec.reader
        self._assemble()
        self._bind_extract()

    def step_view(self, name: str):
        """The table view ``name``'s kernel was compiled against, or
        ``None``.  ``vector_patch`` hooks hand it back to the backing's
        ``vector_reader(prev=...)`` for an incremental re-freeze."""
        return self._views.get(name)

    def view_map(self) -> Dict[str, Any]:
        """Every step with a compiled table view, name → view object.
        The artifact store serializes these via :func:`view_state`."""
        return {name: view for name, view in self._views.items()
                if view is not None}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._kernels)

    @property
    def lowered_fraction(self) -> float:
        total = len(self.lowered_steps) + len(self.bridged_steps)
        return len(self.lowered_steps) / total if total else 1.0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        """One packet through the lane kernels (a batch of one)."""
        return self.lookup_batch_hops([address])[0]

    def lookup_batch(self, addresses) -> np.ndarray:
        """A whole batch through the kernels.

        Returns an ``int64`` array of next hops with :data:`MISS_HOP`
        in no-route lanes.  Batches whose addresses cannot live in
        int64 lanes (width > 62, or values >= 2**63) run through the
        embedded scalar plan instead — same snapshot, same answers.
        """
        if not self._numpy_ok:
            return self._scalar_batch(addresses)
        try:
            addrs = np.asarray(addresses, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            return self._scalar_batch(addresses)
        if addrs.ndim != 1:
            raise VectorError("lookup_batch expects a 1-D address vector")
        n = int(addrs.shape[0])
        hops = np.empty(n, dtype=np.int64)
        registers = self._registers
        base_items = [(reg, value) for reg, value in self._base.items()
                      if value is not None and reg != "addr"]
        for start in range(0, n, self._chunk):
            segment = addrs[start:start + self._chunk]
            lanes = Lanes(registers, int(segment.shape[0]))
            for reg, value in base_items:
                lanes.fill(reg, value)
            lanes.assign("addr", segment)
            for kernel in self._kernels:
                kernel(lanes)
            vals, none = self._extract(lanes)
            hops[start:start + self._chunk] = np.where(none, MISS_HOP, vals)
        return hops

    def lookup_batch_hops(self, addresses) -> List[Optional[int]]:
        """:meth:`lookup_batch` as ``List[Optional[int]]`` (engine form)."""
        hops = self.lookup_batch(addresses)
        return [None if hop == MISS_HOP else hop for hop in hops.tolist()]

    # ------------------------------------------------------------------
    def _extract(self, lanes: Lanes) -> Tuple[np.ndarray, np.ndarray]:
        if self._extract_vec is not None:
            return self._extract_vec(lanes)
        vals = np.zeros(lanes.n, dtype=np.int64)
        none = np.zeros(lanes.n, dtype=bool)
        registers = self._registers
        lane_value = lanes.lane_value
        extract = self._extract_scalar
        lane = 0
        try:
            for lane in range(lanes.n):
                state = {reg: lane_value(reg, lane) for reg in registers}
                hop = extract(state)
                if hop is None:
                    none[lane] = True
                else:
                    vals[lane] = hop
        except Exception as exc:
            raise VectorBridgeError(
                f"scalar hop extraction raised on lane {lane}: "
                f"{type(exc).__name__}: {exc}") from exc
        return vals, none

    def _scalar_batch(self, addresses) -> np.ndarray:
        hops = self.plan.lookup_batch([int(a) for a in addresses])
        return np.array([MISS_HOP if hop is None else hop for hop in hops],
                        dtype=np.int64)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Deterministic lowering summary (for telemetry and docs)."""
        return {
            "algorithm": self.algorithm,
            "width": self.width,
            "steps": len(self.plan.step_names),
            "lowered_steps": list(self.lowered_steps),
            "bridged_steps": list(self.bridged_steps),
            "lowered_fraction": round(self.lowered_fraction, 4),
            "extract_mode": self.extract_mode,
            "fully_lowered": self.fully_lowered,
            "fuse": self.fuse,
            "fused_steps": self.fused_steps,
            "fused_groups": [list(group) for group in self.fused_groups],
            "kernel_sequence": self.kernel_sequence(),
        }

    def kernel_sequence(self) -> List[Dict[str, Any]]:
        """Dispatch-ordered kernels: step names, mode, fusion grouping."""
        return [{"steps": list(entry["steps"]), "mode": entry["mode"],
                 "fused": entry["fused"]} for entry in self._sequence]


def _extract_hop_register(lanes: Lanes) -> Tuple[np.ndarray, np.ndarray]:
    """Default extraction: the ``hop`` register, vectorized."""
    return lanes.values("hop"), lanes.is_none("hop")


def compile_vector_plan(algo, plan: Optional[LookupPlan] = None,
                        chunk: int = DEFAULT_CHUNK,
                        fuse: bool = True) -> VectorPlan:
    """Lower ``algo``'s compiled plan into a :class:`VectorPlan`."""
    return VectorPlan(algo, plan=plan, chunk=chunk, fuse=fuse)
