"""The CRAM model: tables, steps, programs, metrics, idioms, interpreter."""

from .idioms import (
    TCAM_AREA_FACTOR,
    Idiom,
    IdiomApplication,
    prefer_sram,
    tag_width,
)
from .codegen import estimate_p4_effort, generate_p4_sketch
from .interpreter import run, run_packet
from .metrics import CramMetrics, measure
from .plan import LookupPlan, PlanError, compile_plan
from .program import CramProgram, DependencyError
from .vector import (
    MISS_HOP,
    VectorBridgeError,
    VectorError,
    VectorPlan,
    VectorStepSpec,
    compile_vector_plan,
)
from .step import Assoc, Bin, Const, Reg, Statement, Step, Un
from .table import (
    MatchKind,
    TableSpec,
    direct_index_table,
    exact_table,
    register_table,
    ternary_table,
)
from .units import (
    KB,
    MB,
    SRAM_PAGE_BITS,
    SRAM_PAGE_WIDTH,
    SRAM_PAGE_WORDS,
    TCAM_BLOCK_BITS,
    TCAM_BLOCK_ENTRIES,
    TCAM_BLOCK_WIDTH,
    format_bits,
    sram_bits_to_pages,
    sram_pages_for_bits,
    sram_pages_for_table,
    tcam_bits_to_blocks,
    tcam_blocks_for_table,
)

__all__ = [
    "TCAM_AREA_FACTOR",
    "Idiom",
    "IdiomApplication",
    "prefer_sram",
    "tag_width",
    "estimate_p4_effort",
    "generate_p4_sketch",
    "run",
    "run_packet",
    "CramMetrics",
    "measure",
    "LookupPlan",
    "PlanError",
    "compile_plan",
    "MISS_HOP",
    "VectorBridgeError",
    "VectorError",
    "VectorPlan",
    "VectorStepSpec",
    "compile_vector_plan",
    "CramProgram",
    "DependencyError",
    "Assoc",
    "Bin",
    "Const",
    "Reg",
    "Statement",
    "Step",
    "Un",
    "MatchKind",
    "TableSpec",
    "direct_index_table",
    "exact_table",
    "register_table",
    "ternary_table",
    "KB",
    "MB",
    "SRAM_PAGE_BITS",
    "SRAM_PAGE_WIDTH",
    "SRAM_PAGE_WORDS",
    "TCAM_BLOCK_BITS",
    "TCAM_BLOCK_ENTRIES",
    "TCAM_BLOCK_WIDTH",
    "format_bits",
    "sram_bits_to_pages",
    "sram_pages_for_bits",
    "sram_pages_for_table",
    "tcam_bits_to_blocks",
    "tcam_blocks_for_table",
]
