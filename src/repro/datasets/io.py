"""Routing-table file I/O.

A plain-text FIB format compatible with the common
``<prefix> <next-hop>`` dumps produced by route collectors and by
``ip route`` post-processing:

.. code-block:: text

    # comments and blank lines are ignored
    10.0.0.0/8 1
    2001:db8::/32 7

IPv4 and IPv6 prefixes may not be mixed in one file (a FIB has one
address family).  ``save_fib``/``load_fib`` round-trip exactly.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from ..prefix.parse import parse_prefix
from ..prefix.prefix import IPV4_WIDTH, IPV6_WIDTH
from ..prefix.trie import Fib

PathLike = Union[str, Path]


class FibFormatError(ValueError):
    """A malformed line in a FIB dump."""


def load_fib(source: Union[PathLike, TextIO]) -> Fib:
    """Read a FIB from a file path or text stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle, name=str(source))
    return _parse(source, name=getattr(source, "name", "<stream>"))


def loads_fib(text: str) -> Fib:
    """Read a FIB from a string."""
    return _parse(io.StringIO(text), name="<string>")


def _parse(handle: TextIO, name: str) -> Fib:
    fib = None
    for lineno, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise FibFormatError(
                f"{name}:{lineno}: expected '<prefix> <next-hop>', got {raw!r}"
            )
        prefix_text, hop_text = parts
        try:
            prefix = parse_prefix(prefix_text)
        except ValueError as exc:
            raise FibFormatError(f"{name}:{lineno}: {exc}") from exc
        try:
            hop = int(hop_text)
        except ValueError as exc:
            raise FibFormatError(
                f"{name}:{lineno}: next hop {hop_text!r} is not an integer"
            ) from exc
        if hop < 0:
            raise FibFormatError(f"{name}:{lineno}: negative next hop {hop}")
        if fib is None:
            fib = Fib(prefix.width)
        elif prefix.width != fib.width:
            raise FibFormatError(
                f"{name}:{lineno}: mixed address families "
                f"({prefix.width}-bit prefix in a {fib.width}-bit table)"
            )
        fib.insert(prefix, hop)
    if fib is None:
        raise FibFormatError(f"{name}: empty routing table")
    return fib


def save_fib(fib: Fib, destination: Union[PathLike, TextIO]) -> None:
    """Write a FIB as '<prefix> <next-hop>' lines, sorted."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _dump(fib, handle)
        return
    _dump(fib, destination)


def dumps_fib(fib: Fib) -> str:
    """Render a FIB to a string."""
    out = io.StringIO()
    _dump(fib, out)
    return out.getvalue()


def _dump(fib: Fib, handle: TextIO) -> None:
    if fib.width not in (IPV4_WIDTH, IPV6_WIDTH):
        raise ValueError(
            f"only IPv4/IPv6 FIBs can be saved, not width {fib.width}"
        )
    family = "IPv4" if fib.width == IPV4_WIDTH else "IPv6 (64-bit routing view)"
    handle.write(f"# {family} FIB, {len(fib)} prefixes\n")
    for prefix, hop in fib:
        handle.write(f"{prefix} {hop}\n")
