"""Synthetic BGP routing databases (paper §6.1, Figure 8).

The paper evaluates on the AS65000 IPv4 table (~930k prefixes) and the
AS131072 IPv6 table (~190k prefixes), both from September 2023.  Those
snapshots are not redistributable, so this module synthesizes
databases with the properties the paper's algorithms actually consume:

* the **prefix-length distribution** of Figure 8 — major spike at /24
  (IPv4) and /48 (IPv6), minor spikes at 16/20/22 and 28/32/36/40/44,
  very few prefixes shorter than 13 (IPv4) or 28 (IPv6) bits, and a
  small population of IPv4 prefixes longer than /24 (observations
  P1-P3) — this is all RESAIL and SAIL depend on (§7.1);
* realistic **value clustering** for the algorithms that also depend on
  prefix values (BSIC, MASHUP): prefixes are allocated hierarchically
  under a bounded set of provider slices, so that e.g. the ~190k IPv6
  prefixes share only ~7k distinct /24 slices, matching the paper's
  BSIC compression figures (§6.3);
* the IPv6 **universe property**: every IPv6 prefix starts with the
  same three bits, leaving the other seven 3-bit "universes" free for
  the multiverse scaling of §7.2.

Generation is deterministic for a given seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..prefix.distribution import LengthDistribution
from ..prefix.prefix import IPV4_WIDTH, IPV6_WIDTH, Prefix
from ..prefix.trie import Fib

#: Number of distinct next-hop identifiers (fits the 8-bit next-hop
#: encoding implied by the paper's memory accounting).
DEFAULT_NEXT_HOPS = 256

# ---------------------------------------------------------------------------
# Reference prefix-length histograms (Figure 8, calibrated)
# ---------------------------------------------------------------------------

#: IPv4: ~930k prefixes.  Major spike at /24; minor spikes at /16, /20,
#: /22 (>=2% of the table each); 475 prefixes shorter than /13; 800
#: prefixes longer than /24 (calibrated to RESAIL's 3.13 KB look-aside
#: TCAM: 800 entries x 32 bits).
AS65000_LENGTH_COUNTS: Dict[int, int] = {
    8: 20, 9: 15, 10: 40, 11: 100, 12: 300,
    13: 600, 14: 1_200, 15: 2_000,
    16: 40_000, 17: 8_000, 18: 14_000, 19: 18_000,
    20: 55_000, 21: 15_000, 22: 90_000, 23: 18_000, 24: 667_000,
    25: 250, 26: 150, 27: 100, 28: 100, 29: 100, 30: 50, 31: 20, 32: 30,
}

#: IPv6: ~190k prefixes over the 64-bit global-routing view.  Major
#: spike at /48; minor spikes at /28, /32, /36, /40, /44; negligible
#: population below /19.
AS131072_LENGTH_COUNTS: Dict[int, int] = {
    19: 100, 20: 800, 21: 150, 22: 300, 23: 250, 24: 500, 25: 350,
    26: 400, 27: 450,
    28: 6_000, 29: 2_500, 30: 3_000, 31: 2_000,
    32: 18_000, 33: 2_200, 34: 1_800, 35: 1_500,
    36: 9_000, 37: 1_300, 38: 1_200, 39: 1_100,
    40: 12_000, 41: 1_500, 42: 1_300, 43: 1_400,
    44: 14_000, 45: 2_000, 46: 2_500, 47: 3_500,
    48: 95_000,
    49: 1_200, 50: 900, 51: 500, 52: 600, 53: 300, 54: 200, 55: 150,
    56: 1_800, 57: 100, 58: 80, 59: 60, 60: 250, 61: 40, 62: 50,
    63: 30, 64: 700,
}

#: All synthetic IPv6 prefixes share these leading three bits, forming
#: the single occupied "IPv6 universe" that §7.2's multiverse scaling
#: replicates.  (The paper observes its AS131072 prefixes share their
#: first three bits.)
IPV6_UNIVERSE_BITS = 0b000

#: Number of distinct provider slices the hierarchical generator uses.
#: IPv4: ~36k distinct /16 slices (so BSIC's k=16 initial TCAM holds
#: ~37k entries, Table 4).  IPv6: ~7k distinct /24 slices (paper §6.3:
#: "over 190k prefixes into just 7k TCAM entries").
IPV4_SLICE_LENGTH = 16
IPV4_SLICE_COUNT = 44_000
IPV6_SLICE_LENGTH = 24
IPV6_SLICE_COUNT = 7_000


def ipv4_length_distribution(scale: float = 1.0) -> LengthDistribution:
    """The calibrated AS65000-like histogram, optionally scaled (§7.1)."""
    counts = [0] * (IPV4_WIDTH + 1)
    for length, count in AS65000_LENGTH_COUNTS.items():
        counts[length] = round(count * scale)
    return LengthDistribution(IPV4_WIDTH, tuple(counts))


def ipv6_length_distribution(scale: float = 1.0) -> LengthDistribution:
    """The calibrated AS131072-like histogram, optionally scaled."""
    counts = [0] * (IPV6_WIDTH + 1)
    for length, count in AS131072_LENGTH_COUNTS.items():
        counts[length] = round(count * scale)
    return LengthDistribution(IPV6_WIDTH, tuple(counts))


# ---------------------------------------------------------------------------
# Hierarchical value generation
# ---------------------------------------------------------------------------


def _prf(x: int, j: int, salt: int) -> int:
    """A cheap deterministic pseudo-random function (allocation palettes)."""
    mixed = (x * 0x9E3779B97F4A7C15 + j * 0xC2B2AE3D27D4EB4F + salt) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 29
    return (mixed * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF


def _generate(
    distribution: LengthDistribution,
    width: int,
    slice_length: int,
    slice_count: int,
    seed: int,
    universe_bits: Optional[int] = None,
    universe_width: int = 0,
    next_hops: int = DEFAULT_NEXT_HOPS,
    slice_zipf: float = 0.0,
    cluster_levels: tuple = (),
    cluster_fan: int = 2,
    hop_palette: int = 3,
) -> Fib:
    """Hierarchical prefix generator.

    Prefixes of length >= ``slice_length`` are drawn under a bounded
    pool of provider slices; shorter prefixes are drawn directly.
    ``universe_bits``/``universe_width`` pin the leading bits of every
    prefix (the IPv6 universe property).

    Three knobs make the *values* realistic (real BGP tables are far
    from uniform, and BSIC/MASHUP resource use depends on it):

    * ``slice_zipf`` — slice popularity follows a Zipf-like law, so a
      few provider slices own thousands of prefixes (this produces
      BSIC's deep worst-case BSTs, §6.4's step counts);
    * ``cluster_levels``/``cluster_fan`` — below its slice, a prefix
      funnels through at most ``cluster_fan`` sub-allocations at each
      listed depth, modelling RIR->ISP->customer aggregation (this
      produces the dense trie nodes MASHUP keeps in SRAM);
    * ``hop_palette`` — prefixes under one slice draw from a small
      per-slice next-hop palette (routes in one region exit through
      few peers), which lets DXR/BSIC merge neighbouring ranges.
    """
    rng = np.random.default_rng(seed)

    def with_universe(values: np.ndarray, length: int) -> np.ndarray:
        if universe_width == 0:
            return values
        return (universe_bits << (length - universe_width)) | (
            values & ((1 << (length - universe_width)) - 1)
        )

    # Provider slice pool (distinct slice_length-bit values).
    pool_space = 1 << (slice_length - universe_width)
    if slice_count > pool_space:
        raise ValueError("slice pool larger than the slice space")
    slice_values = rng.choice(pool_space, size=slice_count, replace=False)
    slice_values = with_universe(slice_values.astype(object), slice_length)
    slices = np.array(slice_values, dtype=np.uint64)

    # Zipf-like slice popularity: slice i drawn with weight (i+1)^-z.
    if slice_zipf > 0:
        weights = (np.arange(1, len(slices) + 1, dtype=np.float64)) ** (-slice_zipf)
        weights /= weights.sum()
    else:
        weights = None

    fib = Fib(width)
    salt = seed * 0x9E3779B9

    def clustered_value(slice_bits: int, length: int, j_draws, tail: int) -> int:
        """Funnel a draw through the slice's sub-allocations."""
        value = slice_bits
        prev = slice_length
        for idx, level in enumerate(cluster_levels):
            if level >= length:
                break
            sub_bits = level - prev
            sub = _prf(value, int(j_draws[idx]) % cluster_fan, salt) & ((1 << sub_bits) - 1)
            value = (value << sub_bits) | sub
            prev = level
        remaining = length - prev
        if remaining:
            value = (value << remaining) | (tail & ((1 << remaining) - 1))
        return value

    for length in range(width + 1):
        want = distribution.count(length)
        if want == 0:
            continue
        if length == slice_length:
            # Prefixes at the slice length are the provider slices
            # themselves: sample without replacement.
            if want > len(slices):
                raise ValueError(
                    f"{want} length-{length} prefixes exceed the {len(slices)}-slice pool"
                )
            for value in sorted(int(v) for v in rng.choice(slices, size=want, replace=False)):
                fib.insert(
                    Prefix.from_bits(value, length, width),
                    _prf(value, int(rng.integers(hop_palette)), salt) % next_hops,
                )
            continue
        chosen: dict = {}
        attempts = 0
        while len(chosen) < want:
            need = want - len(chosen)
            batch = max(256, int(need * 1.3))
            if length >= slice_length:
                base = rng.choice(slices, size=batch, p=weights)
                tails = rng.integers(0, 1 << 63, size=batch, dtype=np.uint64)
                tails_hi = rng.integers(0, 1 << 63, size=batch, dtype=np.uint64)
                jays = rng.integers(0, 1 << 30, size=(batch, max(1, len(cluster_levels)) + 1))
                for b, t, th, js in zip(base, tails, tails_hi, jays):
                    if len(chosen) >= want:
                        break
                    tail = (int(th) << 63) | int(t)
                    value = clustered_value(int(b), length, js, tail)
                    if value not in chosen:
                        chosen[value] = _prf(int(b), int(js[-1]) % hop_palette, salt) % next_hops
            else:
                space_bits = length - universe_width
                if space_bits <= 0:
                    values = [universe_bits >> (universe_width - length)] if length else [0]
                else:
                    draws = rng.integers(
                        0, 1 << min(space_bits, 63), size=batch, dtype=np.uint64
                    )
                    values = [
                        int(with_universe(np.array([int(v)], dtype=object), length)[0])
                        for v in draws
                    ]
                hops = rng.integers(0, next_hops, size=len(values))
                for value, hop in zip(values, hops):
                    if len(chosen) >= want:
                        break
                    chosen.setdefault(value, int(hop))
            attempts += 1
            if attempts > 1000:
                raise RuntimeError(
                    f"could not draw {want} distinct length-{length} prefixes"
                )
        for value in sorted(chosen):
            fib.insert(Prefix.from_bits(value, length, width), chosen[value])
    return fib


#: Generated databases are memoized per (scale, seed) — benchmarks
#: rebuild the same snapshot many times.  Treat the returned Fib as
#: read-only (algorithms only read it).
_FIB_CACHE: Dict[Tuple[str, float, int], Fib] = {}


def synthesize_as65000(scale: float = 1.0, seed: int = 65000) -> Fib:
    """Synthetic AS65000-like IPv4 FIB (~930k prefixes at scale 1.0).

    ``scale`` applies the paper's constant-factor length scaling (§7.1)
    at generation time, handy for fast tests (e.g. ``scale=0.01``).
    The result is cached; treat it as read-only.
    """
    key = ("v4", scale, seed)
    if key not in _FIB_CACHE:
        _FIB_CACHE[key] = _generate(
            ipv4_length_distribution(scale),
            IPV4_WIDTH,
            IPV4_SLICE_LENGTH,
            max(16, int(IPV4_SLICE_COUNT * min(1.0, scale * 4))),
            seed,
            slice_zipf=0.3,
            cluster_levels=(20,),
            cluster_fan=2,
        )
    return _FIB_CACHE[key]


def synthesize_as131072(scale: float = 1.0, seed: int = 131072) -> Fib:
    """Synthetic AS131072-like IPv6 FIB (~190k prefixes at scale 1.0).

    The result is cached; treat it as read-only.
    """
    key = ("v6", scale, seed)
    if key not in _FIB_CACHE:
        _FIB_CACHE[key] = _generate(
            ipv6_length_distribution(scale),
            IPV6_WIDTH,
            IPV6_SLICE_LENGTH,
            max(16, int(IPV6_SLICE_COUNT * min(1.0, scale * 4))),
            seed,
            universe_bits=IPV6_UNIVERSE_BITS,
            universe_width=3,
            slice_zipf=0.9,
            cluster_levels=(32,),
            cluster_fan=4,
        )
    return _FIB_CACHE[key]


def small_example_fib() -> Fib:
    """The paper's Table 1 routing table (8-bit toy addresses).

    Next hops use the encoding A=0, B=1, C=2, D=3.
    """
    from ..prefix.prefix import from_bitstring  # local import to avoid cycle

    entries = [
        ("010100", 0),  # 1: 010100** -> A
        ("011", 1),  # 2: 011***** -> B
        ("100100", 2),  # 3: 100100** -> C
        ("100101", 3),  # 4: 100101** -> D
        ("10010100", 0),  # 5 -> A
        ("10011010", 1),  # 6 -> B
        ("10011011", 2),  # 7 -> C
        ("10100011", 0),  # 8 -> A
    ]
    fib = Fib(8)
    for bits, hop in entries:
        fib.insert(from_bitstring(bits, 8), hop)
    return fib
