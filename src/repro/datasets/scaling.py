"""Database scaling models for the §7 scalability experiments.

Two scaling regimes from the paper:

* **Constant-factor length scaling** (§7.1, IPv4): RESAIL's and SAIL's
  resource use depends only on the prefix-*length* histogram, so
  larger databases are modelled by scaling every length count by a
  constant factor — no synthetic prefixes needed.
* **Multiverse scaling** (§7.2, IPv6): BSIC's resource use depends on
  prefix *values*.  All base prefixes share their leading three bits
  (one "universe"); copying the database into the other 3-bit
  universes multiplies every table population uniformly while keeping
  the per-universe structure identical — the worst case for the
  initial TCAM, SRAM, and stages alike.
"""

from __future__ import annotations

from typing import List

from ..prefix.distribution import LengthDistribution, scale_distribution
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib


def scale_lengths(distribution: LengthDistribution, factor: float) -> LengthDistribution:
    """Constant-factor scaling of a length histogram (§7.1)."""
    return scale_distribution(distribution, factor)


def multiverse_scale(fib: Fib, universes: int, universe_width: int = 3) -> Fib:
    """Replicate ``fib`` into ``universes`` distinct leading-bit universes.

    The base database must occupy a single universe (all prefixes
    agree on their top ``universe_width`` bits and are at least that
    long).  Universe 0 keeps the original values; universe ``u`` maps
    the leading bits to ``base_bits XOR u``.  Next hops are preserved,
    so every universe routes identically — the uniform-distribution
    assumption of multiverse scaling.
    """
    if not 1 <= universes <= (1 << universe_width):
        raise ValueError(
            f"universes must be in [1, {1 << universe_width}] for width {universe_width}"
        )
    entries = list(fib)
    if not entries:
        raise ValueError("cannot multiverse-scale an empty FIB")
    width = fib.width
    shift = width - universe_width
    base_bits = entries[0][0].value >> shift
    for prefix, _hop in entries:
        if prefix.length < universe_width or (prefix.value >> shift) != base_bits:
            raise ValueError(
                f"prefix {prefix} does not live in universe {base_bits:#b}"
            )

    scaled = Fib(width)
    universe_mask = ((1 << universe_width) - 1) << shift
    for universe in range(universes):
        flip = universe << shift
        for prefix, hop in entries:
            value = (prefix.value & ~universe_mask) | ((prefix.value ^ flip) & universe_mask)
            scaled.insert(Prefix(value, prefix.length, width), hop)
    return scaled


def multiverse_sizes(base_size: int, max_universes: int = 8) -> List[int]:
    """The database sizes multiverse scaling can produce."""
    return [base_size * u for u in range(1, max_universes + 1)]
