"""Lookup workload generators.

Address streams for correctness and throughput experiments.  All
generators are deterministic for a given seed and return plain integer
addresses of the FIB's width.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..prefix.trie import Fib


def uniform_addresses(width: int, count: int, seed: int = 1) -> List[int]:
    """Uniform random addresses over the whole space (mostly misses on
    sparse tables — exercises the default/miss paths)."""
    rng = np.random.default_rng(seed)
    if width <= 63:
        return rng.integers(0, 1 << width, size=count, dtype=np.uint64).tolist()
    high = rng.integers(0, 1 << (width - 32), size=count, dtype=np.uint64)
    low = rng.integers(0, 1 << 32, size=count, dtype=np.uint64)
    return [(int(h) << 32) | int(l) for h, l in zip(high, low)]


def matching_addresses(fib: Fib, count: int, seed: int = 2) -> List[int]:
    """Addresses drawn under random FIB prefixes (every lookup hits).

    Each address picks a prefix uniformly and fills the host bits at
    random, so the distribution of match lengths follows the FIB's
    prefix-length distribution — the paper's workload assumption for
    bitmap/hash structures.
    """
    prefixes = fib.prefixes()
    if not prefixes:
        raise ValueError("FIB is empty")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(prefixes), size=count)
    addresses = []
    for pick in picks:
        prefix = prefixes[int(pick)]
        host_bits = fib.width - prefix.length
        host = int(rng.integers(0, 1 << min(host_bits, 63))) if host_bits else 0
        if host_bits > 63:
            host = (host << (host_bits - 63)) | int(rng.integers(0, 1 << (host_bits - 63)))
        addresses.append(prefix.value | host)
    return addresses


def mixed_addresses(fib: Fib, count: int, hit_fraction: float = 0.9, seed: int = 3) -> List[int]:
    """A hit/miss mix approximating edge-router traffic."""
    if not 0 <= hit_fraction <= 1:
        raise ValueError("hit_fraction outside [0, 1]")
    hits = int(count * hit_fraction)
    addresses = matching_addresses(fib, hits, seed) + uniform_addresses(
        fib.width, count - hits, seed + 1
    )
    rng = np.random.default_rng(seed + 2)
    rng.shuffle(addresses)
    return addresses


def skewed_addresses(fib: Fib, count: int, seed: int = 5,
                     alpha: float = 1.2, flows_per_prefix: int = 4) -> List[int]:
    """Zipf-skewed traffic: a small number of prefixes carries most of it.

    This is the CRAM paper's FIB-caching premise made concrete.
    Prefixes get popularity ranks by a seeded permutation and are drawn
    with probability proportional to ``1 / rank**alpha``; each prefix
    owns a small set of ``flows_per_prefix`` host addresses, so hot
    *exact addresses* repeat — the working set an exact-match FIB cache
    (``repro.engine.FibCache``) can actually absorb.
    """
    prefixes = fib.prefixes()
    if not prefixes:
        raise ValueError("FIB is empty")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if flows_per_prefix < 1:
        raise ValueError("flows_per_prefix must be positive")
    n = len(prefixes)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** alpha
    picks = rng.choice(n, size=count, p=weights / weights.sum())
    flow_hosts = {}
    out = []
    for pick in picks:
        prefix = prefixes[int(order[int(pick)])]
        hosts = flow_hosts.get(prefix)
        if hosts is None:
            host_bits = fib.width - prefix.length
            if host_bits == 0:
                hosts = [0]
            else:
                span = 1 << min(host_bits, 63)
                k = min(flows_per_prefix, span)
                hosts = [int(h) << max(0, host_bits - 63)
                         for h in rng.integers(0, span, size=k)]
            flow_hosts[prefix] = hosts
        out.append(prefix.value | hosts[int(rng.integers(0, len(hosts)))])
    return out


def deepest_match_addresses(fib: Fib, count: int, seed: int = 4) -> List[int]:
    """Addresses under the *longest* prefixes (adversarial for tries and
    length-based searches: every lookup walks the maximum depth)."""
    prefixes = fib.prefixes()
    if not prefixes:
        raise ValueError("FIB is empty")
    max_len = max(p.length for p in prefixes)
    deepest = [p for p in prefixes if p.length == max_len]
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(deepest), size=count)
    out = []
    for pick in picks:
        prefix = deepest[int(pick)]
        host_bits = fib.width - prefix.length
        host = int(rng.integers(0, 1 << host_bits)) if 0 < host_bits <= 63 else 0
        out.append(prefix.value | host)
    return out
