"""Synthetic BGP databases, growth models, scaling, and workloads."""

from .bgp import (
    AS65000_LENGTH_COUNTS,
    AS131072_LENGTH_COUNTS,
    DEFAULT_NEXT_HOPS,
    IPV6_UNIVERSE_BITS,
    ipv4_length_distribution,
    ipv6_length_distribution,
    small_example_fib,
    synthesize_as65000,
    synthesize_as131072,
)
from .growth import (
    GrowthPoint,
    growth_series,
    ipv4_table_size,
    ipv6_table_size,
    years_until_ipv4_exceeds,
    years_until_ipv6_exceeds,
)
from .io import FibFormatError, dumps_fib, load_fib, loads_fib, save_fib
from .scaling import multiverse_scale, multiverse_sizes, scale_lengths
from .workloads import (
    deepest_match_addresses,
    matching_addresses,
    mixed_addresses,
    skewed_addresses,
    uniform_addresses,
)

__all__ = [
    "AS65000_LENGTH_COUNTS",
    "AS131072_LENGTH_COUNTS",
    "DEFAULT_NEXT_HOPS",
    "IPV6_UNIVERSE_BITS",
    "ipv4_length_distribution",
    "ipv6_length_distribution",
    "small_example_fib",
    "synthesize_as65000",
    "synthesize_as131072",
    "GrowthPoint",
    "growth_series",
    "ipv4_table_size",
    "ipv6_table_size",
    "years_until_ipv4_exceeds",
    "years_until_ipv6_exceeds",
    "FibFormatError",
    "dumps_fib",
    "load_fib",
    "loads_fib",
    "save_fib",
    "multiverse_scale",
    "multiverse_sizes",
    "scale_lengths",
    "deepest_match_addresses",
    "matching_addresses",
    "mixed_addresses",
    "skewed_addresses",
    "uniform_addresses",
]
