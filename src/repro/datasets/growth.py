"""BGP routing-table growth models (paper Figure 1, §1 O1-O2).

The paper's motivating observations:

* **O1** — the global IPv4 table has grown *linearly* for two decades,
  doubling every decade: ~130k routes in 2003, ~930k in 2023, on track
  for ~2M by 2033 if doubling continues.
* **O2** — the global IPv6 table has grown *exponentially*, doubling
  every three years: ~190k routes in 2023, potentially ~0.5M by 2033
  even if growth slows to linear.

These closed forms anchor the scalability claims: RESAIL's 2.25M-IPv4
capacity and BSIC's 390k-IPv6 capacity on Tofino-2 are "likely
sufficient for the next decade".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

IPV4_2023 = 930_000
IPV6_2023 = 190_000
BASE_YEAR = 2023

IPV4_DOUBLING_YEARS = 10.0
IPV6_DOUBLING_YEARS = 3.0

#: Observed linear slope of the IPv4 table, routes/year (130k -> 930k
#: over 2003-2023).
IPV4_LINEAR_SLOPE = (930_000 - 130_000) / 20.0

#: Linear IPv6 slope if growth decays to linear at today's rate: the
#: paper projects ~0.5M by 2033, i.e. ~31k/year.
IPV6_LINEAR_SLOPE = (500_000 - 190_000) / 10.0


def ipv4_table_size(year: float, model: str = "doubling") -> int:
    """Projected IPv4 BGP table size.

    ``model='doubling'`` continues the doubling-per-decade trend (O1);
    ``model='linear'`` extrapolates the 2003-2023 linear slope.
    """
    if model == "doubling":
        return round(IPV4_2023 * 2 ** ((year - BASE_YEAR) / IPV4_DOUBLING_YEARS))
    if model == "linear":
        return max(0, round(IPV4_2023 + IPV4_LINEAR_SLOPE * (year - BASE_YEAR)))
    raise ValueError(f"unknown IPv4 growth model {model!r}")


def ipv6_table_size(year: float, model: str = "doubling") -> int:
    """Projected IPv6 BGP table size.

    ``model='doubling'`` continues the doubling-every-three-years trend
    (O2); ``model='linear'`` is the paper's conservative slowdown that
    still reaches half a million by 2033.
    """
    if model == "doubling":
        return round(IPV6_2023 * 2 ** ((year - BASE_YEAR) / IPV6_DOUBLING_YEARS))
    if model == "linear":
        return max(0, round(IPV6_2023 + IPV6_LINEAR_SLOPE * (year - BASE_YEAR)))
    raise ValueError(f"unknown IPv6 growth model {model!r}")


@dataclass(frozen=True)
class GrowthPoint:
    year: int
    ipv4_routes: int
    ipv6_routes: int


def growth_series(start_year: int = 2003, end_year: int = 2033) -> List[GrowthPoint]:
    """The Figure 1 series, extended to the paper's 2033 horizon.

    Backward years use the same closed forms, which reproduce the
    observed ~130k IPv4 / ~2k IPv6 tables of 2003.
    """
    points = []
    for year in range(start_year, end_year + 1):
        ipv4 = ipv4_table_size(year, "linear" if year <= BASE_YEAR else "doubling")
        ipv6 = ipv6_table_size(year, "doubling")
        points.append(GrowthPoint(year, ipv4, ipv6))
    return points


def years_until_ipv4_exceeds(capacity: int) -> float:
    """Years after 2023 until the doubling IPv4 trend exceeds ``capacity``."""
    import math

    if capacity <= IPV4_2023:
        return 0.0
    return IPV4_DOUBLING_YEARS * math.log2(capacity / IPV4_2023)


def years_until_ipv6_exceeds(capacity: int) -> float:
    """Years after 2023 until the doubling IPv6 trend exceeds ``capacity``."""
    import math

    if capacity <= IPV6_2023:
        return 0.0
    return IPV6_DOUBLING_YEARS * math.log2(capacity / IPV6_2023)
