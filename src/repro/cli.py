"""Command-line interface.

Exposes the package's main workflows without writing Python:

.. code-block:: console

    $ python -m repro synthesize v4 --scale 0.01 --out fib.txt
    $ python -m repro lookup --fib fib.txt --algorithm resail 10.1.2.3
    $ python -m repro metrics --fib fib.txt --algorithm resail bsic mashup
    $ python -m repro codegen --fib fib.txt --algorithm resail --out resail.p4
    $ python -m repro growth --year 2033

Algorithms are referenced by the lower-case names in
:data:`ALGORITHM_FACTORIES`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Poptrie,
    Resail,
    Sail,
)
from .analysis import chip_mapping_table, cram_metrics_table, select_best
from .chip import map_to_drmt, map_to_ideal_rmt, map_to_tofino2
from .core.codegen import estimate_p4_effort, generate_p4_sketch
from .datasets import (
    ipv4_table_size,
    ipv6_table_size,
    synthesize_as65000,
    synthesize_as131072,
)
from .datasets.io import load_fib, save_fib
from .prefix import format_address, parse_ipv4_address, parse_ipv6_address
from .prefix.trie import Fib

ALGORITHM_FACTORIES: Dict[str, Callable[[Fib], object]] = {
    "resail": lambda fib: Resail(fib),
    "sail": lambda fib: Sail(fib),
    "bsic": lambda fib: Bsic(fib),
    "dxr": lambda fib: Dxr(fib, k=16),
    "multibit": lambda fib: MultibitTrie(
        fib, [16, 4, 4, 8] if fib.width == 32 else [20, 12, 16, 16]
    ),
    "mashup": lambda fib: Mashup(fib),
    "poptrie": lambda fib: Poptrie(fib, dp_bits=16),
    "hibst": lambda fib: HiBst(fib),
    "ltcam": lambda fib: LogicalTcam(fib),
}


def _build(name: str, fib: Fib):
    try:
        factory = ALGORITHM_FACTORIES[name]
    except KeyError:
        raise SystemExit(
            f"unknown algorithm {name!r}; choose from "
            f"{', '.join(sorted(ALGORITHM_FACTORIES))}"
        )
    return factory(fib)


def _parse_address(text: str, width: int) -> int:
    return parse_ipv4_address(text) if width == 32 else parse_ipv6_address(text)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_synthesize(args: argparse.Namespace) -> int:
    maker = synthesize_as65000 if args.family == "v4" else synthesize_as131072
    fib = maker(scale=args.scale, seed=args.seed)
    save_fib(fib, args.out)
    print(f"wrote {len(fib):,} prefixes to {args.out}")
    return 0


def _print_lowering_report(vplan) -> None:
    """``repro lookup --explain``: the lane compiler's lowering report.

    Deterministic for a fixed FIB/algorithm: which steps lowered to
    batch kernels, which run under the scalar bridge, how the fusion
    pass grouped them, and the dispatch-ordered kernel sequence.
    """
    info = vplan.describe()
    print(f"algorithm: {info['algorithm']}")
    print(f"width: {info['width']}")
    print(f"fully_lowered: {str(info['fully_lowered']).lower()}")
    print(f"extract_mode: {info['extract_mode']}")
    print(f"fuse: {str(info['fuse']).lower()}")
    print(f"lowered_steps ({len(info['lowered_steps'])}): "
          f"{' '.join(info['lowered_steps']) or '-'}")
    print(f"bridged_steps ({len(info['bridged_steps'])}): "
          f"{' '.join(info['bridged_steps']) or '-'}")
    groups = info["fused_groups"]
    rendered = " ".join("+".join(group) for group in groups) or "-"
    print(f"fused_groups ({len(groups)}): {rendered}")
    print("kernel_sequence:")
    for entry in info["kernel_sequence"]:
        tag = "fused " if entry["fused"] else ""
        print(f"  [{tag}{entry['mode']}] {' '.join(entry['steps'])}")
    print()


def cmd_lookup(args: argparse.Namespace) -> int:
    fib = load_fib(args.fib)
    algo = _build(args.algorithm, fib)
    stats = None
    if args.stats:
        from .obs import enable_hit_tracking

        # Reset after construction so the report reflects only the
        # queried addresses, not table-build accesses.
        stats = enable_hit_tracking(algo)
        for table_stats in stats:
            table_stats.reset()
    addresses = [_parse_address(text, fib.width) for text in args.addresses]
    backend = getattr(args, "backend", "native")
    fuse = not getattr(args, "no_fuse", False)
    if getattr(args, "explain", False):
        _print_lowering_report(algo.compile_vector_plan(fuse=fuse))
    if backend == "native":
        hops = [algo.lookup(address) for address in addresses]
    elif backend == "plan":
        hops = algo.compile_plan().lookup_batch(addresses)
    else:  # vector | auto — mirror the engine's auto rule
        vplan = algo.compile_vector_plan(fuse=fuse)
        if backend == "auto" and not vplan.fully_lowered:
            hops = vplan.plan.lookup_batch(addresses)
        else:
            hops = vplan.lookup_batch_hops(addresses)
    status = 0
    for address, hop in zip(addresses, hops):
        prefix = fib.lookup_prefix(address)
        if hop is None:
            print(f"{format_address(address, fib.width)}: no route")
            status = 1
        else:
            print(f"{format_address(address, fib.width)}: port {hop} via {prefix}")
        if hop != fib.lookup(address):  # pragma: no cover - invariant
            raise SystemExit("BUG: algorithm disagrees with reference trie")
    if stats is not None:
        from .obs import hot_table_report

        print()
        print(hot_table_report(stats))
    return status


def _emit_machine_metrics(args: argparse.Namespace, fib: Fib, algos) -> int:
    """``repro metrics --format prometheus|json``: registry rendering.

    Everything in the Prometheus output is deterministic for a fixed
    FIB/seed (CRAM gauges, lookup counts, table-access counters); the
    wall-clock exercise timings appear only in the JSON document's
    ``timings`` section.
    """
    from .datasets import mixed_addresses
    from .obs import MetricsRegistry, collect_access_stats, export_access_stats

    registry = MetricsRegistry()
    registry.gauge("repro_fib_prefixes", "Routes in the loaded FIB.").set(
        len(fib))
    tcam = registry.gauge("repro_cram_tcam_bits", "CRAM TCAM bits (§2.1).")
    sram = registry.gauge("repro_cram_sram_bits", "CRAM SRAM bits (§2.1).")
    steps = registry.gauge("repro_cram_steps", "CRAM steps (critical path).")
    lookups = registry.counter("repro_lookups_total", "Lookups executed.")
    addresses = (
        mixed_addresses(fib, args.exercise, hit_fraction=0.8, seed=args.seed)
        if args.exercise else []
    )
    for algo in algos:
        metrics = algo.cram_metrics()
        tcam.set(metrics.tcam_bits, algorithm=algo.name)
        sram.set(metrics.sram_bits, algorithm=algo.name)
        steps.set(metrics.steps, algorithm=algo.name)
        stats = collect_access_stats(algo)
        for table_stats in stats:
            table_stats.reset()  # drop construction-time accesses
        if addresses:
            with registry.timer("repro_exercise", algorithm=algo.name):
                for address in addresses:
                    algo.lookup(address)
            lookups.inc(len(addresses), algorithm=algo.name)
        export_access_stats(registry, stats, algorithm=algo.name)
    if getattr(args, "exercise_serve", 0):
        _exercise_serve(registry, fib, algos[0], args.exercise_serve,
                        seed=args.seed)
    if args.format == "prometheus":
        print(registry.render_prometheus(), end="")
    else:
        print(registry.to_json(include_timings=True))
    return 0


def _exercise_serve(registry, fib: Fib, algo, count: int, *,
                    seed: int = 0) -> None:
    """Drive a deterministic serving exercise into ``registry``.

    A single-worker :class:`~repro.server.LookupServer` over a
    :class:`~repro.obs.FakeClock` with full span sampling: request
    size 8 always equals the batch-size trigger, so every flush is
    size-triggered and every ``repro_server_*`` counter — requests,
    batches, flush reasons, span and SLO series — is a pure function
    of (fib, count, seed).  Durations are all zero under the fake
    clock, so nothing here perturbs the deterministic Prometheus
    rendering from run to run.
    """
    from .datasets import mixed_addresses
    from .obs import FakeClock
    from .server import LookupServer

    size = 8
    addresses = mixed_addresses(fib, count, hit_fraction=0.8, seed=seed)
    server = LookupServer(
        algo, workers=1, max_batch=size, max_wait_s=0.001,
        registry=registry, clock=FakeClock(), name="exercise",
        sample_rate=1.0, span_seed=seed).start()
    handles = [server.submit(addresses[i:i + size])
               for i in range(0, len(addresses), size)]
    server.flush()
    for handle in handles:
        handle.result(timeout=60)
    server.close()


def cmd_metrics(args: argparse.Namespace) -> int:
    fib = load_fib(args.fib)
    algos = [_build(name, fib) for name in args.algorithm]
    if args.format != "table":
        return _emit_machine_metrics(args, fib, algos)
    rows = [(algo.name, algo.cram_metrics()) for algo in algos]
    print(cram_metrics_table(f"CRAM metrics ({args.fib})", rows).render())
    if len(rows) > 1:
        winner, rationale = select_best(rows)
        print(f"\nCRAM pick: {winner}\n  {rationale}")
    mappings = []
    for algo in algos:
        layout = algo.layout()
        mappings.append((algo.name, map_to_ideal_rmt(layout)))
        mappings.append((algo.name, map_to_tofino2(layout)))
        if args.drmt:
            mappings.append((algo.name, map_to_drmt(layout)))
    print()
    print(chip_mapping_table("Chip mappings", mappings).render())
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    fib = load_fib(args.fib)
    algo = _build(args.algorithm, fib)
    sketch = generate_p4_sketch(algo.cram_program())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(sketch)
        effort = estimate_p4_effort(algo.cram_program())
        print(f"wrote {args.out}: {effort['tables']} tables, "
              f"{effort['waves']} waves, "
              f"{effort['todo_key_selectors']} key selectors and "
              f"{effort['todo_opaque_actions']} actions left TODO")
    else:
        print(sketch)
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    from .prefix import aggregate, aggregation_ratio

    fib = load_fib(args.fib)
    result = aggregate(fib)
    save_fib(result.fib, args.out)
    note = (f" ({result.discard_hop} = discard/null routes)"
            if result.used_discard else "")
    print(f"aggregated {len(fib):,} -> {len(result):,} prefixes "
          f"(x{aggregation_ratio(fib, result):.2f}) into {args.out}{note}")
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    """Print the reproduced tables/figures from a benchmark run."""
    import pathlib

    results_dir = pathlib.Path(args.dir)
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print(f"no results in {results_dir} - run: "
              "pytest benchmarks/ --benchmark-only")
        return 1
    wanted = set(args.only or [])
    shown = 0
    for path in files:
        if wanted and path.stem not in wanted:
            continue
        print(path.read_text().rstrip())
        print("-" * 72)
        shown += 1
    if wanted and not shown:
        print(f"no result matches {sorted(wanted)}; available: "
              f"{', '.join(p.stem for p in files)}")
        return 1
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    """Drive an algorithm through managed BGP-like churn (robustness)."""
    from .control import (
        ALL_FAULTS,
        CapacityGuard,
        ChurnGenerator,
        FaultPlan,
        Health,
        ManagedFib,
        PROFILES,
        RuntimePolicy,
    )

    if args.smoke:
        args.ops = 200
        args.faults = "all"

    if args.fib:
        base = load_fib(args.fib)
    else:
        maker = synthesize_as65000 if args.family == "v4" else synthesize_as131072
        base = maker(scale=args.scale)

    if args.faults == "all":
        fault_names = sorted(ALL_FAULTS)
    elif args.faults in ("none", ""):
        fault_names = []
    else:
        fault_names = [n.strip() for n in args.faults.split(",") if n.strip()]
    try:
        plan = FaultPlan.build(fault_names, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc))

    guard = CapacityGuard(tcam_blocks=args.tcam_budget,
                          sram_pages=args.sram_budget)
    policy = RuntimePolicy(rebuild_budget=args.rebuild_budget,
                           delta_updates=args.delta)
    managed = ManagedFib(
        lambda fib: _build(args.algo, fib),
        base,
        policy=policy,
        guard=guard,
        faults=plan,
        check_seed=args.seed,
    )
    generator = ChurnGenerator(base, seed=args.seed,
                               profile=PROFILES[args.profile])
    print(f"churn: algo={args.algo} family={args.family} "
          f"base={len(base)} prefixes ops={args.ops} batch={args.batch} "
          f"seed={args.seed} profile={args.profile} "
          f"faults={','.join(fault_names) or 'none'}")
    for batch in generator.batches(args.ops, args.batch):
        managed.apply_batch(batch)
        if managed.health is Health.FAILED:
            break
    managed.log.check_accounting()
    managed.log.check_registry_consistency()
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(managed.registry.to_json(include_timings=True))
            handle.write("\n")
    if args.events_out:
        with open(args.events_out, "w", encoding="utf-8") as handle:
            handle.write(managed.log.to_jsonl())
    print(managed.log.summary())
    print(f"final: health={managed.health} table={len(managed)} prefixes "
          f"simulated_backoff={managed.simulated_backoff_s * 1000:.3f}ms")
    if managed.minimal_repro is not None:
        label = ("minimal repro: " if managed.log.count("repro_shrunk")
                 else "repro trace (replay could not reproduce; unshrunk): ")
        print(label + " ".join(op.render() for op in managed.minimal_repro))
    failed = (managed.health is Health.FAILED
              or managed.log.count("violation") > 0)
    return 1 if failed else 0


def _artifact_ref(text: str):
    """Split a ``NAME[:VERSION]`` catalog reference."""
    name, _, version = text.partition(":")
    return name, (version or None)


def _artifact_save(args: argparse.Namespace, algo, fib: Fib) -> None:
    """``serve --save``: snapshot the built state into the catalog."""
    from .artifact import ArtifactCatalog

    name, version = _artifact_ref(args.save)
    catalog = ArtifactCatalog(args.catalog)
    try:
        vplan = algo.compile_vector_plan()
    except Exception:
        vplan = None  # scalar-only schemes still snapshot their state
    version = catalog.save(name, algo, fib, version=version,
                           vector_plan=vplan)
    print(f"serve: saved artifact {name}:{version} to {catalog.root}")


def _serve_concurrent(args: argparse.Namespace, base: Fib, registry,
                      loaded=None) -> int:
    """``repro serve --workers N``: the coalesced concurrent frontend.

    Producer threads submit small requests; the
    :class:`~repro.server.LookupServer` coalesces them into engine
    batches while the main thread interleaves managed churn.  Every
    answered request is checked against the oracle *as of the serving
    epoch its batch executed under* — per-epoch snapshots are recorded
    by a commit listener — so the spot checks stay exact under churn.

    SIGINT/SIGTERM drain gracefully: accepted requests are answered,
    the pool winds down, and the command exits 130.  ``--chaos`` arms
    a seeded :class:`~repro.chaos.ChaosPlan` against the serving
    dataplane (the supervisor keeps the run alive through the kills).
    """
    import signal
    import threading

    from .control import ChurnGenerator, ManagedFib, PROFILES
    from .datasets import skewed_addresses
    from .server import LookupServer, ServerError

    if args.vrfs > 0 or args.policy == "vrf-hash":
        raise SystemExit("serve: --workers does not combine with VRF "
                         "sharding (use the synchronous path)")

    chaos_plan = None
    chaos_names: List[str] = []
    if getattr(args, "chaos", None):
        from .chaos import ALL_CHAOS, DEFAULT_CHAOS, ChaosPlan
        if args.chaos == "all":
            chaos_names = sorted(ALL_CHAOS)
        elif args.chaos == "default":
            chaos_names = list(DEFAULT_CHAOS)
        else:
            chaos_names = [n for n in args.chaos.split(",") if n]
        chaos_seed = (args.chaos_seed if args.chaos_seed is not None
                      else args.seed)
        chaos_plan = ChaosPlan.build(chaos_names, chaos_seed)
    deadline_ms = getattr(args, "deadline", 0.0)
    from .control import RuntimePolicy
    delta = getattr(args, "delta", True)
    managed = ManagedFib(lambda fib: _build(args.algo, fib), base,
                         registry=registry, check_seed=args.seed,
                         policy=RuntimePolicy(delta_updates=delta),
                         algo=(loaded.algorithm() if loaded is not None
                               else None))
    if getattr(args, "save", None):
        _artifact_save(args, managed.algo, managed.oracle)
    server = LookupServer(managed=managed, workers=args.workers,
                          max_batch=args.max_batch,
                          max_wait_s=args.max_wait / 1000.0,
                          overload=args.overload, mode=args.mode,
                          cache_size=args.cache, backend=args.backend,
                          name="serve", chaos=chaos_plan,
                          ship_deltas=delta,
                          request_deadline_s=(deadline_ms / 1000.0
                                              if deadline_ms else None),
                          sample_rate=(args.sample_rate
                                       if getattr(args, "sample_rate",
                                                  None) is not None
                                       else 0.0625),
                          span_seed=args.seed,
                          ack_timeout_s=2.0 if any(
                              n.startswith("ack") for n in chaos_names)
                          else 60.0,
                          artifact=(str(loaded.path)
                                    if loaded is not None
                                    and args.mode == "process" else None))
    status = None
    status_port = getattr(args, "status_port", None)
    if status_port is not None:
        from .obs.status import StatusServer
        status = StatusServer(
            registry, port=status_port,
            health=lambda: {"state": str(server.health_state),
                            "epoch": server.epoch},
            epoch=lambda: server.epoch,
            spans=server.spans.tail,
            slo=server.slo.report)
        status.start()
        print(f"serve: status endpoint at {status.url}")
    # Registered after the server's own listener, so by the time this
    # runs the epoch is already bumped: snapshot keys match the epochs
    # the workers tag onto batches.
    snapshots = {0: Fib(base.width, list(base))}

    def record_snapshot(outcome, algo, touched):
        snapshots[server.epoch] = Fib(base.width, list(managed.oracle))

    managed.add_commit_listener(record_snapshot)

    addresses = skewed_addresses(base, args.requests, seed=args.seed)
    request_size = max(1, min(16, args.max_batch))
    chunks = [addresses[i:i + request_size]
              for i in range(0, len(addresses), request_size)]
    producers = min(4, max(1, args.workers))
    handles: List[Optional[object]] = [None] * len(chunks)

    def produce(lane: int) -> None:
        try:
            for idx in range(lane, len(chunks), producers):
                handles[idx] = server.submit(chunks[idx])
        except ServerError:
            return  # server closing (signal-drain): stop submitting

    generator = (ChurnGenerator(base, seed=args.seed,
                                profile=PROFILES[args.profile])
                 if args.churn_ops else None)
    engine_batches = max(1, -(-len(addresses) // args.batch))
    churn_batches = (engine_batches // args.churn_every
                     if generator is not None and args.churn_every else 0)
    pacing = threading.Event()  # never set: .wait() is a pure sleep

    # Graceful drain on SIGINT/SIGTERM: raise in the main thread so
    # the `with server` unwind closes with drain=True — everything
    # already accepted is answered before the process exits.
    def _drain_signal(signum, frame):
        raise KeyboardInterrupt

    old_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            old_handlers[signum] = signal.signal(signum, _drain_signal)
        except ValueError:  # pragma: no cover - not the main thread
            pass

    try:
        with server, registry.timer("repro_serve_batch"):
            threads = [threading.Thread(target=produce, args=(lane,),
                                        name=f"serve-client-{lane}")
                       for lane in range(producers)]
            for thread in threads:
                thread.start()
            for _ in range(churn_batches):
                if not any(t.is_alive() for t in threads):
                    break
                managed.apply_batch(list(generator.ops(args.churn_ops)))
                pacing.wait(0.001)
            for thread in threads:
                thread.join()
            server.flush()
    except KeyboardInterrupt:
        # The context manager has already drained and closed.
        print("serve: interrupted — drained accepted requests and "
              "shut down cleanly")
        return 130
    finally:
        for signum, handler in old_handlers.items():
            signal.signal(signum, handler)

    with registry.timer("repro_serve_check"):
        mismatches = straddled = shed = checked = 0
        position = 0
        for handle in handles:
            if handle is None:  # producer stopped early (signal drain)
                continue
            try:
                hops = handle.result(timeout=120)
            except ServerError:
                shed += 1
                position += len(handle.addresses)
                continue
            lo, hi = handle.epoch_span
            if lo != hi:
                # Split across a commit; each half was consistent with
                # its own epoch but the handle only records the last.
                straddled += 1
                position += len(handle.addresses)
                continue
            oracle = snapshots[hi]
            for i, address in enumerate(handle.addresses):
                if args.check_every and (position + i) % args.check_every == 0:
                    checked += 1
                    if hops[i] != oracle.lookup(address):
                        mismatches += 1
            position += len(handle.addresses)

    serve_s = registry.timings_snapshot().get(
        "repro_serve_batch", {}).get("total_s", 0.0) or 1e-9
    snap = registry.snapshot()
    batch_count = snap["counters"].get(
        "repro_server_batches_total", {}).get(f'{{server="serve"}}', 0)
    print(f"serve: algo={args.algo} policy=coalesced mode={args.mode} "
          f"backend={args.backend} workers={args.workers} "
          f"requests={len(addresses)} request_size={request_size} "
          f"max_batch={args.max_batch} max_wait={args.max_wait}ms "
          f"cache={args.cache} seed={args.seed}")
    for eng in server.engines():
        print(f"  worker {eng.name}: backend {eng.active_backend}")
    print(f"  coalesced: {len(chunks)} requests into {batch_count} batches, "
          f"{shed} shed, {straddled} commit-straddled")
    print(f"  churn: {managed.log.batches_total} batches committed, "
          f"serving epoch {server.epoch}, health={managed.health}")
    if server.supervisor is not None and (chaos_plan is not None
                                          or server.supervisor.deaths):
        sup = server.supervisor
        print(f"  chaos: faults={','.join(chaos_names) or 'none'} "
              f"deaths={sup.deaths} restarts={sup.restarts} "
              f"giveups={sup.giveups} requeued={sup.requeued_batches} "
              f"serving_health={server.health_state}")
    print(f"  throughput: {len(addresses) / serve_s:,.0f} lookups/s "
          f"({serve_s * 1e3:.1f} ms serving)")
    slo_report = server.slo.report()
    request_pcts = slo_report["phases"].get("request", {})
    print(f"  latency: p50={request_pcts.get('p50_s', 0.0) * 1e3:.2f}ms "
          f"p99={request_pcts.get('p99_s', 0.0) * 1e3:.2f}ms "
          f"p999={request_pcts.get('p999_s', 0.0) * 1e3:.2f}ms "
          f"(window of {request_pcts.get('window_n', 0)}, "
          f"{slo_report['breaches']} SLO breaches)")
    span_counts = server.spans.counts()
    rate = server.spans.sample_rate
    print(f"  spans: {len(server.spans)} recorded at rate {rate:g} "
          f"({', '.join(f'{k}={v}' for k, v in span_counts.items()) or 'none'})")
    if rate >= 1.0:
        from .obs.spans import check_span_metrics_consistency
        report = check_span_metrics_consistency(server.spans, registry,
                                                server="serve")
        if report["ok"]:
            print("  span<->metrics consistency: OK "
                  f"(count={report['spans']['count']}, sums agree)")
        else:
            print("  span<->metrics consistency: FAILED: "
                  + "; ".join(report["mismatches"]))
            return 1
    if getattr(args, "span_jsonl", None):
        server.spans.write_jsonl(args.span_jsonl)
        print(f"  spans written to {args.span_jsonl}")
    if getattr(args, "span_chrome", None):
        server.spans.write_chrome_trace(args.span_chrome)
        print(f"  chrome trace written to {args.span_chrome}")
    if status is not None:
        status.close()
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry.to_json(include_timings=True))
            handle.write("\n")
    if mismatches:
        print(f"serve: {mismatches} spot-check mismatches against the "
              "epoch oracle")
        return 1
    print(f"  spot-checks: {checked} answers verified against per-epoch "
          "oracle snapshots, all consistent")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a skewed lookup workload through the batch engine."""
    from .control import ChurnGenerator, ManagedFib, PROFILES
    from .datasets import skewed_addresses
    from .engine import BatchEngine, RoundRobinEngine, VrfShardedEngine
    from .obs import MetricsRegistry

    if args.smoke:
        args.scale = 0.001
        args.requests = 4000
        args.batch = 256
        args.cache = 512
        args.churn_every = 4
        args.churn_ops = 8

    loaded = None
    if getattr(args, "load", None):
        from .artifact import ArtifactCatalog
        if args.vrfs > 0 or args.policy == "vrf-hash":
            raise SystemExit("serve: --load does not combine with VRF "
                             "sharding")
        name, version = _artifact_ref(args.load)
        loaded = ArtifactCatalog(args.catalog).load(
            name, version, factory=lambda fib: _build(args.algo, fib))
        base = loaded.fib()
        print(f"serve: warm start from artifact {name}:{loaded.version} "
              f"({len(base):,} prefixes, {loaded.algorithm_name or args.algo})")
    elif args.fib:
        base = load_fib(args.fib)
    else:
        maker = synthesize_as65000 if args.family == "v4" else synthesize_as131072
        base = maker(scale=args.scale)

    if args.workers:
        return _serve_concurrent(args, base, MetricsRegistry(), loaded=loaded)

    policy = args.policy
    if policy == "auto":
        policy = "vrf-hash" if args.vrfs > 0 else "round-robin"
    if policy == "vrf-hash" and args.vrfs < 1:
        raise SystemExit("serve: --policy vrf-hash needs --vrfs >= 1")

    registry = MetricsRegistry()
    addresses = skewed_addresses(base, args.requests, seed=args.seed)
    batches = [addresses[i:i + args.batch]
               for i in range(0, len(addresses), args.batch)]
    mismatches = 0

    if policy == "vrf-hash":
        # Shard FIBs are tag-widened (idiom I5), so the structure must
        # accept arbitrary widths; width-bound schemes fall back to the
        # logical TCAM.
        vrf_algo = args.algo
        if vrf_algo not in ("ltcam", "hibst", "bsic"):
            print(f"serve: {vrf_algo} is width-bound; VRF shards use ltcam")
            vrf_algo = "ltcam"
        # N VRFs (each carrying the base table) hashed across the shards.
        sharded = VrfShardedEngine(
            base.width, lambda fib: _build(vrf_algo, fib),
            shards=args.shards, max_vrfs=args.vrfs,
            cache_size=args.cache, registry=registry, name="serve",
            backend=args.backend)
        for vrf_id in range(args.vrfs):
            sharded.add_vrf(vrf_id, Fib(base.width, list(base)))
        engines = [e for e in sharded.shard_engines() if e is not None]
        served = 0
        for batch in batches:
            requests = [((served + i) % args.vrfs, address)
                        for i, address in enumerate(batch)]
            with registry.timer("repro_serve_batch"):
                hops = sharded.lookup_batch(requests)
            if args.check_every:
                for i in range(0, len(batch), args.check_every):
                    if hops[i] != base.lookup(batch[i]):
                        mismatches += 1
            served += len(batch)
        managed = None
    else:
        from .control import RuntimePolicy
        managed = ManagedFib(
            lambda fib: _build(args.algo, fib), base,
            registry=registry, check_seed=args.seed,
            policy=RuntimePolicy(delta_updates=getattr(args, "delta", True)),
            algo=(loaded.algorithm() if loaded is not None else None))
        if getattr(args, "save", None):
            _artifact_save(args, managed.algo, managed.oracle)
        if args.shards > 1:
            engine = RoundRobinEngine(managed.algo, replicas=args.shards,
                                      cache_size=args.cache,
                                      registry=registry, name="serve",
                                      backend=args.backend)
            managed.add_commit_listener(engine.on_commit)
            engines = engine.shard_engines()
        else:
            engine = BatchEngine.over_managed(managed, cache_size=args.cache,
                                              name="serve-s0",
                                              backend=args.backend)
            engines = [engine]
        generator = (ChurnGenerator(base, seed=args.seed,
                                    profile=PROFILES[args.profile])
                     if args.churn_ops else None)
        for b, batch in enumerate(batches):
            with registry.timer("repro_serve_batch"):
                hops = engine.lookup_batch(batch)
            if args.check_every:
                for i in range(0, len(batch), args.check_every):
                    if hops[i] != managed.oracle.lookup(batch[i]):
                        mismatches += 1
            if generator is not None and args.churn_every and (
                    b + 1) % args.churn_every == 0:
                managed.apply_batch(list(generator.ops(args.churn_ops)))

    serve_s = registry.timings_snapshot().get(
        "repro_serve_batch", {}).get("total_s", 0.0) or 1e-9
    lookups = registry.counter("repro_engine_lookups_total")
    hits = registry.counter("repro_engine_cache_hits_total")
    misses = registry.counter("repro_engine_cache_misses_total")
    print(f"serve: algo={args.algo} policy={policy} backend={args.backend} "
          f"requests={len(addresses)} "
          f"batch={args.batch} cache={args.cache} shards={args.shards} "
          f"vrfs={args.vrfs} seed={args.seed}")
    for eng in engines:
        n = lookups.value(engine=eng.name)
        h, m = hits.value(engine=eng.name), misses.value(engine=eng.name)
        ratio = h / (h + m) if h + m else 0.0
        print(f"  shard {eng.name}: {n} lookups, cache hit ratio {ratio:.2f}, "
              f"backend {eng.active_backend}")
    if managed is not None:
        print(f"  churn: {managed.log.batches_total} batches committed, "
              f"health={managed.health}")
    print(f"  throughput: {len(addresses) / serve_s:,.0f} lookups/s "
          f"({serve_s * 1e3:.1f} ms serving)")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry.to_json(include_timings=True))
            handle.write("\n")
    if mismatches:
        print(f"serve: {mismatches} spot-check mismatches against the oracle")
        return 1
    print(f"  spot-checks: every {args.check_every} requests verified "
          "against the oracle, all consistent")
    return 0


def cmd_artifact(args: argparse.Namespace) -> int:
    """Manage the persistent artifact catalog (save/load/list/verify)."""
    import os

    from .artifact import ArtifactCatalog, ArtifactError

    catalog = ArtifactCatalog(args.catalog)

    if args.artifact_cmd == "save":
        if args.fib:
            fib = load_fib(args.fib)
        else:
            maker = (synthesize_as65000 if args.family == "v4"
                     else synthesize_as131072)
            fib = maker(scale=args.scale, seed=args.seed)
        algo = _build(args.algo, fib)
        vplan = None
        if not args.no_vector:
            try:
                vplan = algo.compile_vector_plan()
            except Exception:
                vplan = None  # scalar-only schemes still snapshot state
        version = catalog.save(args.name, algo, fib, version=args.version,
                               vector_plan=vplan, overwrite=args.overwrite)
        path = catalog.path(args.name, version)
        print(f"artifact: saved {args.name}:{version} "
              f"({len(fib):,} prefixes, {os.path.getsize(path):,} bytes) "
              f"at {path}")
        return 0

    if args.artifact_cmd == "list":
        names = catalog.names()
        if not names:
            print(f"artifact: catalog {catalog.root} is empty")
            return 0
        for name in names:
            current = catalog.current(name)
            for version in catalog.versions(name):
                path = catalog.path(name, version)
                marker = " *" if version == current else ""
                print(f"{name}:{version}{marker}  "
                      f"{os.path.getsize(path):,} bytes")
        return 0

    name, version = _artifact_ref(args.name)

    if args.artifact_cmd == "verify":
        try:
            report = catalog.verify(name, version, deep=args.deep)
        except ArtifactError as exc:
            print(f"artifact: verify FAILED: {type(exc).__name__}: {exc}")
            return 1
        extra = (f", {report['probes']} probes differentially checked"
                 if args.deep else "")
        print(f"artifact: {report['name']}:{report['version']} OK — "
              f"{report['algorithm'] or 'fib-only'} width {report['width']}, "
              f"{report['fib_size']:,} prefixes, {report['sections']} "
              f"sections checksum-verified{extra}")
        return 0

    # args.artifact_cmd == "load": a warm-start smoke check.
    from .artifact.catalog import _probe_addresses
    try:
        loaded = catalog.load(name, version)
        fib = loaded.fib()
        algo = loaded.algorithm()
        plan = algo.compile_plan()
        addresses = _probe_addresses(fib, limit=args.probe)
        hops = plan.lookup_batch(addresses)
        mismatches = sum(1 for a, h in zip(addresses, hops)
                         if h != fib.lookup(a))
    except ArtifactError as exc:
        print(f"artifact: load FAILED: {type(exc).__name__}: {exc}")
        return 1
    print(f"artifact: loaded {name}:{loaded.version} — "
          f"{loaded.algorithm_name or 'fib-only'} width {loaded.width}, "
          f"{len(fib):,} prefixes, {len(loaded.arrays)} sections, "
          f"{len(addresses)} probe lookups "
          f"({mismatches} oracle mismatches)")
    return 1 if mismatches else 0


def run_bench_serve(
    base: Fib,
    algo_name: str,
    *,
    requests: int = 20000,
    workers: int = 4,
    max_batch: int = 512,
    max_wait_s: float = 0.002,
    request_size: int = 16,
    producers: int = 8,
    window: int = 32,
    backend: str = "auto",
    seed: int = 0,
    registry=None,
    faulted: bool = True,
):
    """Closed-loop serving benchmark: sequential vs coalesced concurrent.

    The baseline serves the same Zipf workload one request at a time
    through a single engine (the un-coalesced path a naive frontend
    would take).  The concurrent side runs ``producers`` closed-loop
    clients, each keeping ``window`` requests outstanding against a
    :class:`~repro.server.LookupServer`.

    With ``faulted=True`` a third pass replays the concurrent side
    under a scripted chaos plan that kills every worker once; the
    supervisor restarts them and the run records the recovery time
    (first death to full worker complement) plus the faulted/fault-free
    throughput ratio the CI gate checks (≥ 0.6x).

    Returns the ``values`` / ``timings`` dict the JSON sidecar and the
    CI gate consume; shared by ``repro bench-serve`` and
    ``benchmarks/bench_serve.py``.
    """
    import threading

    from .datasets import skewed_addresses
    from .engine import BatchEngine
    from .obs import MetricsRegistry
    from .obs.clock import MonotonicClock
    from .server import LookupServer
    from .server.supervisor import RestartPolicy

    if registry is None:
        registry = MetricsRegistry()
    algo = _build(algo_name, base)
    addresses = skewed_addresses(base, requests, seed=seed)

    sequential = BatchEngine(algo, backend="plan", registry=registry,
                             name="bench-seq")
    with registry.timer("repro_bench_serve_sequential"):
        for address in addresses:
            sequential.lookup_batch([address])

    chunks = [addresses[i:i + request_size]
              for i in range(0, len(addresses), request_size)]

    def drive(server) -> None:
        errors: List[BaseException] = []

        def produce(lane: int) -> None:
            outstanding = []
            try:
                for idx in range(lane, len(chunks), producers):
                    outstanding.append(server.submit(chunks[idx]))
                    if len(outstanding) >= window:
                        outstanding.pop(0).result(timeout=120)
                for handle in outstanding:
                    handle.result(timeout=120)
            except BaseException as exc:  # noqa: BLE001 — surface to caller
                errors.append(exc)

        threads = [threading.Thread(target=produce, args=(lane,),
                                    name=f"bench-client-{lane}")
                   for lane in range(producers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def slo_latency(srv) -> Dict[str, dict]:
        """Per-phase p50/p99/p999 from the server's SLO windows."""
        return {
            phase: {q: stats.get(q) for q in ("p50_s", "p99_s", "p999_s")}
            for phase, stats in srv.slo.report()["phases"].items()
        }

    server = LookupServer(algo, workers=workers, max_batch=max_batch,
                          max_wait_s=max_wait_s, backend=backend,
                          registry=registry, name="bench-serve")
    with server:
        with registry.timer("repro_bench_serve_concurrent"):
            drive(server)
        backend_used = server.active_backend
        concurrent_latency = slo_latency(server)

    fault_values = {}
    fault_timings = {}
    if faulted:
        from .chaos import ChaosPlan
        from .server import ServingHealth

        # Kill every worker exactly once, early and staggered; the
        # supervisor must restart each within its (tiny) backoff.
        script = [("kill", w, 1 + w) for w in range(workers)]
        plan = ChaosPlan(injectors=[], script=script)
        # Lenient health thresholds: the scripted kill burst must not
        # flip the server into DEGRADED/BROWNOUT, or the measurement
        # compares a shedding server against a serving one instead of
        # isolating the cost of deaths + restarts + re-queues.
        lenient = ServingHealth(
            MonotonicClock(), queue_capacity=32,
            degraded_restarts=10 * workers,
            brownout_restarts=20 * workers,
            degraded_miss_rate=1.1, brownout_miss_rate=1.1,
            degraded_depth=100.0, brownout_depth=200.0)
        faulted_server = LookupServer(
            algo, workers=workers, max_batch=max_batch,
            max_wait_s=max_wait_s, backend=backend, registry=registry,
            name="bench-serve-faulted", chaos=plan, health=lenient,
            restart_policy=RestartPolicy(
                base_backoff_s=0.005, max_backoff_s=0.02,
                budget=4 * workers, window_s=3600.0, seed=seed))
        clock = MonotonicClock()
        recovery = {"death_at": None, "restored_at": None}
        watcher_stop = threading.Event()

        def watch() -> None:
            pool = faulted_server.pool
            while not watcher_stop.wait(0.001):
                alive = pool.alive_workers()
                if recovery["death_at"] is None:
                    if alive < workers:
                        recovery["death_at"] = clock.now()
                elif recovery["restored_at"] is None and alive == workers:
                    recovery["restored_at"] = clock.now()

        watcher = threading.Thread(target=watch, name="bench-chaos-watch")
        faulted_latency = {}
        with faulted_server:
            watcher.start()
            with registry.timer("repro_bench_serve_faulted"):
                drive(faulted_server)
            faulted_latency = slo_latency(faulted_server)
            # Pending restarts may still be in their (tiny) backoff;
            # give them a bounded window so recovery_s is recorded.
            settle = threading.Event()
            supervisor = faulted_server.supervisor
            for _ in range(1000):
                caught_up = (supervisor.restarts + supervisor.giveups
                             >= supervisor.deaths)
                seen = (recovery["death_at"] is None
                        or recovery["restored_at"] is not None)
                if caught_up and seen:
                    break
                settle.wait(0.002)
            watcher_stop.set()
            watcher.join()
        recovery_s = (recovery["restored_at"] - recovery["death_at"]
                      if recovery["death_at"] is not None
                      and recovery["restored_at"] is not None else None)
        fault_values = {
            "faulted_kills_scripted": len(script),
            "faulted_worker_deaths": supervisor.deaths,
            "faulted_worker_restarts": supervisor.restarts,
            "faulted_threshold_x": 0.6,
        }
        fault_timings = {"recovery_s": recovery_s}

    timings = registry.timings_snapshot()
    sequential_s = timings["repro_bench_serve_sequential"]["total_s"] or 1e-9
    concurrent_s = timings["repro_bench_serve_concurrent"]["total_s"] or 1e-9
    doc = {
        "values": {
            "algo": algo_name,
            "backend": backend_used,
            "max_batch": max_batch,
            "producers": producers,
            "request_size": request_size,
            "requests": len(addresses),
            "window": window,
            "workers": workers,
            "speedup_threshold_x": 2.0,
            **fault_values,
        },
        "timings": {
            "sequential_s": sequential_s,
            "concurrent_s": concurrent_s,
            "sequential_lookups_per_s": len(addresses) / sequential_s,
            "concurrent_lookups_per_s": len(addresses) / concurrent_s,
            "speedup_x": sequential_s / concurrent_s,
            "latency": {"concurrent": concurrent_latency},
            **fault_timings,
        },
    }
    if faulted:
        faulted_s = timings["repro_bench_serve_faulted"]["total_s"] or 1e-9
        doc["timings"]["faulted_s"] = faulted_s
        doc["timings"]["faulted_lookups_per_s"] = len(addresses) / faulted_s
        doc["timings"]["faulted_throughput_x"] = concurrent_s / faulted_s
        doc["timings"]["latency"]["faulted"] = faulted_latency
    return doc


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Closed-loop load generator: coalesced serving vs sequential."""
    import json
    import pathlib

    from .obs import MetricsRegistry

    if args.smoke:
        args.scale = 0.001
        args.requests = 4000

    if args.fib:
        base = load_fib(args.fib)
    else:
        maker = synthesize_as65000 if args.family == "v4" else synthesize_as131072
        base = maker(scale=args.scale)

    registry = MetricsRegistry()
    doc = run_bench_serve(
        base, args.algo, requests=args.requests, workers=args.workers,
        max_batch=args.max_batch, max_wait_s=args.max_wait / 1000.0,
        request_size=args.request_size, producers=args.producers,
        window=args.window, backend=args.backend, seed=args.seed,
        registry=registry)
    doc["values"]["speedup_threshold_x"] = args.threshold
    timings = doc["timings"]
    print(f"bench-serve: algo={args.algo} backend={doc['values']['backend']} "
          f"base={len(base)} prefixes requests={doc['values']['requests']} "
          f"workers={args.workers} producers={args.producers} "
          f"window={args.window} request_size={args.request_size} "
          f"max_batch={args.max_batch} max_wait={args.max_wait}ms "
          f"seed={args.seed}")
    print(f"  sequential: {timings['sequential_lookups_per_s']:,.0f} "
          f"lookups/s ({timings['sequential_s'] * 1e3:.1f} ms)")
    print(f"  coalesced:  {timings['concurrent_lookups_per_s']:,.0f} "
          f"lookups/s ({timings['concurrent_s'] * 1e3:.1f} ms)")
    print(f"  speedup: {timings['speedup_x']:.1f}x "
          f"(threshold {args.threshold:.1f}x)")
    request_pcts = timings.get("latency", {}).get(
        "concurrent", {}).get("request") or {}
    if request_pcts.get("p50_s") is not None:
        print(f"  latency (request): "
              f"p50={request_pcts['p50_s'] * 1e3:.2f}ms "
              f"p99={(request_pcts.get('p99_s') or 0.0) * 1e3:.2f}ms "
              f"p999={(request_pcts.get('p999_s') or 0.0) * 1e3:.2f}ms")
    faulted_x = timings.get("faulted_throughput_x")
    if faulted_x is not None:
        recovery = timings.get("recovery_s")
        recovery_txt = (f"{recovery * 1e3:.1f} ms"
                        if recovery is not None else "n/a")
        print(f"  faulted:    {timings['faulted_lookups_per_s']:,.0f} "
              f"lookups/s ({timings['faulted_s'] * 1e3:.1f} ms) — "
              f"{doc['values']['faulted_worker_deaths']} kill(s), "
              f"{doc['values']['faulted_worker_restarts']} restart(s), "
              f"recovery {recovery_txt}")
        print(f"  faulted throughput: {faulted_x:.2f}x fault-free "
              f"(threshold {doc['values']['faulted_threshold_x']:.1f}x)")
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    sidecar = {
        "bench": out.stem,
        "values": doc["values"],
        "timings": doc["timings"],
        "metrics": registry.snapshot(),
        "wall_timings": registry.timings_snapshot(),
    }
    out.write_text(json.dumps(sidecar, indent=2, sort_keys=True,
                              default=str) + "\n")
    print(f"  wrote {out}")
    failed = False
    if args.threshold and timings["speedup_x"] < args.threshold:
        print(f"bench-serve: speedup below the {args.threshold:.1f}x "
              "threshold")
        failed = True
    if faulted_x is not None and faulted_x < doc["values"]["faulted_threshold_x"]:
        print(f"bench-serve: faulted throughput "
              f"{faulted_x:.2f}x below the "
              f"{doc['values']['faulted_threshold_x']:.1f}x threshold")
        failed = True
    return 1 if failed else 0


def cmd_chaos_soak(args: argparse.Namespace) -> int:
    """Deterministic chaos soak: fault-injected serving vs the oracle."""
    import json
    import pathlib

    from .chaos import ALL_CHAOS, DEFAULT_CHAOS, SoakFailure, run_chaos_soak

    if args.chaos == "all":
        names = sorted(ALL_CHAOS)
    elif args.chaos in (None, "default"):
        names = list(DEFAULT_CHAOS)
    else:
        names = [n for n in args.chaos.split(",") if n]
    script = []
    for event in args.script or []:
        try:
            kind, worker, seq = event.split(":")
            script.append((kind, int(worker), int(seq)))
        except ValueError:
            raise SystemExit(
                f"chaos-soak: bad --script event {event!r} "
                "(expected KIND:WORKER:SEQ, e.g. kill:1:7)")
    modes = ["thread", "process"] if args.mode == "both" else [args.mode]
    runs = []
    ok = True
    for mode in modes:
        try:
            report = run_chaos_soak(
                mode=mode, workers=args.workers, requests=args.requests,
                request_size=args.request_size, seed=args.seed,
                chaos=names, rate=args.rate, script=script,
                deadline_s=(args.deadline / 1000.0
                            if args.deadline else None))
        except SoakFailure as failure:
            report = (failure.args[1] if len(failure.args) > 1
                      else {"mode": mode, "ok": False,
                            "failures": [str(failure.args[0])]})
            ok = False
        runs.append(report)
        status = "ok" if report.get("ok") else "FAILED"
        print(f"chaos-soak[{mode}]: {status} "
              f"requests={report.get('requests')} "
              f"answered={report.get('answered')} "
              f"shed={report.get('shed')} "
              f"deadline_timeouts={report.get('deadline_timeouts')} "
              f"lost={report.get('lost')} dup={report.get('duplicated')} "
              f"stale={report.get('stale')} "
              f"deaths={report.get('worker_deaths')} "
              f"restarts={report.get('worker_restarts')} "
              f"health={report.get('final_health')}")
        latency = report.get("latency") or {}
        if latency.get("request_p50_s") is not None:
            print(f"  latency: "
                  f"p50={latency['request_p50_s'] * 1e3:.2f}ms "
                  f"p99={(latency.get('request_p99_s') or 0.0) * 1e3:.2f}ms "
                  f"p999={(latency.get('request_p999_s') or 0.0) * 1e3:.2f}ms "
                  f"(slo breaches: {report.get('slo_breaches', 0)})")
        for failure in report.get("failures", []):
            print(f"  violation: {failure}")
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    sidecar = {
        "bench": out.stem,
        "values": {"modes": modes, "chaos": names,
                   "script": [list(event) for event in script],
                   "seed": args.seed, "requests": args.requests,
                   "workers": args.workers},
        # Per-mode tail latency under "timings" so the trajectory
        # tracker's flattener picks it up for regression checking.
        "timings": {
            str(run.get("mode", f"run{i}")): dict(run.get("latency") or {})
            for i, run in enumerate(runs)
        },
        "runs": runs,
        "ok": ok,
    }
    out.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {out}")
    return 0 if ok else 1


def cmd_bench_history(args: argparse.Namespace) -> int:
    """Benchmark trajectory: append sidecars to the versioned history
    and report regressions against the previous recorded run."""
    from .obs import trajectory

    appended = 0
    if not args.no_append:
        run, records = trajectory.append_run(args.results_dir, args.history)
        appended = len(records)
        if appended:
            print(f"bench-history: appended {appended} sidecar record(s) "
                  f"as run {run} -> {args.history}")
        else:
            print(f"bench-history: no bench sidecars under "
                  f"{args.results_dir} — nothing appended")
    history = trajectory.load_history(args.history)
    if not history:
        print("bench-history: history is empty — run some benches first")
        return 0
    report = trajectory.compare_runs(history, threshold=args.threshold)
    print(trajectory.render_report(report))
    if args.report_out:
        import json as _json
        with open(args.report_out, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  report written to {args.report_out}")
    if args.check and not report["ok"]:
        if args.strict:
            print("bench-history: regressions above threshold (strict)")
            return 1
        print("bench-history: regressions above threshold (soft gate — "
              "pass --strict to fail)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace lookups through an algorithm's CRAM program."""
    import json
    import pathlib

    from .datasets import mixed_addresses
    from .obs import RecordingTracer, validate_chrome_trace

    if args.smoke:
        fib = synthesize_as65000(scale=0.001, seed=65000)
    elif args.fib:
        fib = load_fib(args.fib)
    else:
        raise SystemExit("trace: --fib is required (or use --smoke)")
    algo = _build(args.algorithm, fib)

    if args.addresses:
        addresses = [_parse_address(t, fib.width) for t in args.addresses]
    else:
        addresses = mixed_addresses(fib, args.count, hit_fraction=0.8,
                                    seed=args.seed)

    tracer = RecordingTracer()
    for address in addresses:
        traced = algo.cram_lookup(address, tracer=tracer)
        untraced = algo.cram_lookup(address)
        native = algo.lookup(address)
        if traced != untraced or traced != native:  # pragma: no cover
            raise SystemExit(
                f"BUG: traced/untraced/native disagree at "
                f"{format_address(address, fib.width)}: "
                f"{traced}/{untraced}/{native}"
            )

    if args.out:
        out = pathlib.Path(args.out)
    elif args.smoke:
        out = pathlib.Path("benchmarks/results/trace_smoke.json")
    else:
        out = pathlib.Path("trace.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    tracer.write_chrome_trace(out)
    validate_chrome_trace(json.loads(out.read_text()))
    written = [str(out)]
    jsonl = args.jsonl
    if jsonl is None and args.smoke:
        jsonl = str(out.with_suffix(".jsonl"))
    if jsonl:
        tracer.write_jsonl(jsonl)
        written.append(str(jsonl))
    print(f"traced {len(addresses)} lookups through {algo.name}: "
          f"{len(tracer.events)} events, all next hops verified against "
          f"the untraced interpreter and the native lookup")
    print("wrote " + " and ".join(written) +
          " (load the .json in Perfetto / chrome://tracing)")
    return 0


def cmd_growth(args: argparse.Namespace) -> int:
    v4 = ipv4_table_size(args.year)
    v6 = ipv6_table_size(args.year)
    v6_linear = ipv6_table_size(args.year, "linear")
    print(f"{args.year}: IPv4 ~{v4:,} routes (doubling/decade); "
          f"IPv6 ~{v6:,} (doubling/3y) or ~{v6_linear:,} (linear slowdown)")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CRAM-lens IP lookup: synthesize tables, run lookups, "
                    "estimate chip resources, emit P4 sketches.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="generate a synthetic BGP table")
    p.add_argument("family", choices=["v4", "v6"])
    p.add_argument("--scale", type=float, default=1.0,
                   help="fraction of current BGP scale (default 1.0)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--out", required=True, help="output FIB file")
    p.set_defaults(func=cmd_synthesize, seed_default=True)

    p = sub.add_parser("lookup", help="route addresses through an algorithm")
    p.add_argument("--fib", required=True)
    p.add_argument("--algorithm", default="resail",
                   choices=sorted(ALGORITHM_FACTORIES))
    p.add_argument("--stats", action="store_true",
                   help="report per-table accesses and per-prefix hit "
                        "skew for the queried addresses (native backend "
                        "only; compiled plans bypass the accounting)")
    p.add_argument("--backend",
                   choices=["native", "plan", "vector", "auto"],
                   default="native",
                   help="execution path: the native walk (default), the "
                        "compiled plan, the lane-compiled vector plan, or "
                        "auto (vector when fully lowered)")
    p.add_argument("--explain", action="store_true",
                   help="print the lane compiler's lowering report "
                        "(lowered/bridged/fused steps, kernel sequence) "
                        "before the per-address routes")
    p.add_argument("--no-fuse", action="store_true",
                   help="disable the lane compiler's kernel-fusion pass "
                        "(debugging escape hatch; vector/auto backends "
                        "and --explain)")
    p.add_argument("addresses", nargs="+")
    p.set_defaults(func=cmd_lookup)

    p = sub.add_parser("metrics", help="CRAM metrics and chip mappings")
    p.add_argument("--fib", required=True)
    p.add_argument("--algorithm", nargs="+", default=["resail"],
                   choices=sorted(ALGORITHM_FACTORIES))
    p.add_argument("--drmt", action="store_true",
                   help="include the dRMT model in the mappings")
    p.add_argument("--format", choices=["table", "prometheus", "json"],
                   default="table",
                   help="table (human, default) or machine-readable "
                        "Prometheus/JSON registry output")
    p.add_argument("--exercise", type=int, default=0, metavar="N",
                   help="run N seeded lookups per algorithm to populate "
                        "access counters (prometheus/json formats)")
    p.add_argument("--exercise-serve", type=int, default=0, metavar="N",
                   help="additionally serve N seeded addresses through a "
                        "deterministic fake-clock LookupServer so the "
                        "repro_server_* / span / SLO series appear in the "
                        "byte-stable rendering (prometheus/json formats)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the --exercise address workload")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="trace lookups through an algorithm's CRAM program",
        description="Run addresses through the CRAM interpreter with the "
                    "step tracer attached, verify traced == untraced == "
                    "native next hops, and write a Chrome trace-event "
                    "JSON (open in Perfetto) plus optionally JSONL.",
    )
    p.add_argument("--fib", help="FIB file (omit with --smoke)")
    p.add_argument("--algorithm", default="resail",
                   choices=sorted(ALGORITHM_FACTORIES))
    p.add_argument("--count", type=int, default=4,
                   help="seeded addresses to trace when none are given")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", help="Chrome trace output path "
                                 "(default trace.json)")
    p.add_argument("--jsonl", help="also write the JSONL event stream here")
    p.add_argument("--smoke", action="store_true",
                   help="CI smoke: tiny synthetic FIB, writes "
                        "benchmarks/results/trace_smoke.{json,jsonl}")
    p.add_argument("addresses", nargs="*",
                   help="addresses to trace (default: seeded workload)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("codegen", help="emit a P4 sketch of an algorithm")
    p.add_argument("--fib", required=True)
    p.add_argument("--algorithm", default="resail",
                   choices=sorted(ALGORITHM_FACTORIES))
    p.add_argument("--out", help="write to file instead of stdout")
    p.set_defaults(func=cmd_codegen)

    p = sub.add_parser("aggregate", help="ORTC-aggregate a routing table")
    p.add_argument("--fib", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_aggregate)

    p = sub.add_parser(
        "churn",
        help="run managed BGP-like churn with fault injection",
        description="Wrap an algorithm in the managed FIB runtime and "
                    "drive it with seeded BGP-like churn, optionally "
                    "injecting faults; prints a deterministic event-log "
                    "summary and exits nonzero on FAILED health or any "
                    "differential violation.",
    )
    p.add_argument("--algo", default="resail",
                   choices=sorted(ALGORITHM_FACTORIES))
    p.add_argument("--family", choices=["v4", "v6"], default="v4")
    p.add_argument("--fib", help="FIB file to start from (overrides "
                                 "--family/--scale synthesis)")
    p.add_argument("--scale", type=float, default=0.001,
                   help="synthetic table scale (default 0.001, ~930 routes)")
    p.add_argument("--ops", type=int, default=1000)
    p.add_argument("--batch", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", choices=["calm", "default", "stormy"],
                   default="default")
    p.add_argument("--faults", default="none",
                   help="'all', 'none', or comma-separated fault names")
    p.add_argument("--rebuild-budget", type=int, default=64)
    p.add_argument("--tcam-budget", type=int, default=None,
                   help="tighten the TCAM-block capacity guard")
    p.add_argument("--sram-budget", type=int, default=None,
                   help="tighten the SRAM-page capacity guard")
    p.add_argument("--delta", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="apply batches as in-place deltas on algorithms "
                        "that support it (--no-delta forces the legacy "
                        "copy-then-commit path)")
    p.add_argument("--smoke", action="store_true",
                   help="CI smoke mode: 200 ops, all faults")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the run's metrics registry (including "
                        "wall-clock timings) as JSON to FILE")
    p.add_argument("--events-out", metavar="FILE",
                   help="archive the event log as JSONL to FILE")
    p.set_defaults(func=cmd_churn)

    p = sub.add_parser(
        "serve",
        help="serve a skewed lookup workload through the batch engine",
        description="Compile the algorithm into a lookup plan and serve "
                    "Zipf-skewed batches through the engine (plan + FIB "
                    "cache + optional sharding), spot-checking answers "
                    "against the oracle; optionally interleaves managed "
                    "churn to exercise commit-time cache invalidation.",
    )
    p.add_argument("--algo", default="resail",
                   choices=sorted(ALGORITHM_FACTORIES))
    p.add_argument("--family", choices=["v4", "v6"], default="v4")
    p.add_argument("--fib", help="FIB file to serve (overrides synthesis)")
    p.add_argument("--scale", type=float, default=0.002,
                   help="synthetic table scale (default 0.002)")
    p.add_argument("--requests", type=int, default=20000,
                   help="total lookups to serve")
    p.add_argument("--batch", type=int, default=256,
                   help="packets per engine batch")
    p.add_argument("--cache", type=int, default=1024,
                   help="FIB-cache capacity per shard (0 disables)")
    p.add_argument("--shards", type=int, default=1,
                   help="engine shards (replicas or VRF-hash shards)")
    p.add_argument("--vrfs", type=int, default=0,
                   help="serve this many VRFs through the VRF-hash dispatcher")
    p.add_argument("--policy", choices=["auto", "vrf-hash", "round-robin"],
                   default="auto",
                   help="dispatch policy (auto: vrf-hash iff --vrfs > 0)")
    p.add_argument("--backend", choices=["plan", "vector", "auto"],
                   default="plan",
                   help="engine execution backend: the scalar compiled "
                        "plan (default), the lane-compiled NumPy vector "
                        "plan, or auto (vector when fully lowered)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", choices=["calm", "default", "stormy"],
                   default="calm", help="churn profile when --churn-ops > 0")
    p.add_argument("--churn-ops", type=int, default=0,
                   help="interleave managed churn batches of this many ops")
    p.add_argument("--churn-every", type=int, default=4,
                   help="apply churn after every Nth served batch")
    p.add_argument("--check-every", type=int, default=64,
                   help="differentially spot-check every Nth request "
                        "(0 disables)")
    p.add_argument("--workers", type=int, default=0,
                   help="serve through the concurrent coalescing frontend "
                        "with this many workers (0: synchronous path)")
    p.add_argument("--max-batch", type=int, default=256,
                   help="coalescer batch-size flush trigger (--workers)")
    p.add_argument("--max-wait", type=float, default=2.0,
                   help="coalescer deadline flush trigger in "
                        "milliseconds (--workers)")
    p.add_argument("--mode", choices=["thread", "process"],
                   default="thread",
                   help="worker pool kind for --workers (process mode "
                        "ships commit deltas, falling back to FIB "
                        "snapshots, at each commit)")
    p.add_argument("--delta", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="commit churn batches as in-place deltas and "
                        "ship/patch them through the workers "
                        "(--no-delta: legacy copy, recompile, and "
                        "snapshot shipping)")
    p.add_argument("--overload", choices=["block", "shed"],
                   default="block",
                   help="backpressure policy when the worker queue is "
                        "full (--workers)")
    p.add_argument("--chaos", metavar="NAMES",
                   help="inject seeded dataplane faults while serving "
                        "(--workers): comma-separated injector names, "
                        "'default' (kills + batch exceptions + commit "
                        "stalls) or 'all'")
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="chaos schedule seed (default: --seed)")
    p.add_argument("--deadline", type=float, default=0.0,
                   help="per-request deadline in milliseconds "
                        "(--workers; 0 disables)")
    p.add_argument("--smoke", action="store_true",
                   help="CI smoke mode: small table, 4k requests, churn on")
    p.add_argument("--sample-rate", type=float, default=None,
                   help="request-lifecycle span sampling rate in [0, 1] "
                        "(--workers; default 0.0625 — 1 in 16; 1.0 also "
                        "runs the span<->metrics consistency check)")
    p.add_argument("--span-jsonl", metavar="FILE",
                   help="write sampled spans as JSONL to FILE (--workers)")
    p.add_argument("--span-chrome", metavar="FILE",
                   help="write sampled spans as a Chrome trace-event "
                        "file to FILE (--workers; opens in Perfetto)")
    p.add_argument("--status-port", type=int, default=None,
                   help="serve a live status endpoint (/metrics /health "
                        "/epoch /slo /spans) on this port while serving "
                        "(--workers; 0 picks an ephemeral port)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the engine metrics registry (including "
                        "wall-clock timings) as JSON to FILE")
    p.add_argument("--catalog", default=".repro-artifacts",
                   help="artifact catalog directory for --save/--load")
    p.add_argument("--save", metavar="NAME[:VERSION]",
                   help="snapshot the built algorithm state (and vector "
                        "plan backings) into the artifact catalog before "
                        "serving")
    p.add_argument("--load", metavar="NAME[:VERSION]",
                   help="warm-start from a catalog artifact instead of "
                        "building from scratch; process workers mmap the "
                        "snapshot rather than receiving a pickled FIB")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "artifact",
        help="manage the persistent FIB/plan artifact catalog",
        description="Save built algorithm state (plus compiled vector-plan "
                    "backings) into a versioned on-disk catalog, list and "
                    "checksum-verify stored snapshots, and smoke-load them "
                    "back — the warm-start path `repro serve --load` uses.",
    )
    asub = p.add_subparsers(dest="artifact_cmd", required=True)

    sp = asub.add_parser("save", help="build an algorithm and snapshot it")
    sp.add_argument("name", help="artifact name in the catalog")
    sp.add_argument("--algo", default="resail",
                    choices=sorted(ALGORITHM_FACTORIES))
    sp.add_argument("--fib", help="FIB file to build from "
                                  "(overrides synthesis)")
    sp.add_argument("--family", choices=["v4", "v6"], default="v4")
    sp.add_argument("--scale", type=float, default=0.002,
                    help="synthetic table scale (default 0.002)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--version", help="version label (default: next v%%03d)")
    sp.add_argument("--catalog", default=".repro-artifacts")
    sp.add_argument("--overwrite", action="store_true",
                    help="replace an existing version (normally immutable)")
    sp.add_argument("--no-vector", action="store_true",
                    help="skip persisting the vector plan's view backings")
    sp.set_defaults(func=cmd_artifact)

    sp = asub.add_parser("list", help="list catalog names and versions")
    sp.add_argument("--catalog", default=".repro-artifacts")
    sp.set_defaults(func=cmd_artifact)

    sp = asub.add_parser("verify",
                         help="checksum-verify a stored snapshot")
    sp.add_argument("name", metavar="NAME[:VERSION]")
    sp.add_argument("--catalog", default=".repro-artifacts")
    sp.add_argument("--deep", action="store_true",
                    help="also import the state and differentially check "
                         "probe lookups against a fresh build")
    sp.set_defaults(func=cmd_artifact)

    sp = asub.add_parser("load",
                         help="warm-start smoke check: load, compile, probe")
    sp.add_argument("name", metavar="NAME[:VERSION]")
    sp.add_argument("--catalog", default=".repro-artifacts")
    sp.add_argument("--probe", type=int, default=512,
                    help="probe-lookup budget (default 512)")
    sp.set_defaults(func=cmd_artifact)

    p = sub.add_parser(
        "bench-serve",
        help="closed-loop load generator: coalesced vs sequential serving",
        description="Serve the same seeded Zipf workload two ways — one "
                    "request at a time through a single engine, then "
                    "through the concurrent coalescing frontend under "
                    "closed-loop producers — and report the throughput "
                    "ratio; writes a machine-readable JSON sidecar.",
    )
    p.add_argument("--algo", default="resail",
                   choices=sorted(ALGORITHM_FACTORIES))
    p.add_argument("--family", choices=["v4", "v6"], default="v4")
    p.add_argument("--fib", help="FIB file to serve (overrides synthesis)")
    p.add_argument("--scale", type=float, default=0.002,
                   help="synthetic table scale (default 0.002)")
    p.add_argument("--requests", type=int, default=20000,
                   help="total lookups per side")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--producers", type=int, default=8,
                   help="closed-loop client threads")
    p.add_argument("--window", type=int, default=32,
                   help="outstanding requests per client")
    p.add_argument("--request-size", type=int, default=16,
                   help="addresses per client request")
    p.add_argument("--max-batch", type=int, default=512)
    p.add_argument("--max-wait", type=float, default=2.0,
                   help="coalescer deadline in milliseconds")
    p.add_argument("--backend", choices=["plan", "vector", "auto"],
                   default="auto")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threshold", type=float, default=2.0,
                   help="fail unless coalesced/sequential throughput "
                        "ratio reaches this (0 disables)")
    p.add_argument("--smoke", action="store_true",
                   help="CI smoke mode: tiny table, 4k requests")
    p.add_argument("--out", metavar="FILE",
                   default="benchmarks/results/serve_concurrency.json",
                   help="JSON sidecar path")
    p.set_defaults(func=cmd_bench_serve)

    p = sub.add_parser(
        "chaos-soak",
        help="fault-injected serving soak checked against the oracle",
        description="Serve a seeded workload under scripted dataplane "
                    "chaos (worker kills, batch exceptions, ack faults, "
                    "commit stalls) and assert the robustness "
                    "invariants: zero lost, duplicated, or stale reads; "
                    "every killed worker restarted; no future outlives "
                    "its deadline unresolved.  Writes a JSON sidecar.",
    )
    p.add_argument("--mode", choices=["thread", "process", "both"],
                   default="both")
    p.add_argument("--workers", type=int, default=3)
    p.add_argument("--requests", type=int, default=300)
    p.add_argument("--request-size", type=int, default=8,
                   help="addresses per request (must divide the soak's "
                        "max batch of 64)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--chaos", metavar="NAMES",
                   help="comma-separated injector names, 'default' "
                        "(kills + batch exceptions + commit stalls) or "
                        "'all'")
    p.add_argument("--rate", type=float, default=None,
                   help="override every injector's fire rate")
    p.add_argument("--script", action="append", metavar="KIND:WORKER:SEQ",
                   help="exact trigger, e.g. kill:1:7 (repeatable)")
    p.add_argument("--deadline", type=float, default=30000.0,
                   help="per-request deadline in milliseconds "
                        "(0 disables)")
    p.add_argument("--out", metavar="FILE",
                   default="benchmarks/results/chaos_soak.json",
                   help="JSON sidecar path")
    p.set_defaults(func=cmd_chaos_soak)

    p = sub.add_parser(
        "bench-history",
        help="append bench sidecars to the trajectory history and "
             "report regressions",
        description="Read the bench JSON sidecars, append them to a "
                    "versioned BENCH_history.jsonl keyed by run index, "
                    "and compare the last two runs: warn on a >10%% "
                    "throughput drop or p99/p999 latency inflation.",
    )
    p.add_argument("--results-dir", default="benchmarks/results",
                   help="directory holding the bench *.json sidecars")
    p.add_argument("--history",
                   default="benchmarks/results/BENCH_history.jsonl",
                   help="trajectory history file (JSONL, appended)")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="relative regression that trips a warning "
                        "(default 0.10 = 10%%)")
    p.add_argument("--no-append", action="store_true",
                   help="only compare the existing history; do not "
                        "record the current sidecars as a new run")
    p.add_argument("--check", action="store_true",
                   help="evaluate the regression gate (soft by default)")
    p.add_argument("--strict", action="store_true",
                   help="with --check: exit non-zero on warnings")
    p.add_argument("--report-out", metavar="FILE",
                   help="write the full delta report as JSON to FILE")
    p.set_defaults(func=cmd_bench_history)

    p = sub.add_parser("growth", help="BGP growth projections (Figure 1)")
    p.add_argument("--year", type=int, default=2033)
    p.set_defaults(func=cmd_growth)

    p = sub.add_parser("results",
                       help="print reproduced paper tables from a bench run")
    p.add_argument("--dir", default="benchmarks/results")
    p.add_argument("--only", nargs="*",
                   help="result stems to show (e.g. tab04_ipv4_cram)")
    p.set_defaults(func=cmd_results)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "seed_default", False) and args.seed is None:
        args.seed = 65000 if args.family == "v4" else 131072
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro codegen ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
