"""Controlled prefix expansion (Srinivasan & Varghese [70]).

Expansion rewrites a prefix set so that only a chosen set of lengths
remains, by replacing each prefix of a disallowed length with all of
its descendants at the next allowed length.  Longest-match semantics
are preserved by letting longer (more specific) originals win over the
expansions of shorter ones.

Used by: SAIL's pivot pushing (>24-bit prefixes expanded to 32),
RESAIL's folding of prefixes shorter than ``min_bmp`` into
``B_min_bmp``, and multibit-trie / MASHUP node construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .prefix import Prefix


def expand_to_lengths(
    entries: Iterable[Tuple[Prefix, int]],
    allowed_lengths: Sequence[int],
) -> List[Tuple[Prefix, int]]:
    """Expand ``entries`` so every output prefix has an allowed length.

    ``allowed_lengths`` must be sorted ascending.  Each input prefix is
    expanded *up* to the smallest allowed length >= its own; inputs
    whose length exceeds every allowed length are rejected (the caller
    should have routed them elsewhere, e.g. into a look-aside TCAM).

    Longest-match is preserved: when an expansion collides with an
    entry derived from a longer original prefix, the longer original
    wins.  Expansions of equal original length cannot collide because
    the inputs are distinct.
    """
    allowed = sorted(allowed_lengths)
    if not allowed:
        raise ValueError("allowed_lengths must be non-empty")

    # Process originals from longest to shortest so that, at each slot,
    # the first writer is the most specific original — exactly the
    # "flip a 0 bit only" rule the paper uses for RESAIL (§3.2).
    ordered = sorted(entries, key=lambda kv: kv[0].length, reverse=True)
    out: Dict[Prefix, Tuple[int, int]] = {}  # expanded -> (orig_len, hop)
    for prefix, hop in ordered:
        target = _target_length(prefix.length, allowed)
        for expanded in prefix.expansions(target):
            if expanded not in out:
                out[expanded] = (prefix.length, hop)
    return [(p, hop) for p, (_len, hop) in sorted(out.items(), key=lambda kv: kv[0].value)]


def _target_length(length: int, allowed_sorted: Sequence[int]) -> int:
    for candidate in allowed_sorted:
        if candidate >= length:
            return candidate
    raise ValueError(
        f"prefix length {length} exceeds every allowed length {list(allowed_sorted)}"
    )


def expansion_cost(
    entries: Iterable[Tuple[Prefix, int]],
    allowed_lengths: Sequence[int],
) -> int:
    """Number of expanded entries *before* de-duplication.

    This is the raw storage blow-up a naive expansion pays; the MASHUP
    hybridization rule (idiom I2) compares it against TCAM's 3x area
    cost per original entry.
    """
    allowed = sorted(allowed_lengths)
    total = 0
    for prefix, _hop in entries:
        target = _target_length(prefix.length, allowed)
        total += 1 << (target - prefix.length)
    return total
