"""Binary (unibit) trie with longest-prefix match.

This is the package's reference LPM implementation: every production
algorithm (RESAIL, BSIC, MASHUP, and the baselines) is tested against
it.  It is also the canonical in-memory form of a forwarding table
(:class:`Fib`), from which the algorithms build their hardware-shaped
structures.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .prefix import Prefix


class _Node:
    __slots__ = ("children", "next_hop", "has_entry")

    def __init__(self) -> None:
        self.children: List[Optional["_Node"]] = [None, None]
        self.next_hop: Optional[int] = None
        self.has_entry = False


class BinaryTrie:
    """A unibit trie mapping prefixes to next hops.

    Next hops are small non-negative integers (port identifiers), as in
    the paper's Table 1 where they are letters A–D.
    """

    def __init__(self, width: int):
        self.width = width
        self._root = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.has_entry

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        """Insert or overwrite a prefix→next-hop binding."""
        self._check(prefix)
        node = self._root
        for i in range(prefix.length):
            bit = prefix.bit(i)
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if not node.has_entry:
            self._count += 1
        node.has_entry = True
        node.next_hop = next_hop

    def delete(self, prefix: Prefix) -> None:
        """Remove a prefix; raises ``KeyError`` if absent.

        Emptied nodes are pruned so the trie's node count tracks the
        live database (this matters for long sequences of incremental
        updates).
        """
        self._check(prefix)
        path: List[Tuple[_Node, int]] = []
        node = self._root
        for i in range(prefix.length):
            bit = prefix.bit(i)
            nxt = node.children[bit]
            if nxt is None:
                raise KeyError(str(prefix))
            path.append((node, bit))
            node = nxt
        if not node.has_entry:
            raise KeyError(str(prefix))
        node.has_entry = False
        node.next_hop = None
        self._count -= 1
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child.has_entry or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match next hop for ``address``, or ``None``."""
        node = self._root
        best = node.next_hop if node.has_entry else None
        for i in range(self.width):
            bit = (address >> (self.width - 1 - i)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_entry:
                best = node.next_hop
        return best

    def lookup_prefix(self, address: int) -> Optional[Prefix]:
        """The longest matching *prefix* for ``address``, or ``None``."""
        node = self._root
        best_len = 0 if self._root.has_entry else None
        node = self._root
        for i in range(self.width):
            bit = (address >> (self.width - 1 - i)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_entry:
                best_len = i + 1
        if best_len is None:
            return None
        host_bits = self.width - best_len
        return Prefix((address >> host_bits) << host_bits, best_len, self.width)

    def get(self, prefix: Prefix) -> Optional[int]:
        """Exact-prefix next hop (no LPM), or ``None``."""
        node = self._find(prefix)
        if node is None or not node.has_entry:
            return None
        return node.next_hop

    def items(self) -> Iterator[Tuple[Prefix, int]]:
        """All (prefix, next hop) bindings, in (value, length) order."""
        stack: List[Tuple[_Node, int, int]] = [(self._root, 0, 0)]
        out: List[Tuple[Prefix, int]] = []
        while stack:
            node, bits, depth = stack.pop()
            if node.has_entry:
                out.append((Prefix.from_bits(bits, depth, self.width), node.next_hop))
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (bits << 1) | bit, depth + 1))
        out.sort(key=lambda item: (item[0].value, item[0].length))
        return iter(out)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check(self, prefix: Prefix) -> None:
        if prefix.width != self.width:
            raise ValueError(
                f"prefix width {prefix.width} does not match trie width {self.width}"
            )

    def _find(self, prefix: Prefix) -> Optional[_Node]:
        self._check(prefix)
        node = self._root
        for i in range(prefix.length):
            node = node.children[prefix.bit(i)]
            if node is None:
                return None
        return node


class Fib:
    """A forwarding information base: an ordered prefix→next-hop map.

    ``Fib`` is the input type of every lookup-algorithm constructor in
    :mod:`repro.algorithms`.  It wraps a :class:`BinaryTrie` (the
    reference LPM) and keeps a plain dict for fast exact access and
    iteration.
    """

    def __init__(self, width: int, entries: Iterable[Tuple[Prefix, int]] = ()):
        self.width = width
        self._trie = BinaryTrie(width)
        self._entries: Dict[Prefix, int] = {}
        for prefix, hop in entries:
            self.insert(prefix, hop)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries

    def __iter__(self) -> Iterator[Tuple[Prefix, int]]:
        return iter(sorted(self._entries.items(), key=lambda kv: (kv[0].value, kv[0].length)))

    def insert(self, prefix: Prefix, next_hop: int) -> None:
        if prefix.width != self.width:
            raise ValueError(
                f"prefix width {prefix.width} does not match FIB width {self.width}"
            )
        if next_hop < 0:
            raise ValueError("next hops are non-negative port identifiers")
        self._trie.insert(prefix, next_hop)
        self._entries[prefix] = next_hop

    def delete(self, prefix: Prefix) -> None:
        self._trie.delete(prefix)
        del self._entries[prefix]

    def get(self, prefix: Prefix) -> Optional[int]:
        return self._entries.get(prefix)

    def lookup(self, address: int) -> Optional[int]:
        """Reference longest-prefix-match lookup."""
        return self._trie.lookup(address)

    def lookup_prefix(self, address: int) -> Optional[Prefix]:
        return self._trie.lookup_prefix(address)

    def prefixes(self) -> List[Prefix]:
        return [p for p, _ in self]

    def by_length(self) -> Dict[int, List[Tuple[Prefix, int]]]:
        """Entries grouped by prefix length (ascending lengths)."""
        grouped: Dict[int, List[Tuple[Prefix, int]]] = {}
        for prefix, hop in self:
            grouped.setdefault(prefix.length, []).append((prefix, hop))
        return dict(sorted(grouped.items()))

    def next_hops(self) -> List[int]:
        """The distinct next-hop identifiers in use, sorted."""
        return sorted(set(self._entries.values()))
