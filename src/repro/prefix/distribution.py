"""Prefix-length distribution analysis (paper §6.1, Figure 8).

The paper's parameter choices — RESAIL's ``min_bmp``, BSIC's ``k``,
MASHUP's strides — are all read off the database's prefix-length
histogram: its major/minor spikes (P1) and the lengths below which few
prefixes live (P2, P3).  This module computes those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .prefix import Prefix


@dataclass(frozen=True)
class LengthDistribution:
    """A prefix-length histogram over a ``width``-bit family."""

    width: int
    counts: Tuple[int, ...]  # index = prefix length, 0..width

    @classmethod
    def from_prefixes(cls, prefixes: Iterable[Prefix], width: int) -> "LengthDistribution":
        counts = [0] * (width + 1)
        for prefix in prefixes:
            if prefix.width != width:
                raise ValueError(
                    f"prefix width {prefix.width} does not match family width {width}"
                )
            counts[prefix.length] += 1
        return cls(width, tuple(counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    def count(self, length: int) -> int:
        return self.counts[length]

    def fraction_longer_than(self, length: int) -> float:
        """Fraction of prefixes strictly longer than ``length``."""
        if self.total == 0:
            return 0.0
        return sum(self.counts[length + 1 :]) / self.total

    def count_longer_than(self, length: int) -> int:
        return sum(self.counts[length + 1 :])

    def count_shorter_than(self, length: int) -> int:
        return sum(self.counts[:length])

    # ------------------------------------------------------------------
    # Spike analysis (observation P1)
    # ------------------------------------------------------------------
    def spikes(self, threshold: float = 0.02) -> List[int]:
        """Lengths holding at least ``threshold`` of all prefixes.

        With the default 2% threshold this returns the paper's spikes:
        {16, 20, 22, 24} for AS65000-like IPv4 tables and
        {28, 32, 36, 40, 44, 48} for AS131072-like IPv6 tables.
        """
        if self.total == 0:
            return []
        cutoff = threshold * self.total
        return [length for length, c in enumerate(self.counts) if c >= cutoff]

    def major_spike(self) -> int:
        """The single most populated length (24 for IPv4, 48 for IPv6)."""
        if self.total == 0:
            raise ValueError("empty distribution has no spike")
        return max(range(self.width + 1), key=lambda length: self.counts[length])

    def shortest_significant_length(self, tail_fraction: float = 0.001) -> int:
        """Smallest L such that prefixes shorter than L are under ``tail_fraction``.

        This is the paper's rule for choosing RESAIL's ``min_bmp``
        (§6.3, observation P2): pick the point below which so few
        prefixes live that expanding them is cheap.
        """
        if self.total == 0:
            return 0
        budget = tail_fraction * self.total
        running = 0
        for length in range(self.width + 1):
            if running + self.counts[length] > budget:
                return length
            running += self.counts[length]
        return self.width

    # ------------------------------------------------------------------
    # Parameter advisors (paper §6.3)
    # ------------------------------------------------------------------
    def suggest_strides(self, levels: int = 4, max_first: int = 20) -> List[int]:
        """Spike-mirroring stride vector for MASHUP.

        Chooses cut points at the spike lengths so expansion is
        minimized, decomposing an over-wide first stride (paper: IPv6's
        32 becomes 20+12 because a 32-bit root node is too wide).
        """
        spikes = self.spikes() or [self.major_spike()]
        cuts: List[int] = []
        for spike in spikes:
            if not cuts:
                if spike <= max_first:
                    cuts.append(spike)
                else:
                    cuts.extend([max_first, spike - max_first])
            elif spike > cuts_total(cuts):
                cuts.append(spike - cuts_total(cuts))
        if cuts_total(cuts) < self.width:
            cuts.append(self.width - cuts_total(cuts))
        # Merge smallest trailing strides if we exceeded the level budget.
        while len(cuts) > levels:
            smallest = min(range(1, len(cuts)), key=lambda i: cuts[i])
            merge_with = smallest - 1 if smallest > 1 else smallest + 1
            lo, hi = sorted((smallest, merge_with))
            cuts[lo : hi + 1] = [cuts[lo] + cuts[hi]]
        return cuts

    def to_dict(self) -> Dict[int, int]:
        return {length: c for length, c in enumerate(self.counts) if c}


def cuts_total(cuts: Sequence[int]) -> int:
    return sum(cuts)


def scale_distribution(dist: LengthDistribution, factor: float) -> LengthDistribution:
    """Apply a constant scaling factor to all lengths (paper §7.1).

    RESAIL's and SAIL's resource use depends only on per-length counts,
    so IPv4 scaling experiments scale the histogram rather than
    generating synthetic prefixes.
    """
    if factor < 0:
        raise ValueError("scale factor must be non-negative")
    scaled = tuple(round(c * factor) for c in dist.counts)
    return LengthDistribution(dist.width, scaled)
