"""Textual prefix and address parsing.

Supports the notations used in the paper and in routing-table dumps:

* dotted-quad IPv4 CIDR (``"10.1.2.0/23"``),
* RFC-4291 IPv6 CIDR (``"2001:db8::/32"``), truncated to the 64-bit
  global-routing view this package uses,
* literal bit strings (``"0101*"`` or ``"0101"``) as in the paper's
  worked examples (Tables 1–3).
"""

from __future__ import annotations

import ipaddress
from typing import Union

from .prefix import IPV4_WIDTH, IPV6_WIDTH, Prefix, PrefixError, from_bitstring


def parse_ipv4_prefix(text: str) -> Prefix:
    """Parse ``"a.b.c.d/len"`` into a width-32 :class:`Prefix`.

    Raises :class:`PrefixError` on malformed text (bad octets, host
    bits set below the mask, out-of-range length).
    """
    try:
        network = ipaddress.IPv4Network(text, strict=True)
    except (ipaddress.AddressValueError, ipaddress.NetmaskValueError,
            ValueError) as exc:
        raise PrefixError(f"malformed IPv4 prefix {text!r}: {exc}") from exc
    return Prefix(int(network.network_address), network.prefixlen, IPV4_WIDTH)


def parse_ipv6_prefix(text: str) -> Prefix:
    """Parse an IPv6 CIDR into the 64-bit global-routing view.

    Prefixes longer than 64 bits are rejected: they do not participate
    in global routing (paper §1 O2) and none of the algorithms here
    model them.  Raises :class:`PrefixError` on malformed text.
    """
    try:
        network = ipaddress.IPv6Network(text, strict=True)
    except (ipaddress.AddressValueError, ipaddress.NetmaskValueError,
            ValueError) as exc:
        raise PrefixError(f"malformed IPv6 prefix {text!r}: {exc}") from exc
    if network.prefixlen > IPV6_WIDTH:
        raise PrefixError(
            f"IPv6 prefix {text} longer than the 64-bit global-routing view"
        )
    value64 = int(network.network_address) >> 64
    return Prefix(value64, network.prefixlen, IPV6_WIDTH)


def parse_prefix(text: str, width: int = None) -> Prefix:
    """Parse any supported prefix notation.

    Bit strings (``"0101"``, ``"0101*"``, ``"*"``) require ``width``;
    CIDR notations infer the family from the text.  All malformed
    inputs raise :class:`PrefixError`.
    """
    if not isinstance(text, str):
        raise PrefixError(f"prefix text must be a string, got {type(text).__name__}")
    stripped = text.strip()
    if not stripped:
        raise PrefixError("empty prefix text")
    if set(stripped) <= {"0", "1", "*"}:
        if width is None:
            raise PrefixError("bitstring prefixes need an explicit width")
        return from_bitstring(stripped.rstrip("*"), width)
    if ":" in stripped:
        return parse_ipv6_prefix(stripped)
    return parse_ipv4_prefix(stripped)


def parse_ipv4_address(text: str) -> int:
    """Parse ``"a.b.c.d"`` into a 32-bit integer."""
    return int(ipaddress.IPv4Address(text))


def parse_ipv6_address(text: str) -> int:
    """Parse an IPv6 address into its top 64 bits (global-routing view)."""
    return int(ipaddress.IPv6Address(text)) >> 64


def format_address(address: int, width: int) -> str:
    """Format an integer address of the given width."""
    if width == IPV4_WIDTH:
        return str(ipaddress.IPv4Address(address))
    if width == IPV6_WIDTH:
        return str(ipaddress.IPv6Address(address << 64))
    return format(address, f"0{width}b")


PrefixLike = Union[str, Prefix]


def as_prefix(value: PrefixLike, width: int = None) -> Prefix:
    """Coerce a string or :class:`Prefix` to a :class:`Prefix`."""
    if isinstance(value, Prefix):
        return value
    return parse_prefix(value, width)
