"""IP prefix substrate: prefix values, tries, expansion, ranges, distributions."""

from .aggregate import AggregationResult, aggregate, aggregation_ratio
from .distribution import LengthDistribution, scale_distribution
from .expansion import expand_to_lengths, expansion_cost
from .parse import (
    as_prefix,
    format_address,
    parse_ipv4_address,
    parse_ipv4_prefix,
    parse_ipv6_address,
    parse_ipv6_prefix,
    parse_prefix,
)
from .prefix import (
    IPV4_WIDTH,
    IPV6_WIDTH,
    Prefix,
    PrefixError,
    bitstring,
    from_bitstring,
)
from .ranges import BstNode, RangeEntry, expand_to_ranges, lookup_ranges, ranges_to_bst
from .trie import BinaryTrie, Fib

__all__ = [
    "AggregationResult",
    "aggregate",
    "aggregation_ratio",
    "IPV4_WIDTH",
    "IPV6_WIDTH",
    "Prefix",
    "PrefixError",
    "bitstring",
    "from_bitstring",
    "BinaryTrie",
    "Fib",
    "LengthDistribution",
    "scale_distribution",
    "expand_to_lengths",
    "expansion_cost",
    "RangeEntry",
    "BstNode",
    "expand_to_ranges",
    "lookup_ranges",
    "ranges_to_bst",
    "as_prefix",
    "format_address",
    "parse_ipv4_address",
    "parse_ipv4_prefix",
    "parse_ipv6_address",
    "parse_ipv6_prefix",
    "parse_prefix",
]
