"""Immutable IP prefix values.

A :class:`Prefix` is the unit every algorithm in this package consumes:
an address family (width in bits), a prefix length, and the prefix's
significant bits.  The representation is deliberately integer-based —
no strings, no per-bit lists — because the lookup algorithms slice,
shift, and compare prefixes millions of times while building large
forwarding tables.

Conventions used throughout the package:

* Addresses are plain Python ints in ``[0, 2**width)``.
* A prefix's ``value`` is stored *left-aligned* in ``width`` bits with
  all bits below ``width - length`` forced to zero.  This makes
  "does address ``a`` match prefix ``p``" a mask-and-compare and keeps
  numeric ordering identical to lexicographic ordering of bit strings,
  which the range-based algorithms (DXR, BSIC) rely on.
* IPv4 prefixes have ``width == 32``.  IPv6 prefixes in this package
  have ``width == 64`` because, as the paper notes (§1 O2), only the
  first 64 bits of an IPv6 address are used for global routing.
"""

from __future__ import annotations

from typing import Iterator, Tuple

IPV4_WIDTH = 32
IPV6_WIDTH = 64


class PrefixError(ValueError):
    """A malformed prefix specification.

    Raised by every prefix constructor and parser when the input does
    not describe a well-formed prefix: negative or out-of-range
    lengths, values wider than the declared length, unparseable CIDR
    text, and so on.  Subclasses :class:`ValueError` so existing
    ``except ValueError`` call sites keep working; new code (the churn
    runtime's fault absorption in particular) catches ``PrefixError``
    to distinguish bad *input* from bugs.
    """


class Prefix:
    """An immutable IP prefix: ``width`` total bits, top ``length`` significant.

    >>> p = Prefix.from_bits(0b101, 3, width=8)   # 101***** / 3
    >>> p.value
    160
    >>> p.matches(0b10110011)
    True
    >>> str(Prefix(0x0A000000, 8, 32))
    '10.0.0.0/8'
    """

    __slots__ = ("value", "length", "width")

    def __init__(self, value: int, length: int, width: int = IPV4_WIDTH):
        if width <= 0:
            raise PrefixError(f"prefix width must be positive, got {width}")
        if not 0 <= length <= width:
            raise PrefixError(f"prefix length {length} outside [0, {width}]")
        if not 0 <= value < (1 << width):
            raise PrefixError(f"value {value:#x} does not fit in {width} bits")
        host_bits = width - length
        canonical = (value >> host_bits) << host_bits
        if canonical != value:
            raise PrefixError(
                f"value {value:#x} has nonzero bits below prefix length {length}"
            )
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "width", width)

    def __setattr__(self, name, _value):  # pragma: no cover - guard only
        raise AttributeError("Prefix is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: int, length: int, width: int = IPV4_WIDTH) -> "Prefix":
        """Build a prefix from its *right-aligned* significant bits.

        ``bits`` holds the top ``length`` bits of the prefix in its low
        ``length`` positions, e.g. ``from_bits(0b101, 3, 8)`` is the
        prefix ``101*****``.
        """
        if width <= 0:
            raise PrefixError(f"prefix width must be positive, got {width}")
        if not 0 <= length <= width:
            raise PrefixError(f"prefix length {length} outside [0, {width}]")
        if bits < 0:
            raise PrefixError(f"bits must be non-negative, got {bits}")
        if length == 0:
            if bits != 0:
                raise PrefixError("a /0 prefix has no significant bits")
        elif bits >= (1 << length):
            raise PrefixError(f"bits {bits:#x} do not fit in {length} bits")
        return cls(bits << (width - length), length, width)

    @classmethod
    def default(cls, width: int = IPV4_WIDTH) -> "Prefix":
        """The zero-length (match-everything) prefix."""
        return cls(0, 0, width)

    # ------------------------------------------------------------------
    # Bit access
    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """The significant bits, right-aligned (inverse of :meth:`from_bits`)."""
        return self.value >> (self.width - self.length)

    def bit(self, i: int) -> int:
        """Bit ``i`` of the prefix, counting from the most significant (0-based).

        Only bits ``0 <= i < length`` are significant.
        """
        if not 0 <= i < self.length:
            raise IndexError(f"bit {i} outside significant bits [0, {self.length})")
        return (self.value >> (self.width - 1 - i)) & 1

    def slice(self, start: int, nbits: int) -> int:
        """Bits ``[start, start + nbits)`` of the padded value, MSB-first.

        Unlike :meth:`bit` this may read past ``length`` — the padding
        zeros — which is what multibit tries need when a short prefix is
        expanded inside a wider stride.
        """
        if start < 0 or nbits < 0 or start + nbits > self.width:
            raise IndexError(f"slice [{start}, {start + nbits}) outside {self.width} bits")
        if nbits == 0:
            return 0
        return (self.value >> (self.width - start - nbits)) & ((1 << nbits) - 1)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def matches(self, address: int) -> bool:
        """True if ``address`` falls under this prefix."""
        host_bits = self.width - self.length
        return (address >> host_bits) << host_bits == self.value

    def is_prefix_of(self, other: "Prefix") -> bool:
        """True if this prefix covers ``other`` (equal or shorter and matching)."""
        if self.width != other.width or self.length > other.length:
            return False
        return other.truncate(self.length) == self

    def truncate(self, length: int) -> "Prefix":
        """The first ``length`` bits of this prefix (``length <= self.length``)."""
        if length > self.length:
            raise ValueError(f"cannot truncate /{self.length} to longer /{length}")
        host_bits = self.width - length
        return Prefix((self.value >> host_bits) << host_bits, length, self.width)

    def child(self, bit_value: int) -> "Prefix":
        """Extend by one bit (0 or 1)."""
        if bit_value not in (0, 1):
            raise ValueError("bit_value must be 0 or 1")
        if self.length == self.width:
            raise ValueError("prefix already at full width")
        return Prefix.from_bits((self.bits << 1) | bit_value, self.length + 1, self.width)

    def extend(self, extra_bits: int, nbits: int) -> "Prefix":
        """Extend by ``nbits`` bits whose value is ``extra_bits``."""
        if self.length + nbits > self.width:
            raise ValueError("extension exceeds address width")
        if not 0 <= extra_bits < (1 << nbits):
            raise ValueError(f"{extra_bits:#x} does not fit in {nbits} bits")
        return Prefix.from_bits((self.bits << nbits) | extra_bits, self.length + nbits, self.width)

    # ------------------------------------------------------------------
    # Range view (used by DXR / BSIC)
    # ------------------------------------------------------------------
    @property
    def first_address(self) -> int:
        """Smallest address covered by the prefix."""
        return self.value

    @property
    def last_address(self) -> int:
        """Largest address covered by the prefix."""
        return self.value | ((1 << (self.width - self.length)) - 1)

    def address_range(self) -> Tuple[int, int]:
        """``(first, last)`` inclusive address range."""
        return self.first_address, self.last_address

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def expansions(self, target_length: int) -> Iterator["Prefix"]:
        """All prefixes of ``target_length`` covered by this prefix.

        This is raw prefix expansion (Srinivasan & Varghese [70]); the
        caller is responsible for longest-match conflict resolution.
        """
        if target_length < self.length:
            raise ValueError("target length shorter than prefix")
        if target_length > self.width:
            raise ValueError("target length exceeds address width")
        extra = target_length - self.length
        base = self.bits << extra
        for suffix in range(1 << extra):
            yield Prefix.from_bits(base | suffix, target_length, self.width)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (
            self.value == other.value
            and self.length == other.length
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.value, self.length, self.width))

    # Immutable: copies are the object itself.  (Without these,
    # copy.deepcopy would trip over the __setattr__ guard — the
    # control-plane snapshot machinery deep-copies whole algorithms.)
    def __copy__(self) -> "Prefix":
        return self

    def __deepcopy__(self, _memo) -> "Prefix":
        return self

    def __reduce__(self):
        return (Prefix, (self.value, self.length, self.width))

    def __lt__(self, other: "Prefix") -> bool:
        """Sort by (value, length): address order, shorter prefixes first."""
        if self.width != other.width:
            return self.width < other.width
        return (self.value, self.length) < (other.value, other.length)

    def __repr__(self) -> str:
        return f"Prefix({self!s})"

    def __str__(self) -> str:
        if self.width == IPV4_WIDTH:
            octets = [(self.value >> s) & 0xFF for s in (24, 16, 8, 0)]
            return ".".join(map(str, octets)) + f"/{self.length}"
        if self.width == IPV6_WIDTH:
            groups = [(self.value >> s) & 0xFFFF for s in (48, 32, 16, 0)]
            return ":".join(f"{g:x}" for g in groups) + f"::/{self.length}"
        return f"0b{self.bits:0{self.length}b}/{self.length}@{self.width}"


def bitstring(p: Prefix) -> str:
    """The prefix as a literal bit string, e.g. ``'101'`` for 101*/3."""
    if p.length == 0:
        return ""
    return format(p.bits, f"0{p.length}b")


def from_bitstring(s: str, width: int = IPV4_WIDTH) -> Prefix:
    """Parse a literal bit string like ``'0101'`` (paper's Table 1 notation)."""
    if s and set(s) - {"0", "1"}:
        raise PrefixError(f"bitstring {s!r} contains non-binary characters")
    return Prefix.from_bits(int(s, 2) if s else 0, len(s), width)
