"""Optimal route-table aggregation (ORTC, Draves et al. 1999).

The paper's observation O4: every bit of forwarding memory saved makes
room for other features, and every algorithm here scales with table
size.  Aggregation is the control-plane complement — rewrite the FIB
into the smallest prefix set with identical forwarding behaviour, then
hand the result to any lookup scheme.

The classic three passes over the binary trie:

1. **Normalize**: leaf-push next hops so every node has zero or two
   children and only leaves carry labels (uncovered regions carry the
   distinguished *no-route* label).
2. **Merge** bottom-up: a node's candidate set is the intersection of
   its children's sets when non-empty, else their union.
3. **Select** top-down: keep the inherited label when it is a
   candidate; otherwise install one of the node's candidates.

**Discard routes.**  Minimal labelings may assign a real next hop to an
ancestor whose subtree contains uncovered territory; expressing that
requires a *discard* (null) route for the uncovered part — exactly the
``Null0`` routes operators deploy with aggregation in practice.  The
:func:`aggregate` result reports the discard hop it reserved and
whether any discard entries were emitted; its ``lookup`` translates
discards back to "no route" so equivalence checks are one-liners.
FIBs with a default route never need discards (nothing is uncovered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from .prefix import Prefix
from .trie import Fib

#: Internal label for uncovered regions during the passes.
_NO_ROUTE = -1


class _Node:
    __slots__ = ("children", "hop", "candidates")

    def __init__(self) -> None:
        self.children: List[Optional["_Node"]] = [None, None]
        self.hop: Optional[int] = None
        self.candidates: FrozenSet[int] = frozenset()


@dataclass
class AggregationResult:
    """The aggregated FIB plus its discard-route bookkeeping."""

    fib: Fib
    discard_hop: int
    used_discard: bool

    def __len__(self) -> int:
        return len(self.fib)

    def lookup(self, address: int) -> Optional[int]:
        """Forwarding semantics of the aggregated table.

        Discard entries mean "no route", exactly like a miss.
        """
        hop = self.fib.lookup(address)
        return None if hop == self.discard_hop else hop


def aggregate(fib: Fib, discard_hop: Optional[int] = None) -> AggregationResult:
    """ORTC-aggregate ``fib``; returns the minimal equivalent table.

    ``discard_hop`` reserves the next-hop value used for discard (null)
    entries; by default one past the largest hop in use.
    """
    if discard_hop is None:
        hops = fib.next_hops()
        discard_hop = (max(hops) + 1) if hops else 0
    elif discard_hop in set(fib.next_hops()):
        raise ValueError(f"discard hop {discard_hop} is already a real next hop")

    root = _build(fib)
    _normalize(root, inherited=_NO_ROUTE)
    _merge(root)
    out = Fib(fib.width)
    used = _select(root, inherited=_NO_ROUTE, prefix_bits=0, depth=0,
                   width=fib.width, out=out, discard_hop=discard_hop)
    return AggregationResult(out, discard_hop, used)


def aggregation_ratio(before: Fib, result: AggregationResult) -> float:
    """Size reduction factor (e.g. 930k -> 600k is ~1.55)."""
    if len(result) == 0:
        return float("inf") if len(before) else 1.0
    return len(before) / len(result)


# ---------------------------------------------------------------------------
# Pass 0: private binary trie
# ---------------------------------------------------------------------------


def _build(fib: Fib) -> _Node:
    root = _Node()
    for prefix, hop in fib:
        node = root
        for i in range(prefix.length):
            bit = prefix.bit(i)
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        node.hop = hop
    return root


# ---------------------------------------------------------------------------
# Pass 1: normalize
# ---------------------------------------------------------------------------


def _normalize(node: _Node, inherited: int) -> None:
    if node.hop is not None:
        inherited = node.hop
    if node.children[0] is None and node.children[1] is None:
        node.hop = inherited
        return
    for bit in (0, 1):
        if node.children[bit] is None:
            node.children[bit] = _Node()
    node.hop = None
    for bit in (0, 1):
        _normalize(node.children[bit], inherited)


# ---------------------------------------------------------------------------
# Pass 2: candidate sets
# ---------------------------------------------------------------------------


def _merge(node: _Node) -> None:
    if node.children[0] is None:  # leaf
        node.candidates = frozenset((node.hop,))
        return
    for bit in (0, 1):
        _merge(node.children[bit])
    a = node.children[0].candidates
    b = node.children[1].candidates
    both = a & b
    node.candidates = both if both else (a | b)


# ---------------------------------------------------------------------------
# Pass 3: selection
# ---------------------------------------------------------------------------


def _select(
    node: _Node,
    inherited: int,
    prefix_bits: int,
    depth: int,
    width: int,
    out: Fib,
    discard_hop: int,
) -> bool:
    used_discard = False
    chosen = inherited
    if inherited not in node.candidates:
        # Must install here.  Prefer a real hop (fewer discard
        # entries); the no-route label becomes a discard entry when it
        # is the only option — a real ancestor label covering an
        # uncovered region.
        real = [c for c in node.candidates if c != _NO_ROUTE]
        chosen = min(real) if real else _NO_ROUTE
        if chosen == _NO_ROUTE:
            out.insert(Prefix.from_bits(prefix_bits, depth, width), discard_hop)
            used_discard = True
        else:
            out.insert(Prefix.from_bits(prefix_bits, depth, width), chosen)
    if node.children[0] is not None:
        for bit in (0, 1):
            if _select(node.children[bit], chosen,
                       (prefix_bits << 1) | bit, depth + 1, width, out,
                       discard_hop):
                used_discard = True
    return used_discard