"""Prefix-to-range expansion (DXR [89], paper Appendix A.4).

Range-based IP lookup turns a set of prefixes over an ``m``-bit space
into a sorted list of contiguous, non-overlapping intervals that cover
the whole space, where each interval's next hop is the longest-prefix
match of every address inside it.  Finding the LPM of an address then
reduces to finding the interval containing it — a binary search over
the interval *left endpoints* (right endpoints are implied by the next
left endpoint and are discarded, DXR optimization 2).  Adjacent
intervals with the same next hop are merged (DXR optimization 1).

Intervals not covered by any prefix "inherit" a caller-supplied default
next hop; in BSIC this is the longest match of the initial-table slice
itself, so an address mis-directed to a BST by the initial TCAM still
lands on its correct next hop (Appendix A.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .prefix import Prefix
from .trie import BinaryTrie


@dataclass(frozen=True)
class RangeEntry:
    """One interval of the completed range table.

    ``left`` is the interval's left endpoint; the right endpoint is one
    less than the next entry's ``left`` (or the top of the space for
    the last entry).  ``next_hop`` is ``None`` for uncovered intervals
    whose inherited default is also absent (the paper's "-").
    """

    left: int
    next_hop: Optional[int]


def expand_to_ranges(
    entries: Iterable[Tuple[Prefix, int]],
    width: int,
    default_hop: Optional[int] = None,
) -> List[RangeEntry]:
    """Build the complete, merged, left-endpoint range table.

    ``entries`` are prefixes over a ``width``-bit space (for BSIC these
    are the *remaining* bits after the initial k-bit slice).  The result
    always covers ``[0, 2**width)`` and always has at least one entry.

    Reproduces Table 13 of the paper for its Table 3 example.
    """
    prefixes = list(entries)
    trie = BinaryTrie(width)
    for prefix, hop in prefixes:
        if prefix.width != width:
            raise ValueError(
                f"prefix width {prefix.width} does not match range space {width}"
            )
        trie.insert(prefix, hop)

    # Elementary interval boundaries: 0 plus every prefix's first
    # address and one-past-last address.
    top = 1 << width
    boundaries = {0}
    for prefix, _hop in prefixes:
        first, last = prefix.address_range()
        boundaries.add(first)
        if last + 1 < top:
            boundaries.add(last + 1)

    merged: List[RangeEntry] = []
    for left in sorted(boundaries):
        hop = trie.lookup(left)
        if hop is None:
            hop = default_hop
        if merged and merged[-1].next_hop == hop:
            continue  # DXR optimization 1: merge equal neighbours
        merged.append(RangeEntry(left, hop))
    return merged


def lookup_ranges(table: List[RangeEntry], key: int) -> Optional[int]:
    """Reference binary search over a merged range table."""
    lo, hi = 0, len(table) - 1
    best = None
    while lo <= hi:
        mid = (lo + hi) // 2
        if table[mid].left == key:
            return table[mid].next_hop
        if table[mid].left < key:
            best = table[mid].next_hop
            lo = mid + 1
        else:
            hi = mid - 1
    return best


def ranges_to_bst(table: List[RangeEntry]) -> "BstNode":
    """Build a balanced BST from the left endpoints (paper Figure 12).

    The median endpoint becomes the root so the tree depth is
    ``ceil(log2(n + 1))`` — the quantity that determines BSIC's number
    of BST levels, and hence its steps/stages.
    """
    if not table:
        raise ValueError("range table must be non-empty")

    def build(lo: int, hi: int) -> Optional[BstNode]:
        if lo > hi:
            return None
        mid = (lo + hi) // 2
        entry = table[mid]
        return BstNode(
            left_endpoint=entry.left,
            next_hop=entry.next_hop,
            left=build(lo, mid - 1),
            right=build(mid + 1, hi),
        )

    return build(0, len(table) - 1)


@dataclass
class BstNode:
    """A node of the range BST: endpoint, hop, and two children."""

    left_endpoint: int
    next_hop: Optional[int]
    left: Optional["BstNode"]
    right: Optional["BstNode"]

    def depth(self) -> int:
        """Height of the subtree in nodes (a leaf has depth 1)."""
        left = self.left.depth() if self.left else 0
        right = self.right.depth() if self.right else 0
        return 1 + max(left, right)

    def size(self) -> int:
        left = self.left.size() if self.left else 0
        right = self.right.size() if self.right else 0
        return 1 + left + right

    def search(self, key: int) -> Optional[int]:
        """Reference BST search (Algorithm 2's inner loop)."""
        node: Optional[BstNode] = self
        best: Optional[int] = None
        while node is not None:
            if key == node.left_endpoint:
                return node.next_hop
            if key > node.left_endpoint:
                best = node.next_hop
                node = node.right
            else:
                node = node.left
        return best

    def level_sizes(self) -> List[int]:
        """Number of nodes at each level (level 0 is the root)."""
        sizes: List[int] = []
        frontier = [self]
        while frontier:
            sizes.append(len(frontier))
            nxt: List[BstNode] = []
            for node in frontier:
                if node.left:
                    nxt.append(node.left)
                if node.right:
                    nxt.append(node.right)
            frontier = nxt
        return sizes
