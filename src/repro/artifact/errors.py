"""Typed failures for the on-disk artifact store.

Every way a snapshot can be unusable maps to one exception family so
callers (the serving stack, the CLI, the corruption test battery) can
catch ``ArtifactError`` and *never* serve a wrong answer off a bad
file.  Subclasses distinguish the failure the operator cares about:

* :class:`ArtifactNotFound` — no such catalog entry / version;
* :class:`ArtifactFormatError` — the bytes are not an artifact at all
  (wrong magic, malformed header, impossible section table);
* :class:`ArtifactVersionError` — a real artifact written by a format
  revision this reader does not speak;
* :class:`ArtifactTruncatedError` — the file ends before the header
  or a section does;
* :class:`ArtifactCorruptError` — a checksum (header or section)
  disagrees with the stored digest, or imported state fails its
  post-load integrity check;
* :class:`ArtifactDigestMismatch` — the snapshot is internally sound
  but describes a different FIB than the one the caller is serving.
"""

from __future__ import annotations

__all__ = [
    "ArtifactError",
    "ArtifactNotFound",
    "ArtifactFormatError",
    "ArtifactVersionError",
    "ArtifactTruncatedError",
    "ArtifactCorruptError",
    "ArtifactDigestMismatch",
]


class ArtifactError(Exception):
    """Base class: anything wrong with saving/loading an artifact."""


class ArtifactNotFound(ArtifactError):
    """The catalog has no such artifact name or version."""


class ArtifactFormatError(ArtifactError):
    """The file is not a parseable artifact (magic/header/layout)."""


class ArtifactVersionError(ArtifactFormatError):
    """The artifact was written by an unsupported format revision."""


class ArtifactTruncatedError(ArtifactFormatError):
    """The file ends before its declared contents do."""


class ArtifactCorruptError(ArtifactError):
    """Stored checksums disagree with the bytes on disk."""


class ArtifactDigestMismatch(ArtifactError):
    """The artifact's FIB digest does not match the serving FIB."""
