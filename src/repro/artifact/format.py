"""The ``.rap`` snapshot container: header + checksummed NumPy sections.

Layout (all integers little-endian)::

    offset 0   8 bytes   magic  b"REPROART"
    offset 8   4 bytes   uint32 format version
    offset 12  4 bytes   uint32 header length H
    offset 16  H bytes   header JSON (utf-8, sorted keys, compact)
    offset 16+H  32 bytes  SHA-256 of the header JSON bytes
    ...padding to a 64-byte boundary...
    data       raw C-order ndarray bytes, one span per section,
               each span aligned to 64 bytes

The header's ``sections`` table records, per section: ``name``,
``offset`` *relative to the data start* (so the table's own size does
not feed back into the offsets), ``length`` in bytes, ``sha256`` of
the raw bytes, ``dtype`` (NumPy dtype string) and ``shape``.

Nothing in the container is timestamped or machine-dependent: the same
logical content always serializes to the same bytes, which is what the
golden-format test pins.  Readers map the file once with
``np.memmap(mode="c")`` — copy-on-write pages, so loaded arrays can be
adopted into live structures and mutated without touching the file,
while unmodified pages stay shared across forked workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from .errors import (
    ArtifactCorruptError,
    ArtifactFormatError,
    ArtifactTruncatedError,
    ArtifactVersionError,
)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SECTION_ALIGN",
    "write_snapshot",
    "read_snapshot",
    "fib_digest",
]

MAGIC = b"REPROART"
FORMAT_VERSION = 1
SECTION_ALIGN = 64

_PREFIX = struct.Struct("<8sII")  # magic, format version, header length
_SHA_LEN = 32


def _align(offset: int) -> int:
    return (offset + SECTION_ALIGN - 1) & ~(SECTION_ALIGN - 1)


def fib_digest(width: int, triples: Sequence[Tuple[int, int, int]]) -> str:
    """Content digest of a FIB as canonical sorted (bits, length, hop)
    triples — the identity an artifact claims to describe."""
    arr = np.asarray(sorted(triples), dtype=np.int64).reshape(-1, 3)
    h = hashlib.sha256()
    h.update(b"repro-fib:%d:" % width)
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def write_snapshot(path: str, header: Dict[str, Any],
                   sections: Sequence[Tuple[str, np.ndarray]]) -> None:
    """Serialize ``header`` + ``sections`` to ``path`` (deterministic).

    ``header`` must be JSON-serializable; the section table and format
    version are added here.  Section order is preserved as given — the
    caller fixes a canonical order so saves are byte-stable.
    """
    blobs: List[bytes] = []
    table: List[Dict[str, Any]] = []
    offset = 0
    for name, array in sections:
        arr = np.ascontiguousarray(array)
        raw = arr.tobytes()
        table.append({
            "name": name,
            "offset": offset,
            "length": len(raw),
            "sha256": hashlib.sha256(raw).hexdigest(),
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
        })
        blobs.append(raw)
        offset = _align(offset + len(raw))

    doc = dict(header)
    doc["format_version"] = FORMAT_VERSION
    doc["sections"] = table
    hjson = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")

    data_start = _align(_PREFIX.size + len(hjson) + _SHA_LEN)
    with open(path, "wb") as handle:
        handle.write(_PREFIX.pack(MAGIC, FORMAT_VERSION, len(hjson)))
        handle.write(hjson)
        handle.write(hashlib.sha256(hjson).digest())
        handle.write(b"\0" * (data_start - _PREFIX.size - len(hjson) - _SHA_LEN))
        cursor = 0
        for raw in blobs:
            handle.write(raw)
            cursor += len(raw)
            pad = _align(cursor) - cursor
            if pad:
                handle.write(b"\0" * pad)
                cursor += pad
        handle.flush()
        os.fsync(handle.fileno())


def read_snapshot(path: str) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Parse and fully verify a snapshot; return (header, arrays).

    Every stored checksum — header and all sections — is verified here,
    before any array is handed to a caller: a tampered artifact raises
    a typed :class:`~repro.artifact.errors.ArtifactError` and never
    surfaces as a wrong lookup answer.  Arrays are zero-copy views into
    a single copy-on-write ``np.memmap`` of the file.
    """
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        raise ArtifactFormatError(f"cannot stat artifact {path!r}: {exc}")
    if size < _PREFIX.size:
        raise ArtifactTruncatedError(
            f"{path!r}: {size} bytes is shorter than the fixed prefix")
    try:
        mm = np.memmap(path, dtype=np.uint8, mode="c")
    except (OSError, ValueError) as exc:
        raise ArtifactFormatError(f"cannot map artifact {path!r}: {exc}")

    magic, version, hlen = _PREFIX.unpack(bytes(mm[:_PREFIX.size]))
    if magic != MAGIC:
        raise ArtifactFormatError(
            f"{path!r}: bad magic {magic!r} (expected {MAGIC!r})")
    if version != FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{path!r}: format version {version} is not supported "
            f"(this reader speaks version {FORMAT_VERSION})")
    header_end = _PREFIX.size + hlen + _SHA_LEN
    if size < header_end:
        raise ArtifactTruncatedError(
            f"{path!r}: header declares {hlen} bytes but the file ends "
            f"at {size}")
    hjson = bytes(mm[_PREFIX.size:_PREFIX.size + hlen])
    stored = bytes(mm[_PREFIX.size + hlen:header_end])
    if hashlib.sha256(hjson).digest() != stored:
        raise ArtifactCorruptError(f"{path!r}: header checksum mismatch")
    try:
        header = json.loads(hjson.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # A passing checksum with unparseable JSON means the writer was
        # broken, not the disk, but it is corruption all the same.
        raise ArtifactCorruptError(f"{path!r}: header is not JSON: {exc}")
    if not isinstance(header, dict) or "sections" not in header:
        raise ArtifactFormatError(f"{path!r}: header has no section table")

    data_start = _align(header_end)
    arrays: Dict[str, np.ndarray] = {}
    for entry in header["sections"]:
        try:
            name = entry["name"]
            off = int(entry["offset"])
            length = int(entry["length"])
            digest = entry["sha256"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(d) for d in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactFormatError(
                f"{path!r}: malformed section entry: {exc}")
        start = data_start + off
        end = start + length
        if off < 0 or end > size:
            raise ArtifactTruncatedError(
                f"{path!r}: section {name!r} spans [{start}, {end}) but "
                f"the file ends at {size}")
        span = mm[start:end]
        if hashlib.sha256(span).hexdigest() != digest:
            raise ArtifactCorruptError(
                f"{path!r}: section {name!r} checksum mismatch")
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != length:
            raise ArtifactFormatError(
                f"{path!r}: section {name!r} declares shape {shape} "
                f"dtype {dtype} ({expected} bytes) but stores {length}")
        arrays[name] = span.view(dtype).reshape(shape)
    return header, arrays
