"""Versioned artifact catalog: save/load/list/verify built lookup state.

Directory layout::

    <root>/<name>/<version>/snapshot.rap
    <root>/<name>/CURRENT          # text file naming the live version

Versions are immutable once written (saves go to a temp file and
``os.replace`` into place; the ``CURRENT`` pointer flips the same
way), so a reader never observes a half-written snapshot and multiple
named versions coexist for blue/green swaps.

What a snapshot holds
---------------------
* the FIB itself as canonical sorted ``(bits, length, hop)`` int64
  triples (sections ``fib/bits``, ``fib/length``, ``fib/hop``) plus a
  content digest in the header;
* the built algorithm state when the scheme exports one
  (``state/<name>`` sections + a JSON ``meta`` blob) — loading then
  *imports* the arrays instead of replaying the per-prefix build;
* optionally the compiled :class:`~repro.core.vector.VectorPlan` view
  backings (``view/<step>/<field>`` sections), which map back to live
  view objects zero-copy for verification and direct reader use.

Schemes without an export hook still round-trip: the artifact is then
FIB-only and :meth:`LoadedArtifact.algorithm` rebuilds through the
registered factory — correct, just not a warm start.
"""

from __future__ import annotations

import os
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from .errors import (
    ArtifactCorruptError,
    ArtifactDigestMismatch,
    ArtifactError,
    ArtifactNotFound,
)
from .format import FORMAT_VERSION, fib_digest, read_snapshot, write_snapshot

__all__ = ["ArtifactCatalog", "LoadedArtifact", "algorithm_key"]

SNAPSHOT_FILE = "snapshot.rap"
_CURRENT = "CURRENT"
_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _registry() -> Dict[str, Tuple[type, Callable[[Fib], Any]]]:
    """Artifact key -> (class, from-FIB factory) for every scheme.

    Imported lazily so ``repro.artifact`` stays importable without
    dragging every algorithm module in at package-import time.  The
    factory kwargs mirror the CLI's defaults.
    """
    from ..algorithms import (
        Bsic, Dxr, HiBst, LogicalTcam, Mashup, MultibitTrie, Poptrie,
        Resail, Sail,
    )
    return {
        "sail": (Sail, lambda fib: Sail(fib)),
        "resail": (Resail, lambda fib: Resail(fib)),
        "dxr": (Dxr, lambda fib: Dxr(fib, k=16)),
        "bsic": (Bsic, lambda fib: Bsic(fib)),
        "multibit": (MultibitTrie, lambda fib: MultibitTrie(
            fib, [16, 4, 4, 8] if fib.width == 32 else [20, 12, 16, 16])),
        "mashup": (Mashup, lambda fib: Mashup(fib)),
        "poptrie": (Poptrie, lambda fib: Poptrie(fib, dp_bits=16)),
        "hibst": (HiBst, lambda fib: HiBst(fib)),
        "ltcam": (LogicalTcam, lambda fib: LogicalTcam(fib)),
    }


def algorithm_key(algo: Any) -> Optional[str]:
    """The catalog registry key for a built algorithm, or None."""
    for key, (cls, _factory) in _registry().items():
        if type(algo) is cls:
            return key
    return None


def _fib_sections(width: int, triples: List[Tuple[int, int, int]]
                  ) -> List[Tuple[str, np.ndarray]]:
    arr = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
    return [("fib/bits", arr[:, 0].copy()),
            ("fib/length", arr[:, 1].copy()),
            ("fib/hop", arr[:, 2].copy())]


class LoadedArtifact:
    """A fully verified snapshot, mapped copy-on-write.

    ``arrays`` are zero-copy views into the mapped file; writes to them
    dirty private pages, never the catalog.  Heavy reconstructions
    (:meth:`fib`, :meth:`algorithm`) are cached after first use.
    """

    def __init__(self, path: str, header: Dict[str, Any],
                 arrays: Dict[str, np.ndarray],
                 name: Optional[str] = None,
                 version: Optional[str] = None):
        self.path = path
        self.header = header
        self.arrays = arrays
        self.name = name
        self.version = version
        self._fib: Optional[Fib] = None
        self._algo: Any = None
        for section in ("fib/bits", "fib/length", "fib/hop"):
            if section not in arrays:
                raise ArtifactCorruptError(
                    f"{path!r}: missing required section {section!r}")

    # -- identity ------------------------------------------------------
    @property
    def width(self) -> int:
        return int(self.header["width"])

    @property
    def algorithm_name(self) -> Optional[str]:
        return self.header.get("algorithm")

    @property
    def digest(self) -> str:
        return self.header["fib_digest"]

    # -- FIB -----------------------------------------------------------
    def fib_triples(self) -> List[Tuple[int, int, int]]:
        """The FIB as (bits, length, hop) triples — the procpool's
        snapshot wire format, straight off the mapped sections."""
        bits = self.arrays["fib/bits"]
        length = self.arrays["fib/length"]
        hop = self.arrays["fib/hop"]
        return [(int(b), int(l), int(h))
                for b, l, h in zip(bits, length, hop)]

    def fib(self) -> Fib:
        """Materialize (and cache) the FIB. Costs a trie build — the
        warm-start path avoids it unless the scheme needs it."""
        if self._fib is None:
            width = self.width
            fib = Fib(width)
            for b, l, h in self.fib_triples():
                fib.insert(Prefix.from_bits(b, l, width), h)
            digest = fib_digest(width, [(b, l, h)
                                        for b, l, h in self.fib_triples()])
            if digest != self.digest:
                raise ArtifactDigestMismatch(
                    f"{self.path!r}: FIB sections hash to {digest[:12]}… "
                    f"but the header claims {self.digest[:12]}…")
            self._fib = fib
        return self._fib

    def verify_fib(self, fib: Fib) -> None:
        """Raise :class:`ArtifactDigestMismatch` unless ``fib`` is the
        exact table this artifact was built from."""
        triples = [(p.bits, p.length, h) for p, h in fib]
        digest = fib_digest(fib.width, triples)
        if fib.width != self.width or digest != self.digest:
            raise ArtifactDigestMismatch(
                f"{self.path!r}: artifact describes digest "
                f"{self.digest[:12]}… (width {self.width}) but the serving "
                f"FIB is {digest[:12]}… (width {fib.width})")

    # -- algorithm -----------------------------------------------------
    def algorithm(self, factory: Optional[Callable[[Fib], Any]] = None):
        """Reconstruct the built algorithm.

        State-exporting schemes import their arrays directly (no
        per-prefix build).  Otherwise the FIB is materialized and fed
        through ``factory`` (or the registry default for the recorded
        algorithm key).
        """
        if self._algo is not None:
            return self._algo
        state = {name[len("state/"):]: arr
                 for name, arr in self.arrays.items()
                 if name.startswith("state/")}
        key = self.algorithm_name
        entry = _registry().get(key) if key else None
        if state and entry is not None and hasattr(entry[0], "state_import"):
            try:
                algo = entry[0].state_import(self.header.get("meta") or {},
                                             state)
            except ArtifactError:
                raise
            except Exception as exc:
                raise ArtifactCorruptError(
                    f"{self.path!r}: state import for {key!r} failed: "
                    f"{exc!r}")
        else:
            if factory is None and entry is not None:
                factory = entry[1]
            if factory is None:
                raise ArtifactError(
                    f"{self.path!r}: no state sections and no factory for "
                    f"algorithm {key!r}; pass factory= to rebuild")
            algo = factory(self.fib())
        if state and self.header.get("views"):
            # Hand the persisted vector views to the imported structure:
            # its spec builders use them as ``prev`` snapshots, so the
            # next vector compile re-freezes them (an empty log replay)
            # instead of re-flattening every table — the mmap'd buffers
            # back the lane kernels zero-copy.
            try:
                algo.adopt_views(self.views())
            except ArtifactError:
                raise
            except Exception as exc:
                raise ArtifactCorruptError(
                    f"{self.path!r}: view adoption for {key!r} failed: "
                    f"{exc!r}")
        fingerprint = self.header.get("plan_fingerprint")
        if fingerprint:
            compiled = algo.compile_plan()
            if compiled.fingerprint() != fingerprint:
                raise ArtifactCorruptError(
                    f"{self.path!r}: recompiled plan fingerprint "
                    f"{compiled.fingerprint()[:12]}… does not match the "
                    f"saved {fingerprint[:12]}… — state import drifted")
        self._algo = algo
        return algo

    # -- compiled vector views ----------------------------------------
    def views(self) -> Dict[str, Any]:
        """Reconstruct saved vector view objects, zero-copy over the
        mapped buffers (empty if the save skipped them)."""
        from ..core.vector import view_from_state
        out: Dict[str, Any] = {}
        for step, spec in (self.header.get("views") or {}).items():
            fields = {}
            stem = f"view/{step}/"
            for name, arr in self.arrays.items():
                if name.startswith(stem):
                    fields[name[len(stem):]] = arr
            try:
                out[step] = view_from_state(spec["kind"],
                                            spec.get("meta") or {}, fields)
            except (KeyError, TypeError, ValueError) as exc:
                raise ArtifactCorruptError(
                    f"{self.path!r}: view {step!r} does not reconstruct: "
                    f"{exc!r}")
        return out


class ArtifactCatalog:
    """Filesystem-backed catalog of named, versioned snapshots."""

    def __init__(self, root: str):
        self.root = os.fspath(root)

    # -- layout --------------------------------------------------------
    def path(self, name: str, version: str) -> str:
        return os.path.join(self.root, name, version, SNAPSHOT_FILE)

    def names(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry)))

    def versions(self, name: str) -> List[str]:
        base = os.path.join(self.root, name)
        if not os.path.isdir(base):
            return []
        return sorted(
            entry for entry in os.listdir(base)
            if os.path.isfile(os.path.join(base, entry, SNAPSHOT_FILE)))

    def current(self, name: str) -> Optional[str]:
        pointer = os.path.join(self.root, name, _CURRENT)
        try:
            with open(pointer, "r", encoding="utf-8") as handle:
                version = handle.read().strip()
        except OSError:
            return None
        return version or None

    def set_current(self, name: str, version: str) -> None:
        if version not in self.versions(name):
            raise ArtifactNotFound(
                f"catalog has no {name!r} version {version!r}")
        base = os.path.join(self.root, name)
        tmp = os.path.join(base, f".{_CURRENT}.tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(version + "\n")
        os.replace(tmp, os.path.join(base, _CURRENT))

    def resolve(self, name: str, version: Optional[str] = None
                ) -> Tuple[str, str]:
        """(version, snapshot path); default = CURRENT, else latest."""
        if version is None:
            version = self.current(name)
        if version is None:
            versions = self.versions(name)
            if not versions:
                raise ArtifactNotFound(f"catalog has no artifact {name!r}")
            version = versions[-1]
        path = self.path(name, version)
        if not os.path.isfile(path):
            raise ArtifactNotFound(
                f"catalog has no {name!r} version {version!r}")
        return version, path

    # -- save ----------------------------------------------------------
    def next_version(self, name: str) -> str:
        numbered = [int(v[1:]) for v in self.versions(name)
                    if re.fullmatch(r"v\d+", v)]
        return f"v{(max(numbered) + 1 if numbered else 1):03d}"

    def save(self, name: str, algo: Any, fib: Fib, *,
             version: Optional[str] = None,
             vector_plan: Any = None,
             set_current: bool = True,
             overwrite: bool = False) -> str:
        """Snapshot ``algo`` (built from ``fib``) as ``name``/``version``.

        Passing the compiled ``vector_plan`` additionally persists its
        view backings.  Returns the version written.  Saves are
        deterministic: identical state yields identical bytes.
        """
        if version is None:
            version = self.next_version(name)
        if not _VERSION_RE.match(version):
            raise ArtifactError(f"bad version name {version!r}")
        target = self.path(name, version)
        if os.path.exists(target) and not overwrite:
            raise ArtifactError(
                f"{name!r} version {version!r} already exists "
                "(versions are immutable; pick a new one)")

        triples = [(p.bits, p.length, h) for p, h in fib]
        sections = _fib_sections(fib.width, triples)
        header: Dict[str, Any] = {
            "algorithm": algorithm_key(algo),
            "algo_name": getattr(algo, "name", type(algo).__name__),
            "width": fib.width,
            "fib_digest": fib_digest(fib.width, triples),
            "fib_size": len(triples),
            "meta": None,
        }
        exported = algo.state_export()
        if exported is not None:
            meta, state = exported
            header["meta"] = meta
            for key in sorted(state):
                sections.append((f"state/{key}", state[key]))
        header["plan_fingerprint"] = algo.compile_plan().fingerprint()
        if vector_plan is not None:
            from ..core.vector import view_state
            views: Dict[str, Any] = {}
            for step in sorted(vector_plan.view_map()):
                view = vector_plan.step_view(step)
                kind, vmeta, fields = view_state(view)
                views[step] = {"kind": kind, "meta": vmeta}
                for field in sorted(fields):
                    sections.append((f"view/{step}/{field}", fields[field]))
            header["views"] = views

        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        tmp = os.path.join(directory, f".{SNAPSHOT_FILE}.tmp.{os.getpid()}")
        try:
            write_snapshot(tmp, header, sections)
            os.replace(tmp, target)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        if set_current:
            self.set_current(name, version)
        return version

    # -- load / verify -------------------------------------------------
    def load(self, name: str, version: Optional[str] = None, *,
             factory: Optional[Callable[[Fib], Any]] = None,
             expect_fib: Optional[Fib] = None) -> LoadedArtifact:
        """Map, verify and wrap a snapshot.  All checksums are checked
        here; ``expect_fib`` additionally pins the content digest to
        the table the caller is serving."""
        version, path = self.resolve(name, version)
        loaded = self.load_path(path, factory=factory, expect_fib=expect_fib)
        loaded.name, loaded.version = name, version
        return loaded

    @staticmethod
    def load_path(path: str, *,
                  factory: Optional[Callable[[Fib], Any]] = None,
                  expect_fib: Optional[Fib] = None) -> LoadedArtifact:
        if not os.path.exists(path):
            raise ArtifactNotFound(f"no artifact at {path!r}")
        header, arrays = read_snapshot(path)
        for key in ("width", "fib_digest"):
            if key not in header:
                raise ArtifactCorruptError(
                    f"{path!r}: header is missing {key!r}")
        loaded = LoadedArtifact(path, header, arrays)
        if expect_fib is not None:
            loaded.verify_fib(expect_fib)
        if factory is not None:
            loaded.algorithm(factory)
        return loaded

    def verify(self, name: str, version: Optional[str] = None, *,
               deep: bool = False) -> Dict[str, Any]:
        """Checksum-verify a snapshot; ``deep`` additionally imports
        the state and differentially checks lookups against a fresh
        build from the stored FIB."""
        version, path = self.resolve(name, version)
        loaded = self.load(name, version)
        report: Dict[str, Any] = {
            "name": name,
            "version": version,
            "path": path,
            "algorithm": loaded.algorithm_name,
            "width": loaded.width,
            "fib_size": int(loaded.header.get("fib_size", 0)),
            "sections": len(loaded.arrays),
            "format_version": int(loaded.header.get(
                "format_version", FORMAT_VERSION)),
            "deep": bool(deep),
        }
        if deep:
            fib = loaded.fib()  # digest-checks the FIB sections
            algo = loaded.algorithm()
            entry = _registry().get(loaded.algorithm_name or "")
            fresh = entry[1](fib) if entry is not None else None
            addresses = _probe_addresses(fib)
            plan = algo.compile_plan()
            expected = ([fresh.lookup(a) for a in addresses]
                        if fresh is not None
                        else [fib.lookup(a) for a in addresses])
            got = plan.lookup_batch(addresses)
            if list(got) != expected:
                raise ArtifactCorruptError(
                    f"{path!r}: imported state disagrees with a fresh "
                    "build on probe addresses")
            report["probes"] = len(addresses)
        return report


def _probe_addresses(fib: Fib, limit: int = 512) -> List[int]:
    """Deterministic probe set: every prefix's base address plus its
    last covered address, capped."""
    out: List[int] = []
    for prefix, _hop in fib:
        base = prefix.value
        out.append(base)
        out.append(base | ((1 << (fib.width - prefix.length)) - 1))
        if len(out) >= limit:
            break
    return out or [0]
