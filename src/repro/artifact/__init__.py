"""Persistent FIB/plan artifact store (ROADMAP item 2 groundwork).

``repro.artifact`` turns a built lookup structure into a versioned
on-disk snapshot that warm-starts serving: loading maps the file
copy-on-write and imports the algorithm's arrays instead of replaying
the per-prefix build, so ``repro serve --load`` and process-worker
re-forks skip the expensive part of a cold start.  The catalog keeps
multiple named versions side by side, which is what
:meth:`~repro.server.LookupServer.reload` flips between for blue/green
swaps.
"""

from .catalog import ArtifactCatalog, LoadedArtifact, algorithm_key
from .errors import (
    ArtifactCorruptError,
    ArtifactDigestMismatch,
    ArtifactError,
    ArtifactFormatError,
    ArtifactNotFound,
    ArtifactTruncatedError,
    ArtifactVersionError,
)
from .format import FORMAT_VERSION, MAGIC, fib_digest

__all__ = [
    "ArtifactCatalog",
    "LoadedArtifact",
    "algorithm_key",
    "ArtifactError",
    "ArtifactNotFound",
    "ArtifactFormatError",
    "ArtifactVersionError",
    "ArtifactTruncatedError",
    "ArtifactCorruptError",
    "ArtifactDigestMismatch",
    "FORMAT_VERSION",
    "MAGIC",
    "fib_digest",
]
