"""Request coalescing: many small requests in, engine-sized batches out.

The serving frontend's traffic shaper.  Logical clients submit single
addresses or small batches; the coalescer packs them — in strict FIFO
order — into batches of at most ``max_batch`` addresses and hands each
batch to a ``sink`` (the worker pool) when either trigger fires:

* **size** — the open batch reached ``max_batch`` addresses;
* **deadline** — ``max_wait_s`` elapsed since the first address
  entered the open batch (armed through a :class:`repro.obs.Clock`,
  so tests drive it with a :class:`repro.obs.FakeClock` and never
  sleep on the wall clock).

Each submission returns a :class:`PendingLookup` — a future-like
handle that resolves once every address it carried has been answered.
A request larger than the space left in the open batch spans batches;
results are scattered back by slot, so a request's answers always come
back in its own submission order no matter how it was split.

The sink returns ``False`` to refuse a batch (shed-on-overload); the
coalescer then fails that batch's requests with :class:`RequestShed`
so callers never hang.  Every *accepted* request is resolved exactly
once: answered, shed, or — on a non-draining close — failed with
:class:`ServerClosed`.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs.clock import Clock, MonotonicClock, TimerHandle

__all__ = [
    "ServerError",
    "ServerClosed",
    "RequestShed",
    "RequestTimeout",
    "WorkerCrash",
    "PendingLookup",
    "CoalescedBatch",
    "RequestCoalescer",
]


class ServerError(RuntimeError):
    """Base class for serving-frontend failures."""


class ServerClosed(ServerError):
    """The server is shut down (or shutting down without draining)."""


class RequestShed(ServerError):
    """The request was dropped by the overload policy."""


class RequestTimeout(ServerError):
    """The request's per-request deadline expired before an answer.

    Raised *through the future* (``result()``), never by hanging: a
    deadline-armed :class:`PendingLookup` always resolves — answered,
    shed, closed, or timed out.  Safe to retry: lookups are idempotent
    reads, so a client may resubmit (see
    :class:`~repro.server.supervisor.RetryingClient`).
    """


class WorkerCrash(ServerError):
    """A worker died mid-batch (chaos kill or a genuine thread death).

    Unlike an ordinary engine exception — which fails the batch's
    futures — a crash leaves the batch *unscattered*; the supervisor
    re-queues it on a surviving worker, preserving exactly-once
    delivery.
    """


class PendingLookup:
    """A future for one submitted request's next hops.

    ``result()`` blocks until every address is answered and returns
    the hops in submission order.  ``epoch`` records the serving epoch
    (commit generation) the answers were computed under — when a
    request spans a commit boundary, the *last* scatter wins and
    ``epoch_span`` exposes the full ``(min, max)`` window.
    """

    __slots__ = ("addresses", "submitted_at", "epoch", "deliveries",
                 "_hops", "_remaining", "_event", "_error", "_epoch_min",
                 "deadline_timer", "seq", "sampled")

    def __init__(self, addresses: Sequence[int], submitted_at: float):
        self.addresses = list(addresses)
        self.submitted_at = submitted_at
        self.epoch: Optional[int] = None
        self._epoch_min: Optional[int] = None
        #: Request sequence number (assigned by the coalescer under its
        #: lock) and the head-based span-sampling decision derived from
        #: it — stamped at admission so every span of this request
        #: shares one fate, even across worker deaths and re-queues.
        self.seq: int = 0
        self.sampled: bool = False
        #: Scatter calls that landed on this handle (tests assert on
        #: it: a non-spanning request must see exactly one delivery).
        self.deliveries = 0
        #: A per-request deadline timer armed by the server (or None);
        #: cancelled automatically once the request resolves.
        self.deadline_timer = None
        self._hops: List[Optional[int]] = [None] * len(self.addresses)
        self._remaining = len(self.addresses)
        self._event = threading.Event()
        self._error: Optional[BaseException] = None
        if not self.addresses:
            self._event.set()

    # -- completion side (coalescer / worker pool) ---------------------
    def _scatter(self, offset: int, hops: Sequence[Optional[int]],
                 epoch: Optional[int]) -> bool:
        """Deliver one batch's share; True when the request completed."""
        if self._event.is_set():
            # Already failed (shed/closed) or — a bug — double-served.
            if self._error is None:
                raise AssertionError(
                    f"duplicate delivery to a completed request "
                    f"(offset {offset}, {len(hops)} hops)")
            return False
        self.deliveries += 1
        self._hops[offset:offset + len(hops)] = hops
        self._remaining -= len(hops)
        if epoch is not None:
            self.epoch = epoch
            self._epoch_min = epoch if self._epoch_min is None \
                else min(self._epoch_min, epoch)
        if self._remaining <= 0:
            self._event.set()
            self._disarm_deadline()
            return True
        return False

    def _fail(self, error: BaseException) -> bool:
        """Resolve the request with an error (idempotent)."""
        if self._event.is_set():
            return False
        self._error = error
        self._event.set()
        self._disarm_deadline()
        return True

    def _disarm_deadline(self) -> None:
        timer = self.deadline_timer
        if timer is not None:
            self.deadline_timer = None
            timer.cancel()

    # -- caller side ---------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    @property
    def epoch_span(self) -> Tuple[Optional[int], Optional[int]]:
        return (self._epoch_min, self.epoch)

    def result(self, timeout: Optional[float] = None) -> List[Optional[int]]:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not served within {timeout}s "
                f"({self._remaining}/{len(self.addresses)} pending)")
        if self._error is not None:
            raise self._error
        return list(self._hops)


class CoalescedBatch:
    """One engine-sized batch plus the scatter map back to requests.

    ``parts`` entries are ``(handle, handle_offset, batch_offset,
    count)``: the slice ``hops[batch_offset:batch_offset+count]``
    answers ``handle.addresses[handle_offset:handle_offset+count]``.
    """

    __slots__ = ("addresses", "parts", "reason", "meta")

    def __init__(self, addresses: List[int],
                 parts: List[Tuple[PendingLookup, int, int, int]],
                 reason: str, meta: Optional[dict] = None):
        self.addresses = addresses
        self.parts = parts
        self.reason = reason
        #: Span scratchpad: lifecycle timestamps (``opened_at``,
        #: ``cut_at``, worker-side phase marks), the batch sequence
        #: number, and the retry count bumped on every re-queue.
        self.meta = meta if meta is not None else {}

    def __len__(self) -> int:
        return len(self.addresses)

    def complete(self, hops: Sequence[Optional[int]],
                 epoch: Optional[int] = None) -> List[PendingLookup]:
        """Scatter answers back; returns the handles that finished."""
        if len(hops) != len(self.addresses):
            raise ValueError(
                f"batch of {len(self.addresses)} answered with "
                f"{len(hops)} hops")
        finished = []
        for handle, handle_offset, batch_offset, count in self.parts:
            if handle._scatter(handle_offset,
                               hops[batch_offset:batch_offset + count],
                               epoch):
                finished.append(handle)
        return finished

    def fail(self, error: BaseException) -> List[PendingLookup]:
        """Fail every request with a part in this batch."""
        return [handle for handle, *_ in self.parts if handle._fail(error)]


class RequestCoalescer:
    """FIFO size-or-deadline batching in front of a batch sink."""

    def __init__(
        self,
        sink: Callable[[CoalescedBatch], bool],
        *,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        clock: Optional[Clock] = None,
        sampler: Optional[Callable[[int], bool]] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.clock = clock if clock is not None else MonotonicClock()
        self._sink = sink
        self._sampler = sampler
        self._lock = threading.Lock()
        # The open batch being packed.
        self._addresses: List[int] = []
        self._parts: List[Tuple[PendingLookup, int, int, int]] = []
        self._seq = 0
        self._batch_seq = 0
        self._opened_at: Optional[float] = None
        self._timer: Optional[TimerHandle] = None
        # Cut batches awaiting dispatch, drained FIFO under _out_lock
        # so sink order matches cut order even with many submitters.
        self._outbox: List[CoalescedBatch] = []
        self._out_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pending_addresses(self) -> int:
        """Addresses sitting in the open (not yet cut) batch."""
        with self._lock:
            return len(self._addresses)

    @property
    def closed(self) -> bool:
        return self._closed

    def next_seq(self) -> int:
        """Reserve a request sequence number outside the batching path
        (the server's brownout fast path still needs seq-keyed span
        identity for its outcome markers)."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            return seq

    # ------------------------------------------------------------------
    def submit(self, addresses: Sequence[int]) -> PendingLookup:
        """Queue one request; returns its result handle.

        Raises :class:`ServerClosed` (before accepting anything) once
        the coalescer is closed.
        """
        handle = PendingLookup(addresses, self.clock.now())
        if not handle.addresses:
            return handle  # trivially complete
        with self._lock:
            if self._closed:
                raise ServerClosed("coalescer is closed")
            handle.seq = self._seq
            self._seq += 1
            if self._sampler is not None:
                handle.sampled = self._sampler(handle.seq)
            offset, n = 0, len(handle.addresses)
            while offset < n:
                if not self._addresses:
                    self._opened_at = handle.submitted_at
                take = min(self.max_batch - len(self._addresses), n - offset)
                self._parts.append(
                    (handle, offset, len(self._addresses), take))
                self._addresses.extend(handle.addresses[offset:offset + take])
                offset += take
                if len(self._addresses) >= self.max_batch:
                    self._cut("size")
            self._manage_deadline()
        self._drain_outbox()
        return handle

    def flush(self, reason: str = "manual") -> None:
        """Cut the open batch now, regardless of size or deadline."""
        with self._lock:
            if self._addresses:
                self._cut(reason)
        self._drain_outbox()

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests; flush (or fail) the open batch."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            if self._addresses:
                if drain:
                    self._cut("drain", arm=False)
                else:
                    error = ServerClosed("server closed before serving")
                    for handle, *_ in self._parts:
                        handle._fail(error)
                    self._addresses, self._parts = [], []
        self._drain_outbox()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cut(self, reason: str, arm: bool = True) -> None:
        """Move the open batch to the outbox (lock held by caller)."""
        meta = {
            "batch": self._batch_seq,
            "opened_at": self._opened_at,
            "cut_at": self.clock.now(),
            "retries": 0,
        }
        self._batch_seq += 1
        self._opened_at = None
        self._outbox.append(
            CoalescedBatch(self._addresses, self._parts, reason, meta))
        self._addresses, self._parts = [], []
        if arm:
            self._manage_deadline()

    def _manage_deadline(self) -> None:
        """Arm the deadline for a newly-opened batch, cancel for an
        empty one (lock held by caller)."""
        if self._addresses and self._timer is None:
            self._timer = self.clock.call_at(
                self.clock.now() + self.max_wait_s, self._on_deadline)
        elif not self._addresses and self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_deadline(self) -> None:
        with self._lock:
            self._timer = None
            if self._closed:
                return
            if self._addresses:
                self._cut("deadline")
        self._drain_outbox()

    def _drain_outbox(self) -> None:
        """Dispatch cut batches FIFO.  ``_out_lock`` serialises the
        sink (dispatch order == cut order); a sink that blocks — the
        worker queue under the "block" backpressure policy — therefore
        blocks the flusher, which is exactly the backpressure we want.
        """
        with self._out_lock:
            while True:
                with self._lock:
                    if not self._outbox:
                        return
                    batch = self._outbox.pop(0)
                if not self._sink(batch):
                    batch.fail(RequestShed(
                        f"overloaded: batch of {len(batch)} shed"))
