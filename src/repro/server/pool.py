"""Worker pool: coalesced batches in, scattered answers out.

:class:`ThreadWorkerPool` runs N worker threads, each owning its own
:class:`~repro.engine.BatchEngine` replica (own compiled plan, own
FIB cache — no shared mutable state between workers, mirroring
:class:`~repro.engine.RoundRobinEngine`).  Batches flow through one
bounded queue; the NumPy lane kernels release the GIL on the hot
gathers, so workers genuinely overlap on the vector backend.

Backpressure is the queue bound plus a policy:

* ``"block"`` — :meth:`submit` blocks until a slot frees (the
  coalescer's dispatcher stalls, submitters pile up behind its lock:
  classic end-to-end backpressure);
* ``"shed"`` — :meth:`submit` returns ``False`` immediately and the
  coalescer fails the batch's requests with ``RequestShed``.

Consistency is the :class:`CommitGate`: workers execute every batch
inside a *read* section; a commit takes the *write* side, which waits
for in-flight batches to finish, swaps/refreshes every replica, bumps
the serving epoch, and only then lets new batches through.  A batch
therefore executes entirely within one epoch — it can never observe a
half-applied update.

Failure semantics (the fault model ``docs/robustness.md`` documents):

* an **engine exception** fails the batch's futures with that error and
  the worker keeps serving — clients see a typed error, never a hang;
* a **worker crash** (:class:`~repro.server.coalescer.WorkerCrash`, or
  any exception escaping the worker loop itself) leaves the batch
  *unscattered* and exits the thread; the ``on_worker_exit`` callback
  hands the orphaned batch to the supervisor, which re-queues it on a
  surviving worker and restarts the dead one within its budget.  A
  bare pool (no supervisor wired) fails the orphan instead of losing
  it — every accepted batch resolves either way.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, List, Optional, Sequence

from .coalescer import (
    CoalescedBatch,
    PendingLookup,
    RequestShed,
    ServerError,
    WorkerCrash,
)

__all__ = ["CommitGate", "ThreadWorkerPool"]

#: Queue sentinel asking a worker to exit (after draining ahead of it).
_STOP = object()


class CommitGate:
    """A readers/writer gate: batches are readers, commits are writers.

    Writer-preferring: once a commit is waiting, new batches queue up
    behind it, so a steady request stream cannot starve updates.
    Unbalanced releases raise :class:`ServerError` instead of silently
    corrupting the reader count — a double ``release_read`` (or a
    ``release_write`` without the write side held) is always a bug in
    the caller, and a negative reader count would let a commit proceed
    with batches still in flight.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False

    # Reader side -------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise ServerError(
                    "release_read without a matching acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # Writer side -------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise ServerError(
                    "release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # Context-manager sugar --------------------------------------------
    class _Section:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc):
            self._release()

    def read(self) -> "_Section":
        return self._Section(self.acquire_read, self.release_read)

    def write(self) -> "_Section":
        return self._Section(self.acquire_write, self.release_write)


class ThreadWorkerPool:
    """N engine replicas pulling coalesced batches off a bounded queue."""

    def __init__(
        self,
        engines: Sequence,
        *,
        queue_depth: int = 32,
        overload: str = "block",
        gate: Optional[CommitGate] = None,
        epoch_of: Optional[Callable[[], int]] = None,
        on_done: Optional[Callable[[CoalescedBatch,
                                    List[PendingLookup]], None]] = None,
        on_depth: Optional[Callable[[int], None]] = None,
        on_error: Optional[Callable[[CoalescedBatch,
                                     BaseException], None]] = None,
        on_worker_exit: Optional[Callable[[int, BaseException,
                                           Optional[CoalescedBatch]],
                                          None]] = None,
        backend_of: Optional[Callable[[], Optional[str]]] = None,
        clock=None,
    ):
        if not engines:
            raise ValueError("need at least one worker engine")
        if overload not in ("block", "shed"):
            raise ValueError(f"unknown overload policy {overload!r}")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.engines = list(engines)
        self.overload = overload
        self.gate = gate if gate is not None else CommitGate()
        self._epoch_of = epoch_of or (lambda: 0)
        self._on_done = on_done
        self._on_depth = on_depth
        self._on_error = on_error
        self._on_worker_exit = on_worker_exit
        self._backend_of = backend_of
        #: Optional clock for span phase marks; ``None`` keeps the hot
        #: loop free of per-batch clock reads entirely.
        self._clock = clock
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._threads: Dict[int, threading.Thread] = {}
        self._spawns = 0
        self._lifecycle = threading.Lock()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self.engines)

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def alive(self) -> bool:
        return any(t.is_alive() for t in self._threads.values())

    def alive_workers(self) -> int:
        """How many worker threads are currently running."""
        return sum(1 for t in self._threads.values() if t.is_alive())

    def worker_alive(self, worker: int) -> bool:
        thread = self._threads.get(worker)
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lifecycle:
            if self._started:
                return
            self._started = True
            for i in range(len(self.engines)):
                self._spawn(i)

    def _spawn(self, worker: int) -> None:
        """Start (or replace) worker ``worker``'s thread.  Caller holds
        ``_lifecycle``."""
        self._spawns += 1
        thread = threading.Thread(
            target=self._run, args=(worker, self.engines[worker]),
            name=f"repro-serve-w{worker}", daemon=True)
        self._threads[worker] = thread
        thread.start()

    def restart_worker(self, worker: int) -> bool:
        """Replace a dead worker's thread; ``False`` if it is still
        alive, the index is unknown, or the pool is closed."""
        with self._lifecycle:
            if self._closed or not self._started:
                return False
            if not 0 <= worker < len(self.engines):
                return False
            thread = self._threads.get(worker)
            if thread is not None and thread.is_alive():
                return False
            self._spawn(worker)
            return True

    def submit(self, batch: CoalescedBatch) -> bool:
        """Enqueue a batch; ``False`` means the shed policy refused it."""
        if not self._started or self._closed:
            raise ServerError("worker pool is not running")
        if self.overload == "shed":
            try:
                self._queue.put_nowait(batch)
            except queue.Full:
                return False
        else:
            self._queue.put(batch)
        if self._closed:
            # Raced a concurrent close(): the workers may already be
            # gone.  Sweep the queue so the batch resolves either way.
            self._fail_leftovers(ServerError("server closed during submit"))
        self._note_depth()
        return True

    def requeue(self, batch: CoalescedBatch) -> bool:
        """Put an orphaned batch (dead worker) back on the queue.

        Never blocks — the caller may be the dying worker itself.  On a
        full queue or a closed pool the batch is *failed*, not dropped:
        re-queue preserves exactly-once delivery, and when it can't,
        the futures still resolve with a typed error.
        """
        if self._closed:
            batch.fail(ServerError("server closed before serving"))
            return False
        # Counted before the enqueue so the re-execution (and its root
        # span) always sees the bumped retry count.
        batch.meta["retries"] = batch.meta.get("retries", 0) + 1
        try:
            self._queue.put_nowait(batch)
        except queue.Full:
            batch.fail(RequestShed(
                f"worker died and the re-queue of its batch of "
                f"{len(batch)} found the queue full"))
            return False
        self._note_depth()
        return True

    def close(self, drain: bool = True) -> None:
        """Stop the workers.

        ``drain=True`` lets every queued batch finish first (the stop
        sentinels queue FIFO behind them); ``drain=False`` fails the
        queued batches with :class:`ServerError` and stops as soon as
        the in-flight ones complete.  Idempotent and safe to call
        concurrently (with other closers and with ``submit``).
        """
        with self._lifecycle:
            if not self._started or self._closed:
                self._closed = True
                return
            self._closed = True
            threads = list(self._threads.values())
        if not drain:
            self._fail_leftovers(ServerError("server closed before serving"))
        for _ in threads:
            self._queue.put(_STOP)
        for thread in threads:
            thread.join()
        # Crashed workers (or submits racing the close) can leave
        # batches behind the sentinels; nothing will serve them now.
        self._fail_leftovers(ServerError("server closed before serving"))
        self._note_depth()

    def _fail_leftovers(self, error: ServerError) -> None:
        # A sweep racing close() can dequeue stop sentinels meant for
        # the workers; they must go back or a worker blocks in get()
        # forever (and close() then hangs joining it).
        sentinels = 0
        while True:
            try:
                batch = self._queue.get_nowait()
            except queue.Empty:
                break
            if batch is _STOP:
                sentinels += 1
            else:
                batch.fail(error)
        for _ in range(sentinels):
            self._queue.put(_STOP)

    # ------------------------------------------------------------------
    def on_commit(self, outcome: str, algo, touched, delta=None) -> None:
        """Refresh every replica after a landed commit.

        Must be called with the gate's write side held (the server's
        commit handler does), so no batch is mid-execution.  ``delta``
        (the committed :class:`~repro.control.FibDelta`, when the
        runtime applied in place) lets each replica patch its compiled
        plans instead of recompiling them.
        """
        for engine in self.engines:
            engine.on_commit(outcome, algo, touched, delta=delta)

    # ------------------------------------------------------------------
    def _note_depth(self) -> None:
        if self._on_depth is not None:
            self._on_depth(self._queue.qsize())

    def _apply_backend(self, engine) -> None:
        """Honour the server's backend preference (health degradation)
        between batches — each worker flips only its own replica, so no
        cross-thread engine state is ever touched."""
        if self._backend_of is None:
            return
        want = self._backend_of()
        if want is not None and getattr(engine, "backend", want) != want \
                and hasattr(engine, "set_backend"):
            engine.set_backend(want)

    def _run(self, worker: int, engine) -> None:
        batch: Optional[CoalescedBatch] = None
        try:
            while True:
                batch = self._queue.get()
                if batch is _STOP:
                    return
                self._note_depth()
                self._apply_backend(engine)
                clock = self._clock
                try:
                    meta = batch.meta
                    if clock is not None:
                        meta["worker"] = worker
                        meta["picked_at"] = clock.now()
                    with self.gate.read():
                        # The epoch is stable for the whole read section
                        # — commits bump it only under the write side.
                        epoch = self._epoch_of()
                        if clock is not None:
                            meta["gate_at"] = clock.now()
                        hops = engine.lookup_batch(batch.addresses)
                        if clock is not None:
                            meta["executed_at"] = clock.now()
                    # complete() runs inside the try: a scatter error
                    # (wrong hop count, a raising on_done) must fail
                    # the futures and count, never kill the thread
                    # silently with requests left hanging.
                    finished = batch.complete(hops, epoch)
                    if clock is not None:
                        meta["scattered_at"] = clock.now()
                    if self._on_done is not None:
                        self._on_done(batch, finished)
                except WorkerCrash:
                    # A simulated (or real) crash: the batch is still
                    # unscattered — escape the loop so the supervisor
                    # can re-queue it and restart this worker.
                    raise
                except BaseException as exc:  # noqa: BLE001 — fail, don't hang
                    batch.fail(exc)
                    if self._on_error is not None:
                        self._on_error(batch, exc)
                batch = None
        except BaseException as exc:  # noqa: BLE001 — worker death
            orphan = batch if batch is not None and batch is not _STOP \
                else None
            if self._on_error is not None:
                self._on_error(orphan, exc)
            if self._on_worker_exit is not None:
                self._on_worker_exit(worker, exc, orphan)
            elif orphan is not None:
                # No supervisor: the orphan must still resolve.
                orphan.fail(exc)
