"""Worker pool: coalesced batches in, scattered answers out.

:class:`ThreadWorkerPool` runs N worker threads, each owning its own
:class:`~repro.engine.BatchEngine` replica (own compiled plan, own
FIB cache — no shared mutable state between workers, mirroring
:class:`~repro.engine.RoundRobinEngine`).  Batches flow through one
bounded queue; the NumPy lane kernels release the GIL on the hot
gathers, so workers genuinely overlap on the vector backend.

Backpressure is the queue bound plus a policy:

* ``"block"`` — :meth:`submit` blocks until a slot frees (the
  coalescer's dispatcher stalls, submitters pile up behind its lock:
  classic end-to-end backpressure);
* ``"shed"`` — :meth:`submit` returns ``False`` immediately and the
  coalescer fails the batch's requests with ``RequestShed``.

Consistency is the :class:`CommitGate`: workers execute every batch
inside a *read* section; a commit takes the *write* side, which waits
for in-flight batches to finish, swaps/refreshes every replica, bumps
the serving epoch, and only then lets new batches through.  A batch
therefore executes entirely within one epoch — it can never observe a
half-applied update.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List, Optional, Sequence

from .coalescer import CoalescedBatch, PendingLookup, ServerError

__all__ = ["CommitGate", "ThreadWorkerPool"]

#: Queue sentinel asking a worker to exit (after draining ahead of it).
_STOP = object()


class CommitGate:
    """A readers/writer gate: batches are readers, commits are writers.

    Writer-preferring: once a commit is waiting, new batches queue up
    behind it, so a steady request stream cannot starve updates.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False

    # Reader side -------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # Writer side -------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # Context-manager sugar --------------------------------------------
    class _Section:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc):
            self._release()

    def read(self) -> "_Section":
        return self._Section(self.acquire_read, self.release_read)

    def write(self) -> "_Section":
        return self._Section(self.acquire_write, self.release_write)


class ThreadWorkerPool:
    """N engine replicas pulling coalesced batches off a bounded queue."""

    def __init__(
        self,
        engines: Sequence,
        *,
        queue_depth: int = 32,
        overload: str = "block",
        gate: Optional[CommitGate] = None,
        epoch_of: Optional[Callable[[], int]] = None,
        on_done: Optional[Callable[[CoalescedBatch,
                                    List[PendingLookup]], None]] = None,
        on_depth: Optional[Callable[[int], None]] = None,
        on_error: Optional[Callable[[CoalescedBatch,
                                     BaseException], None]] = None,
    ):
        if not engines:
            raise ValueError("need at least one worker engine")
        if overload not in ("block", "shed"):
            raise ValueError(f"unknown overload policy {overload!r}")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.engines = list(engines)
        self.overload = overload
        self.gate = gate if gate is not None else CommitGate()
        self._epoch_of = epoch_of or (lambda: 0)
        self._on_done = on_done
        self._on_depth = on_depth
        self._on_error = on_error
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self.engines)

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def alive(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i, engine in enumerate(self.engines):
            thread = threading.Thread(
                target=self._run, args=(engine,),
                name=f"repro-serve-w{i}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def submit(self, batch: CoalescedBatch) -> bool:
        """Enqueue a batch; ``False`` means the shed policy refused it."""
        if not self._started or self._closed:
            raise ServerError("worker pool is not running")
        if self.overload == "shed":
            try:
                self._queue.put_nowait(batch)
            except queue.Full:
                return False
        else:
            self._queue.put(batch)
        self._note_depth()
        return True

    def close(self, drain: bool = True) -> None:
        """Stop the workers.

        ``drain=True`` lets every queued batch finish first (the stop
        sentinels queue FIFO behind them); ``drain=False`` fails the
        queued batches with :class:`ServerError` and stops as soon as
        the in-flight ones complete.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        if not drain:
            error = ServerError("server closed before serving")
            while True:
                try:
                    batch = self._queue.get_nowait()
                except queue.Empty:
                    break
                if batch is not _STOP:
                    batch.fail(error)
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._note_depth()

    # ------------------------------------------------------------------
    def on_commit(self, outcome: str, algo, touched) -> None:
        """Refresh every replica after a landed commit.

        Must be called with the gate's write side held (the server's
        commit handler does), so no batch is mid-execution.
        """
        for engine in self.engines:
            engine.on_commit(outcome, algo, touched)

    # ------------------------------------------------------------------
    def _note_depth(self) -> None:
        if self._on_depth is not None:
            self._on_depth(self._queue.qsize())

    def _run(self, engine) -> None:
        while True:
            batch = self._queue.get()
            if batch is _STOP:
                return
            self._note_depth()
            try:
                with self.gate.read():
                    # The epoch is stable for the whole read section —
                    # commits bump it only under the write side.
                    epoch = self._epoch_of()
                    hops = engine.lookup_batch(batch.addresses)
            except BaseException as exc:  # noqa: BLE001 — fail, don't hang
                batch.fail(exc)
                if self._on_error is not None:
                    self._on_error(batch, exc)
                continue
            finished = batch.complete(hops, epoch)
            if self._on_done is not None:
                self._on_done(batch, finished)
