"""The concurrent serving frontend over the batch engines.

:class:`LookupServer` is what ``repro serve --workers N`` runs: many
logical clients submit single addresses or small batches; a
:class:`~repro.server.coalescer.RequestCoalescer` packs them into
engine-sized batches on a size-or-deadline trigger; a worker pool
(threads by default, forked processes with ``mode="process"``) runs
each batch through its own :class:`~repro.engine.BatchEngine` replica
and scatters the answers back to the per-request futures.

Consistency under churn — the property the stress tests prove — comes
from one rule: **commits quiesce serving**.  The server subscribes to
:class:`~repro.control.ManagedFib` commits; the handler takes the
:class:`~repro.server.pool.CommitGate` write side (waiting out every
in-flight batch), bumps the serving epoch, refreshes every worker
replica (recompile + targeted cache invalidation, or a shipped FIB
snapshot in process mode), and releases.  Every batch therefore
executes entirely within one epoch: no lookup can observe a
half-applied update, and rolled-back batches — which never notify —
leave the serving plan untouched.

Telemetry (all in the shared :class:`~repro.obs.MetricsRegistry`):

===================================  =======================================
``repro_server_requests_total``      requests accepted (per server label)
``repro_server_addresses_total``     addresses accepted
``repro_server_batches_total``       coalesced batches dispatched
``repro_server_flush_total``         flushes by trigger (``reason`` label)
``repro_server_batch_size``          coalesced-batch-size histogram
``repro_server_queue_depth``         worker-queue depth gauge
``repro_server_shed_total``          addresses shed by the overload policy
``repro_server_commits_total``       quiesced commits (``outcome`` label)
``repro_server_epoch``               serving epoch (commit generation)
``repro_server_worker_errors_total`` batches failed by a worker exception
``repro_server_request`` (timing)    per-request latency (wall clock)
``repro_server_quiesce`` (timing)    commit quiesce + refresh latency
===================================  =======================================
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..engine.engine import ENGINE_BATCH_BUCKETS, BatchEngine
from ..obs import MetricsRegistry
from ..obs.clock import Clock, MonotonicClock
from .coalescer import (
    CoalescedBatch,
    PendingLookup,
    RequestCoalescer,
    ServerError,
)
from .pool import CommitGate, ThreadWorkerPool
from .procpool import ProcessWorkerPool, fib_snapshot

__all__ = ["LookupServer", "SERVER_MODES", "SERVER_OVERLOAD_POLICIES"]

SERVER_MODES = ("thread", "process")
SERVER_OVERLOAD_POLICIES = ("block", "shed")


class LookupServer:
    """Request coalescing + worker pool + commit-quiesced consistency."""

    def __init__(
        self,
        algo=None,
        *,
        managed=None,
        workers: int = 2,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        queue_depth: int = 32,
        overload: str = "block",
        mode: str = "thread",
        cache_size: int = 0,
        backend: str = "plan",
        registry: Optional[MetricsRegistry] = None,
        name: str = "server",
        clock: Optional[Clock] = None,
        factory: Optional[Callable] = None,
        base_fib=None,
    ):
        if mode not in SERVER_MODES:
            raise ValueError(f"mode {mode!r} not one of {SERVER_MODES}")
        if overload not in SERVER_OVERLOAD_POLICIES:
            raise ValueError(
                f"overload {overload!r} not one of {SERVER_OVERLOAD_POLICIES}")
        if workers < 1:
            raise ValueError("need at least one worker")
        if managed is not None:
            algo = managed.algo
            factory = factory if factory is not None else managed.factory
            base_fib = base_fib if base_fib is not None else managed.oracle
            if registry is None:
                registry = managed.registry
        if algo is None:
            raise ValueError("need an algorithm (or managed=) to serve")
        self.name = name
        self.mode = mode
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock if clock is not None else MonotonicClock()
        self.gate = CommitGate()
        self._managed = managed
        self._epoch = 0
        self._started = False
        self._closed = False

        reg = self.registry
        self._requests = reg.counter(
            "repro_server_requests_total", "Requests accepted by the server.")
        self._addresses = reg.counter(
            "repro_server_addresses_total", "Addresses accepted by the server.")
        self._batches = reg.counter(
            "repro_server_batches_total", "Coalesced batches dispatched.")
        self._flushes = reg.counter(
            "repro_server_flush_total",
            "Coalescer flushes by trigger (size/deadline/drain/manual).")
        self._batch_size = reg.histogram(
            "repro_server_batch_size", ENGINE_BATCH_BUCKETS,
            "Addresses per coalesced batch.")
        self._depth = reg.gauge(
            "repro_server_queue_depth", "Batches queued for the workers.")
        self._shed = reg.counter(
            "repro_server_shed_total",
            "Addresses shed by the overload policy.")
        self._commits = reg.counter(
            "repro_server_commits_total",
            "Commits quiesced through the server, by outcome.")
        self._epoch_gauge = reg.gauge(
            "repro_server_epoch", "Serving epoch (landed-commit generation).")
        self._worker_errors = reg.counter(
            "repro_server_worker_errors_total",
            "Batches failed by a worker exception.")
        self._epoch_gauge.set(0, server=self.name)
        self._depth.set(0, server=self.name)

        if mode == "thread":
            engines = [
                BatchEngine(algo, cache_size=cache_size, registry=reg,
                            name=f"{name}-w{i}", backend=backend)
                for i in range(workers)
            ]
            self._pool = ThreadWorkerPool(
                engines, queue_depth=queue_depth, overload=overload,
                gate=self.gate, epoch_of=lambda: self._epoch,
                on_done=self._on_done, on_depth=self._on_depth,
                on_error=self._on_error)
        else:
            if factory is None or base_fib is None:
                raise ServerError(
                    "process mode needs factory= and base_fib= (or managed=)")
            self._pool = ProcessWorkerPool(
                base_fib.width, factory, fib_snapshot(base_fib),
                workers=workers, queue_depth=queue_depth, overload=overload,
                gate=self.gate, epoch_of=lambda: self._epoch,
                on_done=self._on_done, on_depth=self._on_depth,
                on_error=self._on_error,
                backend=backend, cache_size=cache_size)
        self.coalescer = RequestCoalescer(
            self._sink, max_batch=max_batch, max_wait_s=max_wait_s,
            clock=self.clock)
        if managed is not None:
            managed.add_commit_listener(self._on_commit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The serving epoch: bumped once per quiesced, landed commit."""
        return self._epoch

    @property
    def workers(self) -> int:
        return self._pool.workers

    def engines(self) -> List[BatchEngine]:
        """Worker engine replicas (thread mode; empty for processes)."""
        return list(getattr(self._pool, "engines", []))

    @property
    def active_backend(self) -> str:
        engines = self.engines()
        return engines[0].active_backend if engines else self.mode

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LookupServer":
        if self._closed:
            raise ServerError("server is closed")
        if not self._started:
            self._started = True
            self._pool.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop serving.  ``drain=True`` answers everything accepted
        (flush the open batch, let the queue empty); ``drain=False``
        fails unserved requests with ``ServerClosed``/``ServerError``.
        """
        if self._closed:
            return
        self._closed = True
        self.coalescer.close(drain=drain)
        if self._started:
            self._pool.close(drain=drain)
        if self._managed is not None:
            self._managed.remove_commit_listener(self._on_commit)
            self._managed = None

    def __enter__(self) -> "LookupServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close(drain=True)

    def drained(self) -> bool:
        """True once nothing is pending anywhere (a shutdown probe)."""
        return (self.coalescer.pending_addresses == 0
                and self._pool.queue_depth() == 0
                and not self._pool.alive())

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def submit(self, addresses: Sequence[int]) -> PendingLookup:
        """Queue a small-batch request; returns its future."""
        self.start()
        handle = self.coalescer.submit(addresses)
        self._requests.inc(1, server=self.name)
        self._addresses.inc(len(handle.addresses), server=self.name)
        return handle

    def submit_one(self, address: int) -> PendingLookup:
        return self.submit([address])

    def lookup(self, address: int,
               timeout: Optional[float] = None) -> Optional[int]:
        """Synchronous single lookup (submit + flush + wait)."""
        handle = self.submit([address])
        self.flush()
        return handle.result(timeout)[0]

    def lookup_batch(self, addresses: Sequence[int],
                     timeout: Optional[float] = None) -> List[Optional[int]]:
        handle = self.submit(addresses)
        self.flush()
        return handle.result(timeout)

    def flush(self) -> None:
        """Cut the open batch now (don't wait for size or deadline)."""
        self.coalescer.flush()

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def refresh(self, algo=None, touched=None) -> None:
        """Manually quiesce + refresh (servers not over a ManagedFib)."""
        self._quiesce("refresh", algo, touched)

    def _on_commit(self, outcome: str, algo, touched) -> None:
        """ManagedFib commit listener — only landed batches notify."""
        self._quiesce(outcome, algo, touched)

    def _quiesce(self, outcome: str, algo, touched) -> None:
        with self.registry.timer("repro_server_quiesce", server=self.name):
            with self.gate.write():
                self._epoch += 1
                self._epoch_gauge.set(self._epoch, server=self.name)
                if self.mode == "thread":
                    self._pool.on_commit(outcome, algo, touched)
                else:
                    snapshot = (fib_snapshot(self._managed.oracle)
                                if self._managed is not None else None)
                    self._pool.on_commit(outcome, algo, touched,
                                         snapshot=snapshot)
        self._commits.inc(1, server=self.name, outcome=outcome)

    # ------------------------------------------------------------------
    # Pool/coalescer callbacks
    # ------------------------------------------------------------------
    def _sink(self, batch: CoalescedBatch) -> bool:
        self._flushes.inc(1, server=self.name, reason=batch.reason)
        if not self._pool.submit(batch):
            self._shed.inc(len(batch.addresses), server=self.name)
            return False
        self._batches.inc(1, server=self.name)
        self._batch_size.observe(len(batch.addresses))
        return True

    def _on_done(self, batch: CoalescedBatch,
                 finished: List[PendingLookup]) -> None:
        now = self.clock.now()
        for handle in finished:
            self.registry.observe_seconds(
                "repro_server_request", max(0.0, now - handle.submitted_at),
                server=self.name)

    def _on_depth(self, depth: int) -> None:
        self._depth.set(depth, server=self.name)

    def _on_error(self, batch: CoalescedBatch, exc: BaseException) -> None:
        self._worker_errors.inc(1, server=self.name)
