"""The concurrent serving frontend over the batch engines.

:class:`LookupServer` is what ``repro serve --workers N`` runs: many
logical clients submit single addresses or small batches; a
:class:`~repro.server.coalescer.RequestCoalescer` packs them into
engine-sized batches on a size-or-deadline trigger; a worker pool
(threads by default, forked processes with ``mode="process"``) runs
each batch through its own :class:`~repro.engine.BatchEngine` replica
and scatters the answers back to the per-request futures.

Consistency under churn — the property the stress tests prove — comes
from one rule: **commits quiesce serving**.  The server subscribes to
:class:`~repro.control.ManagedFib` commits; the handler takes the
:class:`~repro.server.pool.CommitGate` write side (waiting out every
in-flight batch), bumps the serving epoch, refreshes every worker
replica (recompile + targeted cache invalidation, or a shipped FIB
snapshot in process mode), and releases.  Every batch therefore
executes entirely within one epoch: no lookup can observe a
half-applied update, and rolled-back batches — which never notify —
leave the serving plan untouched.

Fault tolerance (``docs/robustness.md`` has the full fault model):

* **supervision** — worker deaths (thread crashes, killed processes,
  hung snapshot-acks) re-queue their unscattered batches on survivors
  and restart the worker under a budgeted, jittered backoff
  (:class:`~repro.server.supervisor.WorkerSupervisor`);
* **deadlines** — ``request_deadline_s`` arms a per-request timer that
  fails the future with :class:`RequestTimeout`; an accepted request
  *never* hangs past its deadline, and late answers are dropped;
* **degradation** — a :class:`~repro.server.supervisor.ServingHealth`
  state machine (HEALTHY → DEGRADED → BROWNOUT) driven by queue depth,
  restart rate, and deadline-miss rate.  DEGRADED flips vector-backend
  workers to the scalar plan (thread mode); BROWNOUT serves
  answer-cache hits at the current epoch and sheds the rest;
* **chaos** — a seeded :class:`~repro.chaos.ChaosPlan` injects
  scripted dataplane faults (worker kills, in-batch exceptions,
  delayed/dropped snapshot-acks, commit-gate stalls) for the
  ``repro chaos-soak`` harness.

Telemetry (all in the shared :class:`~repro.obs.MetricsRegistry`):

==========================================  ================================
``repro_server_requests_total``             requests accepted
``repro_server_addresses_total``            addresses accepted
``repro_server_batches_total``              coalesced batches dispatched
``repro_server_flush_total``                flushes by ``reason`` label
``repro_server_batch_size``                 coalesced-batch-size histogram
``repro_server_queue_depth``                worker-queue depth gauge
``repro_server_shed_total``                 addresses shed (overload/brownout)
``repro_server_commits_total``              quiesced commits by ``outcome``
``repro_server_epoch``                      serving epoch gauge
``repro_server_worker_errors_total``        batches failed by worker errors
``repro_server_worker_deaths_total``        workers that died serving
``repro_server_restarts_total``             supervised worker restarts
``repro_server_restart_giveups_total``      workers left down (budget spent)
``repro_server_deadline_misses_total``      requests failed by their deadline
``repro_server_retries_total``              client-side retry attempts
``repro_server_health_state``               health gauge (0/1/2 = H/D/B)
``repro_server_health_transitions_total``   transitions by ``to`` label
``repro_server_brownout_hits_total``        addresses served from the
                                            brownout answer cache
``repro_server_snapshot_bytes_total``       full-snapshot bytes shipped to
                                            process workers on commits
``repro_server_delta_bytes_total``          commit-delta bytes shipped to
                                            process workers on commits
``repro_server_spans_total``                lifecycle spans recorded, by
                                            ``phase``
``repro_server_span_requests_sampled_total``    requests picked by the span
                                                sampler
``repro_server_span_requests_unsampled_total``  requests skipped by it
``repro_server_slo_breaches_total``         SLO quantile breaches, by
                                            ``quantile``
``repro_server_slo_target_seconds``         configured SLO targets (gauge)
``repro_server_request`` (timing)           per-request latency (wall clock)
``repro_server_phase`` (timing)             per-phase latency decomposition
                                            (queue wait / execute / scatter)
``repro_server_quiesce`` (timing)           commit quiesce + refresh latency
==========================================  ================================

Observability (``docs/observability.md`` § request-lifecycle tracing):
every request carries a deterministic sequence number and a head-based
span-sampling decision; sampled requests leave a full trace — root
``request`` span plus the batch's ``coalesce``/``queue_wait``/``gate``/
``execute``/``scatter`` decomposition and outcome markers (timeout,
shed, brownout, retry-after-worker-death) — in :attr:`spans`
(a :class:`~repro.obs.SpanRecorder`).  Every request, sampled or not,
feeds :attr:`slo` (a :class:`~repro.obs.SloTracker`) whose sliding
p50/p99/p999 windows gate the SLO and, on breach, degrade
:class:`ServingHealth`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.engine import ENGINE_BATCH_BUCKETS, BatchEngine
from ..obs import MetricsRegistry
from ..obs.clock import Clock, MonotonicClock
from ..obs.slo import SloConfig, SloTracker
from ..obs.spans import (
    DEFAULT_SPAN_SAMPLE_RATE,
    SpanRecorder,
    batch_trace_id_for,
    trace_id_for,
)
from .coalescer import (
    CoalescedBatch,
    PendingLookup,
    RequestCoalescer,
    RequestShed,
    RequestTimeout,
    ServerError,
)
from .pool import CommitGate, ThreadWorkerPool
from .procpool import ProcessWorkerPool, fib_snapshot
from .supervisor import (
    SERVING_STATE_VALUES,
    RestartPolicy,
    RetryingClient,
    RetryPolicy,
    ServingHealth,
    ServingState,
    WorkerSupervisor,
)

__all__ = ["LookupServer", "SERVER_MODES", "SERVER_OVERLOAD_POLICIES"]

SERVER_MODES = ("thread", "process")
SERVER_OVERLOAD_POLICIES = ("block", "shed")

#: Brownout answer-cache capacity (addresses); cleared on every commit.
BROWNOUT_CACHE_SIZE = 4096


class LookupServer:
    """Request coalescing + worker pool + commit-quiesced consistency."""

    def __init__(
        self,
        algo=None,
        *,
        managed=None,
        workers: int = 2,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        queue_depth: int = 32,
        overload: str = "block",
        mode: str = "thread",
        cache_size: int = 0,
        backend: str = "plan",
        registry: Optional[MetricsRegistry] = None,
        name: str = "server",
        clock: Optional[Clock] = None,
        factory: Optional[Callable] = None,
        base_fib=None,
        request_deadline_s: Optional[float] = None,
        supervise: bool = True,
        restart_policy: Optional[RestartPolicy] = None,
        health: Optional[ServingHealth] = None,
        ack_timeout_s: float = 60.0,
        chaos=None,
        ship_deltas: bool = True,
        artifact: Optional[str] = None,
        sample_rate: float = DEFAULT_SPAN_SAMPLE_RATE,
        span_capacity: int = 65536,
        span_seed: int = 0,
        slo: Optional[SloConfig] = None,
    ):
        if mode not in SERVER_MODES:
            raise ValueError(f"mode {mode!r} not one of {SERVER_MODES}")
        if overload not in SERVER_OVERLOAD_POLICIES:
            raise ValueError(
                f"overload {overload!r} not one of {SERVER_OVERLOAD_POLICIES}")
        if workers < 1:
            raise ValueError("need at least one worker")
        if request_deadline_s is not None and request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be > 0")
        if managed is not None:
            algo = managed.algo
            factory = factory if factory is not None else managed.factory
            base_fib = base_fib if base_fib is not None else managed.oracle
            if registry is None:
                registry = managed.registry
        if algo is None:
            raise ValueError("need an algorithm (or managed=) to serve")
        self.name = name
        self.mode = mode
        self.backend = backend
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock if clock is not None else MonotonicClock()
        self.gate = CommitGate()
        self.request_deadline_s = request_deadline_s
        self.chaos = chaos
        self._managed = managed
        self._factory = factory
        self._width = algo.width
        self._epoch = 0
        self._started = False
        self._closed = False
        # Brownout answer cache: address -> hop, valid only for the
        # current epoch (cleared atomically with every epoch bump).
        self._answer_cache: Dict[int, Optional[int]] = {}
        self._cache_lock = threading.Lock()

        reg = self.registry
        self._requests = reg.counter(
            "repro_server_requests_total", "Requests accepted by the server.")
        self._addresses = reg.counter(
            "repro_server_addresses_total", "Addresses accepted by the server.")
        self._batches = reg.counter(
            "repro_server_batches_total", "Coalesced batches dispatched.")
        self._flushes = reg.counter(
            "repro_server_flush_total",
            "Coalescer flushes by trigger (size/deadline/drain/manual).")
        self._batch_size = reg.histogram(
            "repro_server_batch_size", ENGINE_BATCH_BUCKETS,
            "Addresses per coalesced batch.")
        self._depth = reg.gauge(
            "repro_server_queue_depth", "Batches queued for the workers.")
        self._shed = reg.counter(
            "repro_server_shed_total",
            "Addresses shed by the overload policy.")
        self._commits = reg.counter(
            "repro_server_commits_total",
            "Commits quiesced through the server, by outcome.")
        self._epoch_gauge = reg.gauge(
            "repro_server_epoch", "Serving epoch (landed-commit generation).")
        self._worker_errors = reg.counter(
            "repro_server_worker_errors_total",
            "Batches failed by a worker exception.")
        self._worker_deaths = reg.counter(
            "repro_server_worker_deaths_total",
            "Worker threads/processes that died while serving.")
        self._restarts = reg.counter(
            "repro_server_restarts_total",
            "Workers restarted by the supervisor.")
        self._giveups = reg.counter(
            "repro_server_restart_giveups_total",
            "Workers left down after the restart budget was spent.")
        self._deadline_misses = reg.counter(
            "repro_server_deadline_misses_total",
            "Requests failed by their per-request deadline.")
        self._retries = reg.counter(
            "repro_server_retries_total",
            "Client-side retry attempts against this server.")
        self._health_gauge = reg.gauge(
            "repro_server_health_state",
            "Serving health (0 healthy, 1 degraded, 2 brownout).")
        self._health_transitions = reg.counter(
            "repro_server_health_transitions_total",
            "Serving health transitions, by destination state.")
        self._brownout_hits = reg.counter(
            "repro_server_brownout_hits_total",
            "Addresses served from the brownout answer cache.")
        self._snapshot_bytes = reg.counter(
            "repro_server_snapshot_bytes_total",
            "Full-snapshot bytes shipped to process workers on commits.")
        self._delta_bytes = reg.counter(
            "repro_server_delta_bytes_total",
            "Commit-delta bytes shipped to process workers on commits.")
        self._epoch_gauge.set(0, server=self.name)
        self._depth.set(0, server=self.name)
        self._health_gauge.set(0, server=self.name)

        #: Request-lifecycle spans (head-sampled) and the SLO tracker
        #: (observes every request — sampling never skews percentiles).
        self.spans = SpanRecorder(
            sample_rate=sample_rate, capacity=span_capacity,
            seed=span_seed, registry=reg, server=name)
        self.slo = SloTracker(
            slo, registry=reg, server=name,
            on_breach=self._note_slo_breach)

        self.health: Optional[ServingHealth] = None
        self.supervisor: Optional[WorkerSupervisor] = None
        if supervise:
            self.health = health if health is not None else ServingHealth(
                self.clock, queue_capacity=queue_depth,
                on_transition=self._on_health_transition)
        on_worker_exit = self._worker_exited if supervise else None

        if mode == "thread":
            engines = [
                BatchEngine(algo, cache_size=cache_size, registry=reg,
                            name=f"{name}-w{i}", backend=backend)
                for i in range(workers)
            ]
            if chaos is not None:
                from ..chaos.plan import ChaosEngine
                engines = [ChaosEngine(engine, chaos, i)
                           for i, engine in enumerate(engines)]
            self._pool = ThreadWorkerPool(
                engines, queue_depth=queue_depth, overload=overload,
                gate=self.gate, epoch_of=lambda: self._epoch,
                on_done=self._on_done, on_depth=self._on_depth,
                on_error=self._on_error, on_worker_exit=on_worker_exit,
                backend_of=self._preferred_backend if supervise else None,
                clock=self.clock)
        else:
            if factory is None or base_fib is None:
                raise ServerError(
                    "process mode needs factory= and base_fib= (or managed=)")
            self._pool = ProcessWorkerPool(
                base_fib.width, factory, fib_snapshot(base_fib),
                workers=workers, queue_depth=queue_depth, overload=overload,
                gate=self.gate, epoch_of=lambda: self._epoch,
                on_done=self._on_done, on_depth=self._on_depth,
                on_error=self._on_error, on_worker_exit=on_worker_exit,
                backend=backend, cache_size=cache_size,
                ack_timeout_s=ack_timeout_s, chaos=chaos,
                clock=self.clock, ship_deltas=ship_deltas,
                on_ship=self._note_ship, artifact=artifact)
        if supervise:
            policy = restart_policy if restart_policy is not None \
                else RestartPolicy(self.clock)
            self.supervisor = WorkerSupervisor(
                self._pool, self.clock, policy=policy, health=self.health,
                on_death=self._note_death, on_restart=self._note_restart,
                on_giveup=self._note_giveup,
                on_requeue=self._note_requeue)
        self.coalescer = RequestCoalescer(
            self._sink, max_batch=max_batch, max_wait_s=max_wait_s,
            clock=self.clock, sampler=self.spans.sampled)
        if managed is not None:
            managed.add_commit_listener(self._on_commit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The serving epoch: bumped once per quiesced, landed commit."""
        return self._epoch

    @property
    def workers(self) -> int:
        return self._pool.workers

    def engines(self) -> List[BatchEngine]:
        """Worker engine replicas (thread mode; empty for processes)."""
        return list(getattr(self._pool, "engines", []))

    @property
    def active_backend(self) -> str:
        engines = self.engines()
        return engines[0].active_backend if engines else self.mode

    @property
    def health_state(self) -> ServingState:
        return self.health.state if self.health is not None \
            else ServingState.HEALTHY

    @property
    def pool(self):
        """The worker pool (chaos/benchmarks kill workers through it)."""
        return self._pool

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LookupServer":
        if self._closed:
            raise ServerError("server is closed")
        if not self._started:
            self._started = True
            self._pool.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop serving.  ``drain=True`` answers everything accepted
        (flush the open batch, let the queue empty); ``drain=False``
        fails unserved requests with ``ServerClosed``/``ServerError``.
        Idempotent; safe to call from a signal handler.
        """
        if self._closed:
            return
        self._closed = True
        if self.supervisor is not None:
            self.supervisor.close()
        self.coalescer.close(drain=drain)
        if self._started:
            self._pool.close(drain=drain)
        if self._managed is not None:
            self._managed.remove_commit_listener(self._on_commit)
            self._managed = None

    def __enter__(self) -> "LookupServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close(drain=True)

    def drained(self) -> bool:
        """True once nothing is pending anywhere (a shutdown probe)."""
        return (self.coalescer.pending_addresses == 0
                and self._pool.queue_depth() == 0
                and not self._pool.alive())

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def submit(self, addresses: Sequence[int]) -> PendingLookup:
        """Queue a small-batch request; returns its future.

        Under BROWNOUT the request bypasses the pipeline: if every
        address is in the answer cache (current epoch only), the
        future resolves immediately from it; otherwise the request is
        shed — the point of brownout is to stop feeding a drowning
        worker pool while still answering what can be answered.
        """
        self.start()
        if self.health is not None:
            self.health.note_request()
            if self.health.state is ServingState.BROWNOUT:
                return self._brownout_submit(addresses)
        handle = self.coalescer.submit(addresses)
        self._requests.inc(1, server=self.name)
        self._addresses.inc(len(handle.addresses), server=self.name)
        self._arm_deadline(handle)
        return handle

    def submit_one(self, address: int) -> PendingLookup:
        return self.submit([address])

    def lookup(self, address: int,
               timeout: Optional[float] = None) -> Optional[int]:
        """Synchronous single lookup (submit + flush + wait)."""
        handle = self.submit([address])
        self.flush()
        return handle.result(timeout)[0]

    def lookup_batch(self, addresses: Sequence[int],
                     timeout: Optional[float] = None) -> List[Optional[int]]:
        handle = self.submit(addresses)
        self.flush()
        return handle.result(timeout)

    def flush(self) -> None:
        """Cut the open batch now (don't wait for size or deadline)."""
        self.coalescer.flush()

    def retry_client(self, *, policy: Optional[RetryPolicy] = None,
                     seed: int = 0) -> RetryingClient:
        """An idempotent-retry wrapper wired to this server's clock and
        ``repro_server_retries_total`` counter."""
        return RetryingClient(self, policy=policy, clock=self.clock,
                              on_retry=self._note_retry, seed=seed)

    # ------------------------------------------------------------------
    # Robustness internals
    # ------------------------------------------------------------------
    def _arm_deadline(self, handle: PendingLookup) -> None:
        if self.request_deadline_s is None or handle.done():
            return
        handle.deadline_timer = self.clock.call_at(
            self.clock.now() + self.request_deadline_s,
            lambda: self._miss_deadline(handle))

    def _miss_deadline(self, handle: PendingLookup) -> None:
        if handle._fail(RequestTimeout(
                f"request not served within {self.request_deadline_s}s")):
            self._deadline_misses.inc(1, server=self.name)
            if handle.sampled:
                self.spans.event(
                    trace_id_for(handle.seq, self._epoch), "timeout",
                    self.clock.now(), seq=handle.seq,
                    deadline_s=self.request_deadline_s)
            if self.health is not None:
                self.health.note_deadline_miss()

    def _brownout_submit(self, addresses: Sequence[int]) -> PendingLookup:
        now = self.clock.now()
        handle = PendingLookup(addresses, now)
        self._requests.inc(1, server=self.name)
        self._addresses.inc(len(handle.addresses), server=self.name)
        if not handle.addresses:
            return handle
        handle.seq = self.coalescer.next_seq()
        handle.sampled = self.spans.sampled(handle.seq)
        with self._cache_lock:
            epoch = self._epoch
            hops = [self._answer_cache.get(a, _MISS)
                    for a in handle.addresses]
        if any(h is _MISS for h in hops):
            self._shed.inc(len(handle.addresses), server=self.name)
            handle._fail(RequestShed(
                "brownout: request not fully answerable from cache"))
            if handle.sampled:
                self.spans.event(
                    trace_id_for(handle.seq, epoch), "brownout_shed",
                    now, seq=handle.seq,
                    addresses=len(handle.addresses))
        else:
            self._brownout_hits.inc(len(hops), server=self.name)
            handle._scatter(0, hops, epoch)
            # Cache hits count as served requests: the latency timer,
            # the SLO window, and (when sampled) a root span whose
            # measured duration matches the timer observation exactly.
            done = self.clock.now()
            dur = max(0.0, done - handle.submitted_at)
            self.registry.observe_seconds(
                "repro_server_request", dur, server=self.name)
            self.slo.observe("request", dur)
            if handle.sampled:
                trace_id = trace_id_for(handle.seq, epoch)
                self.spans.record(
                    trace_id, "request", handle.submitted_at, done,
                    seq=handle.seq, epoch=epoch,
                    addresses=len(handle.addresses),
                    outcome="brownout_hit")
                self.spans.event(trace_id, "brownout_hit", done,
                                 seq=handle.seq,
                                 parent_id=f"{trace_id}:request")
        return handle

    def _feed_answer_cache(self, finished: List[PendingLookup]) -> None:
        with self._cache_lock:
            for handle in finished:
                # Only answers computed at the *current* epoch may be
                # cached — a late scatter racing a commit must not
                # plant stale hops (zero-stale-reads invariant).
                if handle.epoch != self._epoch:
                    continue
                if len(self._answer_cache) + len(handle.addresses) \
                        > BROWNOUT_CACHE_SIZE:
                    continue
                for address, hop in zip(handle.addresses, handle._hops):
                    self._answer_cache[address] = hop

    def _preferred_backend(self) -> Optional[str]:
        """Thread-pool ``backend_of`` hook: DEGRADED (or worse) falls a
        vector-capable backend back to the scalar plan."""
        if self.backend == "plan" or self.health is None:
            return None
        if self.health.state is not ServingState.HEALTHY:
            return "plan"
        return self.backend

    def _worker_exited(self, worker: int, exc: BaseException,
                       orphans=None) -> None:
        if self.supervisor is not None:
            self.supervisor.worker_exited(worker, exc, orphans)

    def _note_death(self, worker: int, exc: BaseException) -> None:
        self._worker_deaths.inc(1, server=self.name)

    def _note_restart(self, worker: int, delay: float) -> None:
        self._restarts.inc(1, server=self.name)

    def _note_giveup(self, worker: int) -> None:
        self._giveups.inc(1, server=self.name)

    def _note_retry(self, attempt: int, error: BaseException) -> None:
        self._retries.inc(1, server=self.name)

    def _on_health_transition(self, old: ServingState,
                              new: ServingState) -> None:
        self._health_gauge.set(SERVING_STATE_VALUES[new], server=self.name)
        self._health_transitions.inc(1, server=self.name, to=str(new))

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def refresh(self, algo=None, touched=None) -> None:
        """Manually quiesce + refresh (servers not over a ManagedFib)."""
        self._quiesce("refresh", algo, touched)

    def _on_commit(self, outcome: str, algo, touched) -> None:
        """ManagedFib commit listener — only landed batches notify."""
        self._quiesce(outcome, algo, touched)

    def _quiesce(self, outcome: str, algo, touched) -> None:
        # An applied (not rebuilt) batch publishes its FibDelta on the
        # runtime: thread replicas use it to patch their compiled plans
        # in place; process mode ships it instead of a full snapshot.
        delta = (self._managed.last_delta
                 if self._managed is not None
                 and outcome == "batch_applied" else None)
        with self.registry.timer("repro_server_quiesce", server=self.name):
            with self.gate.write():
                if self.chaos is not None:
                    stall = self.chaos.commit_stall(self._epoch)
                    if stall:
                        # A scripted slow commit: serving stays gated.
                        self.clock.sleep(stall)
                with self._cache_lock:
                    self._epoch += 1
                    self._answer_cache.clear()
                self._epoch_gauge.set(self._epoch, server=self.name)
                if self.mode == "thread":
                    self._pool.on_commit(outcome, algo, touched,
                                         delta=delta)
                else:
                    if delta is not None and self._pool.ship_deltas:
                        # The delta is the whole payload; the pool's own
                        # FIB mirror covers restarts, so the oracle
                        # serialisation is skipped entirely.
                        self._pool.on_commit(outcome, algo, touched,
                                             delta=delta)
                    else:
                        snapshot = (fib_snapshot(self._managed.oracle)
                                    if self._managed is not None else None)
                        self._pool.on_commit(outcome, algo, touched,
                                             snapshot=snapshot)
        self._commits.inc(1, server=self.name, outcome=outcome)

    def reload_artifact(self, loaded) -> int:
        """Blue/green flip onto a catalog artifact, atomically.

        ``loaded`` is a :class:`~repro.artifact.LoadedArtifact`.  The
        heavy lifting — materialising the new FIB and (parent-side)
        algorithm from the snapshot — happens *before* the commit gate
        is taken, so the old version keeps serving until the new one
        is ready.  The actual swap then rides the same quiesce path as
        churn commits: gate write side held, epoch bumped, answer
        cache cleared, every replica flipped.  Batches in flight when
        the flip starts finish against the old epoch; batches admitted
        after it see only the new table — there is no interleaving in
        which a request observes half of each.

        Thread mode refreshes every engine onto the new algorithm;
        process mode ships a ``reload`` message so each child mmaps
        the snapshot itself (and any worker that dies mid-flip is
        restarted from the *new* catalog version).  A ``managed=``
        runtime, when present, adopts the new state under the same
        gate so churn resumes against the loaded base.

        Returns the new serving epoch.
        """
        if self._closed:
            raise ServerError("server is closed")
        if loaded.width != self._width:
            raise ServerError(
                f"artifact width {loaded.width} != serving width "
                f"{self._width}")
        new_fib = loaded.fib()
        new_algo = None
        if self.mode == "thread" or self._managed is not None:
            new_algo = loaded.algorithm(factory=self._factory)
        triples = (loaded.fib_triples() if self.mode == "process" else None)
        with self.registry.timer("repro_server_quiesce", server=self.name):
            with self.gate.write():
                with self._cache_lock:
                    self._epoch += 1
                    self._answer_cache.clear()
                self._epoch_gauge.set(self._epoch, server=self.name)
                if self.mode == "thread":
                    self._pool.on_commit("reload", new_algo, None)
                else:
                    self._pool.reload_artifact(str(loaded.path), triples)
                if self._managed is not None:
                    # adopt() does not re-fire commit listeners — the
                    # flip is already happening under this gate.
                    self._managed.adopt(new_algo, new_fib)
        self._commits.inc(1, server=self.name, outcome="reload")
        return self._epoch

    def _note_ship(self, kind: str, nbytes: int) -> None:
        """ProcessWorkerPool ``on_ship`` observer: payload accounting."""
        if kind == "delta":
            self._delta_bytes.inc(nbytes, server=self.name)
        else:
            self._snapshot_bytes.inc(nbytes, server=self.name)

    # ------------------------------------------------------------------
    # Pool/coalescer callbacks
    # ------------------------------------------------------------------
    def _sink(self, batch: CoalescedBatch) -> bool:
        self._flushes.inc(1, server=self.name, reason=batch.reason)
        if not self._pool.submit(batch):
            self._shed.inc(len(batch.addresses), server=self.name)
            now = self.clock.now()
            for handle, *_ in batch.parts:
                if handle.sampled:
                    self.spans.event(
                        trace_id_for(handle.seq, self._epoch), "shed",
                        now, seq=handle.seq, reason="pool_refused")
            return False
        self._batches.inc(1, server=self.name)
        self._batch_size.observe(len(batch.addresses))
        return True

    @staticmethod
    def _phase_intervals(meta: dict) -> List[Tuple[str, float, float]]:
        """The batch's phase intervals from the pool's meta stamps.

        Thread mode stamps ``picked_at``/``gate_at``/``executed_at``;
        process mode ships only the execute *duration* back (parent and
        child monotonic clocks are not comparable) and the parent
        anchors it at the ``done_at`` receive stamp.
        """
        out: List[Tuple[str, float, float]] = []
        opened, cut = meta.get("opened_at"), meta.get("cut_at")
        if opened is not None and cut is not None:
            out.append(("coalesce", opened, cut))
        if "picked_at" in meta:                      # thread mode
            picked = meta["picked_at"]
            if cut is not None:
                out.append(("queue_wait", cut, picked))
            gate = meta.get("gate_at", picked)
            out.append(("gate", picked, gate))
            executed = meta.get("executed_at", gate)
            out.append(("execute", gate, executed))
            if "scattered_at" in meta:
                out.append(("scatter", executed, meta["scattered_at"]))
        elif "done_at" in meta:                      # process mode
            done = meta["done_at"]
            gate_from = meta.get("gate_wait_from")
            gate_at = meta.get("gate_at")
            if gate_from is not None and gate_at is not None:
                out.append(("gate", gate_from, gate_at))
            dispatched = meta.get("dispatched_at")
            exec_start = done
            if "execute_s" in meta:
                exec_start = done - meta["execute_s"]
                if dispatched is not None:
                    exec_start = max(dispatched, exec_start)
            if dispatched is not None:
                out.append(("queue_wait", dispatched, exec_start))
            out.append(("execute", exec_start, done))
            if "scattered_at" in meta:
                out.append(("scatter", done, meta["scattered_at"]))
        return out

    def _on_done(self, batch: CoalescedBatch,
                 finished: List[PendingLookup]) -> None:
        now = self.clock.now()
        meta = batch.meta
        epoch = batch.parts[0][0].epoch if batch.parts else None
        if epoch is None:
            epoch = self._epoch
        intervals = self._phase_intervals(meta)
        sampled_batch = any(h.sampled for h, *_ in batch.parts)
        batch_trace = batch_trace_id_for(meta.get("batch", 0), epoch)
        for phase, start, end in intervals:
            dur = max(0.0, end - start)
            self.slo.observe(phase, dur)
            self.registry.observe_seconds(
                "repro_server_phase", dur, server=self.name, phase=phase)
            if sampled_batch:
                self.spans.record(
                    batch_trace, phase, start, end,
                    worker=meta.get("worker", 0),
                    batch=meta.get("batch", 0), reason=batch.reason,
                    size=len(batch.addresses), epoch=epoch,
                    retries=meta.get("retries", 0))
        for handle in finished:
            # The root request span reuses the timer's exact floats
            # (same subtraction, same clamp), so the span<->metrics
            # consistency check holds bit-for-bit at sample rate 1.
            dur = max(0.0, now - handle.submitted_at)
            self.registry.observe_seconds(
                "repro_server_request", dur, server=self.name)
            self.slo.observe("request", dur)
            if handle.sampled:
                self.spans.record(
                    trace_id_for(handle.seq, handle.epoch or 0),
                    "request", handle.submitted_at, now,
                    seq=handle.seq, epoch=handle.epoch or 0,
                    addresses=len(handle.addresses),
                    batch=meta.get("batch", 0),
                    retries=meta.get("retries", 0), outcome="ok")
        if self.health is not None:
            self._feed_answer_cache(finished)

    def _note_requeue(self, worker: int, batch: CoalescedBatch) -> None:
        """Supervisor re-queued an orphaned batch: a visible retry
        marker on the batch trace (a marked seam, never a hole)."""
        if not any(h.sampled for h, *_ in batch.parts):
            return
        meta = batch.meta
        self.spans.event(
            batch_trace_id_for(meta.get("batch", 0), self._epoch),
            "retry", self.clock.now(), worker=worker,
            batch=meta.get("batch", 0),
            retries=meta.get("retries", 0))

    def _note_slo_breach(self, quantile: str, measured: float,
                         target: float) -> None:
        if self.health is not None:
            self.health.note_slo_breach()

    def _on_depth(self, depth: int) -> None:
        self._depth.set(depth, server=self.name)
        if self.health is not None:
            self.health.note_depth(depth)

    def _on_error(self, batch: Optional[CoalescedBatch],
                  exc: BaseException) -> None:
        self._worker_errors.inc(1, server=self.name)
        if batch is not None:
            now = self.clock.now()
            meta = batch.meta
            for handle, *_ in batch.parts:
                if handle.sampled:
                    self.spans.event(
                        trace_id_for(handle.seq, self._epoch), "error",
                        now, seq=handle.seq,
                        batch=meta.get("batch", 0),
                        error=type(exc).__name__)


#: Sentinel distinguishing "cached None hop" from "not cached".
_MISS = object()
