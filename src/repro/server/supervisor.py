"""Worker supervision, request retries, and graceful degradation.

The fault-tolerance layer over the serving stack (the dataplane twin
of :mod:`repro.control.runtime`'s control-plane guards):

* :class:`WorkerSupervisor` consumes the worker pools'
  ``on_worker_exit`` events.  A dead worker's orphaned batches —
  guaranteed unscattered, see
  :class:`~repro.server.coalescer.WorkerCrash` — are re-queued on the
  survivors (exactly-once delivery is preserved: re-execution at the
  current epoch is a single delivery), and the worker itself is
  restarted under a :class:`RestartPolicy`: exponential backoff with
  seeded jitter, a bounded budget per sliding window, and a permanent
  give-up once the budget is spent (a worker that keeps dying is a
  bug, not a blip).  For process pools the restart re-ships the latest
  FIB snapshot, so the replacement re-joins at the serving epoch.
* :class:`ServingHealth` is the HEALTHY → DEGRADED → BROWNOUT state
  machine.  Sliding-window signals — queue-depth fraction, worker
  restarts, deadline-miss rate — drive *upward* transitions
  immediately; *downward* transitions need ``recovery_s`` of calm
  (hysteresis, so the server does not flap on the boundary).  The
  server maps states to behaviour: DEGRADED falls the vector backend
  back to the scalar plan, BROWNOUT serves answer-cache hits and sheds
  everything else.
* :class:`RetryingClient` wraps a server with idempotent client-side
  retries: lookups are pure reads, so :class:`RequestTimeout`,
  :class:`RequestShed` and worker-crash failures are safely resubmitted
  after a jittered exponential backoff (through
  :meth:`repro.obs.Clock.sleep` — a :class:`~repro.obs.FakeClock`
  makes retry tests instantaneous).  :class:`ServerClosed` is final
  and never retried.

Everything timing-related goes through the :class:`~repro.obs.Clock`,
so the whole layer is deterministic under test; everything random
(jitter) derives from seeded :class:`random.Random` streams, mirroring
:mod:`repro.control.faults`.
"""

from __future__ import annotations

import enum
import random
import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..obs.clock import Clock, MonotonicClock, TimerHandle
from .coalescer import (
    CoalescedBatch,
    PendingLookup,
    RequestShed,
    RequestTimeout,
    ServerClosed,
    ServerError,
    WorkerCrash,
)

__all__ = [
    "ServingState",
    "SERVING_STATE_VALUES",
    "ServingHealth",
    "RestartPolicy",
    "WorkerSupervisor",
    "RetryPolicy",
    "RetryingClient",
]


class ServingState(str, enum.Enum):
    """Dataplane health levels, ordered best to worst."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    BROWNOUT = "brownout"

    def __str__(self) -> str:  # deterministic rendering in logs/sidecars
        return self.value


#: Numeric encoding for the ``repro_server_health_state`` gauge
#: (higher = worse), matching the control plane's
#: :data:`repro.control.runtime.HEALTH_GAUGE_VALUES` convention.
SERVING_STATE_VALUES = {
    ServingState.HEALTHY: 0,
    ServingState.DEGRADED: 1,
    ServingState.BROWNOUT: 2,
}

_STATE_ORDER = [ServingState.HEALTHY, ServingState.DEGRADED,
                ServingState.BROWNOUT]


class ServingHealth:
    """Sliding-window health state machine with hysteresis.

    Signals (all window-relative, window length ``window_s``):

    * **queue-depth fraction** — last observed depth over capacity;
    * **restart count** — worker deaths handled in the window;
    * **deadline-miss rate** — misses over requests in the window;
    * **SLO breaches** — sliding-window percentile violations reported
      by an :class:`~repro.obs.SloTracker` (a sustained p99 blowout
      degrades serving before deadlines start missing).

    A signal crossing its DEGRADED (or BROWNOUT) threshold raises the
    state immediately; recovery requires every signal to sit below its
    thresholds for ``recovery_s`` before the state steps *one level*
    down.  ``on_transition(old, new)`` fires outside the lock for
    metric/gauge upkeep.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        *,
        queue_capacity: int = 32,
        window_s: float = 1.0,
        recovery_s: float = 1.0,
        degraded_depth: float = 0.75,
        brownout_depth: float = 2.0,
        degraded_restarts: int = 2,
        brownout_restarts: int = 4,
        degraded_miss_rate: float = 0.05,
        brownout_miss_rate: float = 0.25,
        degraded_slo_breaches: int = 4,
        brownout_slo_breaches: int = 16,
        on_transition: Optional[Callable[[ServingState, ServingState],
                                         None]] = None,
    ):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.clock = clock if clock is not None else MonotonicClock()
        self.queue_capacity = queue_capacity
        self.window_s = window_s
        self.recovery_s = recovery_s
        self.degraded_depth = degraded_depth
        self.brownout_depth = brownout_depth
        self.degraded_restarts = degraded_restarts
        self.brownout_restarts = brownout_restarts
        self.degraded_miss_rate = degraded_miss_rate
        self.brownout_miss_rate = brownout_miss_rate
        self.degraded_slo_breaches = degraded_slo_breaches
        self.brownout_slo_breaches = brownout_slo_breaches
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = ServingState.HEALTHY
        self._depth = 0
        self._restarts: Deque[float] = deque()
        self._misses: Deque[float] = deque()
        self._requests: Deque[float] = deque()
        self._slo_breaches: Deque[float] = deque()
        self._calm_since: Optional[float] = None
        self.transitions = 0

    # -- signal feeds --------------------------------------------------
    def note_depth(self, depth: int) -> None:
        with self._lock:
            self._depth = depth
        self._evaluate()

    def note_restart(self) -> None:
        with self._lock:
            self._restarts.append(self.clock.now())
        self._evaluate()

    def note_deadline_miss(self) -> None:
        with self._lock:
            self._misses.append(self.clock.now())
        self._evaluate()

    def note_request(self) -> None:
        with self._lock:
            self._requests.append(self.clock.now())
        self._evaluate()

    def note_slo_breach(self) -> None:
        """An :class:`~repro.obs.SloTracker` quantile went over budget."""
        with self._lock:
            self._slo_breaches.append(self.clock.now())
        self._evaluate()

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> ServingState:
        return self._state

    def refresh(self) -> ServingState:
        """Re-evaluate now (lets recovery progress without traffic)."""
        self._evaluate()
        return self._state

    # -- internals -----------------------------------------------------
    def _trim(self, now: float) -> None:
        horizon = now - self.window_s
        for series in (self._restarts, self._misses, self._requests,
                       self._slo_breaches):
            while series and series[0] < horizon:
                series.popleft()

    def _target_state(self) -> ServingState:
        depth_frac = self._depth / self.queue_capacity
        restarts = len(self._restarts)
        requests = len(self._requests)
        breaches = len(self._slo_breaches)
        miss_rate = (len(self._misses) / requests) if requests else (
            1.0 if self._misses else 0.0)
        if (depth_frac >= self.brownout_depth
                or restarts >= self.brownout_restarts
                or miss_rate >= self.brownout_miss_rate
                or breaches >= self.brownout_slo_breaches):
            return ServingState.BROWNOUT
        if (depth_frac >= self.degraded_depth
                or restarts >= self.degraded_restarts
                or miss_rate >= self.degraded_miss_rate
                or breaches >= self.degraded_slo_breaches):
            return ServingState.DEGRADED
        return ServingState.HEALTHY

    def _evaluate(self) -> None:
        transition = None
        with self._lock:
            now = self.clock.now()
            self._trim(now)
            target = self._target_state()
            current = self._state
            if _STATE_ORDER.index(target) > _STATE_ORDER.index(current):
                # Worse: escalate immediately, restart the calm timer.
                self._calm_since = None
                self._state = target
                transition = (current, target)
            elif _STATE_ORDER.index(target) < _STATE_ORDER.index(current):
                # Better: step down one level only after recovery_s of
                # uninterrupted calm (hysteresis against flapping).
                if self._calm_since is None:
                    self._calm_since = now
                elif now - self._calm_since >= self.recovery_s:
                    stepped = _STATE_ORDER[_STATE_ORDER.index(current) - 1]
                    self._state = stepped
                    self._calm_since = now
                    transition = (current, stepped)
            else:
                self._calm_since = None
        if transition is not None:
            self.transitions += 1
            if self._on_transition is not None:
                self._on_transition(*transition)


class RestartPolicy:
    """Bounded, jittered exponential backoff for worker restarts.

    Each worker gets ``budget`` restarts per sliding ``window_s``; the
    n-th consecutive restart of a worker backs off
    ``base_backoff_s * 2**n`` (capped at ``max_backoff_s``) plus up to
    ``jitter`` fractional noise from a stream seeded with the worker
    index — deterministic per seed, de-synchronised across workers.
    :meth:`next_delay` returns ``None`` once the budget is spent.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        *,
        base_backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        budget: int = 5,
        window_s: float = 30.0,
        jitter: float = 0.25,
        seed: int = 0,
    ):
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.clock = clock if clock is not None else MonotonicClock()
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self.budget = budget
        self.window_s = window_s
        self.jitter = jitter
        self.seed = seed
        self._lock = threading.Lock()
        self._history: Dict[int, Deque[float]] = {}
        self._rngs: Dict[int, random.Random] = {}

    def _rng(self, worker: int) -> random.Random:
        if worker not in self._rngs:
            self._rngs[worker] = random.Random(f"restart:{self.seed}:{worker}")
        return self._rngs[worker]

    def next_delay(self, worker: int) -> Optional[float]:
        """Backoff before the next restart of ``worker``; ``None`` when
        the window budget is exhausted (give up on the worker)."""
        with self._lock:
            now = self.clock.now()
            history = self._history.setdefault(worker, deque())
            while history and history[0] < now - self.window_s:
                history.popleft()
            if len(history) >= self.budget:
                return None
            attempt = len(history)
            history.append(now)
            delay = min(self.base_backoff_s * (2 ** attempt),
                        self.max_backoff_s)
            delay *= 1.0 + self._rng(worker).random() * self.jitter
            return delay

    def restarts_in_window(self, worker: int) -> int:
        with self._lock:
            now = self.clock.now()
            history = self._history.get(worker)
            if not history:
                return 0
            while history and history[0] < now - self.window_s:
                history.popleft()
            return len(history)


class WorkerSupervisor:
    """Turns worker-exit events into re-queues and budgeted restarts.

    Wire :meth:`worker_exited` as the pool's ``on_worker_exit``
    callback (both pools call it — the thread pool with a single
    orphan-or-None, the process pool with a list; both shapes are
    accepted).  The sequence per death:

    1. count the death (``on_death``) and feed the health monitor;
    2. re-queue every orphaned batch via ``pool.requeue`` — the pools
       guarantee the batches are unscattered, and ``requeue`` fails
       them with a typed error rather than dropping them when no
       dispatch is possible;
    3. ask the :class:`RestartPolicy` for a backoff; schedule the
       restart on the clock (``on_restart`` when the pool actually
       replaced the worker), or give up permanently (``on_giveup``)
       when the budget is spent.
    """

    def __init__(
        self,
        pool,
        clock: Optional[Clock] = None,
        *,
        policy: Optional[RestartPolicy] = None,
        health: Optional[ServingHealth] = None,
        on_death: Optional[Callable[[int, BaseException], None]] = None,
        on_restart: Optional[Callable[[int, float], None]] = None,
        on_giveup: Optional[Callable[[int], None]] = None,
        on_requeue: Optional[Callable[[int, CoalescedBatch], None]] = None,
    ):
        self.pool = pool
        self.clock = clock if clock is not None else MonotonicClock()
        self.policy = policy if policy is not None else RestartPolicy(
            self.clock)
        self.health = health
        self._on_death = on_death
        self._on_restart = on_restart
        self._on_giveup = on_giveup
        self._on_requeue = on_requeue
        self._lock = threading.Lock()
        self._timers: List[TimerHandle] = []
        self._closed = False
        self.deaths = 0
        self.restarts = 0
        self.giveups = 0
        self.requeued_batches = 0
        self.simulated_backoff_s = 0.0
        self.given_up: List[int] = []

    # ------------------------------------------------------------------
    def worker_exited(self, worker: int, exc: BaseException,
                      orphans=None) -> None:
        """Pool callback: ``worker`` died with ``orphans`` in flight."""
        if isinstance(orphans, CoalescedBatch):
            orphans = [orphans]
        elif orphans is None:
            orphans = []
        with self._lock:
            self.deaths += 1
            closed = self._closed
        if self._on_death is not None:
            self._on_death(worker, exc)
        if self.health is not None:
            self.health.note_restart()
        for batch in orphans:
            if closed:
                batch.fail(ServerError("server closed before serving"))
            elif self.pool.requeue(batch):
                with self._lock:
                    self.requeued_batches += 1
                if self._on_requeue is not None:
                    # The batch is back in flight on a survivor: the
                    # server records a visible retry span, so a killed
                    # worker leaves a marked seam in the trace — never
                    # a hole.
                    self._on_requeue(worker, batch)
        if closed:
            return
        delay = self.policy.next_delay(worker)
        if delay is None:
            with self._lock:
                self.giveups += 1
                self.given_up.append(worker)
            if self._on_giveup is not None:
                self._on_giveup(worker)
            return
        with self._lock:
            self.simulated_backoff_s += delay
        timer = self.clock.call_at(self.clock.now() + delay,
                                   lambda: self._restart(worker, delay))
        with self._lock:
            if self._closed:
                timer.cancel()
            else:
                self._timers.append(timer)

    def _restart(self, worker: int, delay: float) -> None:
        with self._lock:
            if self._closed:
                return
        if self.pool.restart_worker(worker):
            with self._lock:
                self.restarts += 1
            if self._on_restart is not None:
                self._on_restart(worker, delay)

    def close(self) -> None:
        """Stop restarting (idempotent); cancels scheduled restarts."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            timers, self._timers = self._timers, []
        for timer in timers:
            timer.cancel()


class RetryPolicy:
    """Client-side retry schedule: attempts + jittered backoff."""

    #: Failures that are safe to retry — lookups are idempotent reads.
    RETRYABLE = (RequestTimeout, RequestShed, WorkerCrash)

    def __init__(
        self,
        *,
        attempts: int = 3,
        base_backoff_s: float = 0.01,
        max_backoff_s: float = 0.5,
        jitter: float = 0.5,
        seed: int = 0,
    ):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self.jitter = jitter
        self.seed = seed

    def delay(self, attempt: int, rng: random.Random) -> float:
        backoff = min(self.base_backoff_s * (2 ** attempt),
                      self.max_backoff_s)
        return backoff * (1.0 + rng.random() * self.jitter)

    def retryable(self, error: BaseException) -> bool:
        if isinstance(error, ServerClosed):
            return False  # final: the server is gone, retrying can't help
        # ``retry_safe = True`` on an error class (e.g. the chaos
        # harness's injected batch faults) marks it resubmittable.
        return (isinstance(error, self.RETRYABLE)
                or bool(getattr(error, "retry_safe", False)))


class RetryingClient:
    """Idempotent retry wrapper around a :class:`LookupServer`.

    ``lookup()`` resubmits on retryable failures (timeout, shed,
    worker crash) with the policy's backoff, sleeping through the
    clock so tests with a :class:`~repro.obs.FakeClock` never wait on
    the wall.  Retries are counted (``retries``) and surfaced through
    ``on_retry`` for the server's ``repro_server_retries_total``.
    """

    def __init__(
        self,
        server,
        *,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        seed: int = 0,
    ):
        self.server = server
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else getattr(
            server, "clock", MonotonicClock())
        self._on_retry = on_retry
        self._rng = random.Random(f"retry:{seed}")
        self.retries = 0
        self.exhausted = 0

    def lookup(self, addresses,
               timeout: Optional[float] = None) -> List[Optional[int]]:
        """Submit and wait, retrying per policy; raises the last error
        once attempts are exhausted."""
        last: Optional[BaseException] = None
        for attempt in range(self.policy.attempts):
            if attempt:
                self.retries += 1
                if self._on_retry is not None:
                    self._on_retry(attempt, last)
                self.clock.sleep(self.policy.delay(attempt - 1, self._rng))
            try:
                handle: PendingLookup = self.server.submit(addresses)
                return handle.result(timeout)
            except BaseException as exc:  # noqa: BLE001 — classify below
                if not self.policy.retryable(exc):
                    raise
                last = exc
        self.exhausted += 1
        assert last is not None
        raise last
