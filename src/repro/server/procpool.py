"""Process workers: engine replicas in forked children.

Thread workers share one interpreter; for pure-Python structures whose
lookups never release the GIL, :class:`ProcessWorkerPool` runs each
replica in its own forked process instead.  The protocol is built on
*snapshot shipping*: a worker never shares memory with the committed
structure — it holds its own rebuild from the last shipped FIB
snapshot (``(bits, length, hop)`` triples), compiles its own plan, and
serves address batches over a bounded per-worker task queue.  With
``ship_deltas`` (the default), committed batches ship only their net
*delta* — sequence-chained wire ops a worker applies to its local
mirror and absorbs via the engine's plan-patching path — and full
snapshots remain the resync mechanism for restarted or lagging
workers.

Consistency matches the thread pool exactly, enforced at the dispatch
side:

* batches are dispatched inside the :class:`~repro.server.pool.CommitGate`
  read section and tagged with the serving epoch;
* a commit (gate write side held by the server) waits for every
  in-flight batch to come back, ships the new snapshot to every
  worker, and waits for their acks — per-worker queues are FIFO, so a
  worker can never serve a post-commit batch from a pre-commit table.

Fault tolerance (new in the supervision layer):

* a **liveness monitor** thread watches the children; a worker that
  dies (chaos kill, OOM, a real crash) has its in-flight batches
  popped and handed — still unscattered — to the ``on_worker_exit``
  callback, so the supervisor can re-queue them on surviving workers
  and :meth:`restart_worker` the dead one.  A restarted worker forks
  fresh from the **latest shipped snapshot**, so it re-joins already
  in sync with the serving epoch;
* a worker that fails to **ack a snapshot** within ``ack_timeout_s``
  (a delayed/dropped ack, the hardest commit-window fault) is killed
  and reported the same way instead of stalling every commit forever
  — the restart rebuilds it from the very snapshot it failed to ack;
* :meth:`close` is idempotent and safe against concurrent
  ``submit``/``close`` calls.

Requires the ``fork`` start method (no pickling of factories; the
child inherits the code image).  On platforms without it the
constructor raises :class:`~repro.server.coalescer.ServerError` and
callers fall back to threads.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.clock import MonotonicClock
from .coalescer import CoalescedBatch, PendingLookup, ServerError
from .pool import CommitGate

__all__ = ["ProcessWorkerPool", "WorkerDeath", "fib_snapshot"]

#: ``(bits, length, hop)`` triples — the wire format of a FIB snapshot.
Snapshot = List[Tuple[int, int, int]]

#: ``(bits, length, hop-or-None)`` triples — the wire format of a
#: commit delta (``None`` withdraws the prefix); the net effect of a
#: batch, from :meth:`~repro.control.FibDelta.wire_ops`.
WireDelta = List[Tuple[int, int, Optional[int]]]

#: Exit code a chaos-killed child dies with (visible in ``exitcode``).
CHAOS_EXIT = 23

#: How often the liveness monitor polls the children, seconds.
_MONITOR_POLL_S = 0.02


class WorkerDeath(ServerError):
    """A forked worker process died with batches in flight."""


def fib_snapshot(fib) -> Snapshot:
    """Serialise a :class:`~repro.prefix.Fib` into plain triples."""
    return [(prefix.bits, prefix.length, hop) for prefix, hop in fib]


def _snapshot_fib(width: int, snapshot: Snapshot):
    from ..prefix.prefix import Prefix
    from ..prefix.trie import Fib

    fib = Fib(width)
    for bits, length, hop in snapshot:
        fib.insert(Prefix.from_bits(bits, length, width), hop)
    return fib


def _build_engine(width: int, factory, snapshot: Snapshot,
                  backend: str, cache_size: int):
    from ..engine.engine import BatchEngine

    fib = _snapshot_fib(width, snapshot)
    return BatchEngine(factory(fib), backend=backend,
                       cache_size=cache_size), fib


def _apply_wire(fib, wire: WireDelta, width: int):
    """Apply net wire ops to a local FIB mirror; the resulting
    :class:`~repro.control.FibDelta` carries the prev hops."""
    from ..control.churn import ANNOUNCE, WITHDRAW
    from ..control.delta import DeltaOp, FibDelta
    from ..prefix.prefix import Prefix

    ops = []
    for bits, length, hop in wire:
        prefix = Prefix.from_bits(bits, length, width)
        prev = fib.get(prefix)
        if hop is None:
            if prev is not None:
                fib.delete(prefix)
            ops.append(DeltaOp(WITHDRAW, prefix, prev_hop=prev))
        else:
            fib.insert(prefix, hop)
            ops.append(DeltaOp(ANNOUNCE, prefix,
                               next_hop=hop, prev_hop=prev))
    return FibDelta(ops)


def _artifact_engine(width: int, factory, path: str, resync: WireDelta,
                     backend: str, cache_size: int):
    """Child-side warm start: mmap the catalog snapshot instead of
    rebuilding from pickled triples, then land the resync delta (the
    commits shipped since the artifact was written) on the loaded base.
    Raises a typed :class:`~repro.artifact.ArtifactError` on any
    tamper/corruption — the caller converts that into the worker-death
    path rather than ever serving off a bad file."""
    from ..artifact.catalog import ArtifactCatalog
    from ..artifact.errors import ArtifactDigestMismatch
    from ..engine.engine import BatchEngine
    from ..prefix.trie import Fib

    loaded = ArtifactCatalog.load_path(path)
    if loaded.width != width:
        raise ArtifactDigestMismatch(
            f"{path!r}: artifact width {loaded.width} != pool width {width}")
    fib = loaded.fib()
    algo = loaded.algorithm(factory=factory)
    if resync:
        delta = _apply_wire(fib, resync, width)
        if algo.supports_delta:
            algo.apply_delta(delta)
        else:
            algo = factory(Fib(width, list(fib)))
    return BatchEngine(algo, backend=backend, cache_size=cache_size), fib


def _worker_main(worker_idx: int, width: int, factory, snapshot: Snapshot,
                 backend: str, cache_size: int, task_q, result_q,
                 chaos=None, batch_seq0: int = 0, commit_seq0: int = 0,
                 ship_seq0: int = 0, artifact=None) -> None:
    """Child body: rebuild from snapshots, answer address batches.

    ``chaos`` is a duck-typed dataplane fault plan
    (:class:`~repro.chaos.ChaosPlan`): ``batch_action(worker, seq)``
    may ask the child to hard-crash (``os._exit``) or raise inside a
    batch, ``ack_action(worker, seq)`` may delay or drop a
    snapshot-ack.  Sequence numbers continue across restarts
    (``batch_seq0``/``commit_seq0``), so a fault schedule is a pure
    function of the seed — replays are deterministic.

    ``ship_seq0`` anchors the commit-delta chain: each ``delta``
    message must carry exactly the next ship sequence number.  A gap
    means this worker missed a commit (it can never serve from that
    state) — it refuses to apply *and to ack*, so the parent's ack
    timeout converts it into the ordinary kill/restart path, and the
    restart re-syncs it from the latest full snapshot.

    ``artifact`` (``(path, resync_wire)``) warm-starts the child from
    an mmapped catalog snapshot instead of ``snapshot`` triples.  A
    failing artifact — corrupt, missing, tampered — is reported as
    ``artifact_fail`` and the child exits: the parent then poisons the
    artifact path so the supervisor's restart falls back to a plain
    snapshot fork, instead of crash-looping on a bad file.
    """
    from ..engine.engine import BatchEngine
    from ..prefix.trie import Fib

    if artifact is not None:
        try:
            engine, fib = _artifact_engine(width, factory, artifact[0],
                                           artifact[1], backend, cache_size)
        except Exception as exc:  # noqa: BLE001 — report, fall back
            result_q.put(("artifact_fail", worker_idx, repr(exc)))
            return
    else:
        engine, fib = _build_engine(width, factory, snapshot, backend,
                                    cache_size)
    batch_seq, commit_seq = batch_seq0, commit_seq0
    ship_seq = ship_seq0
    # The child's own clock: parent and child monotonic clocks are not
    # comparable, so only the execute *duration* is shipped back (a
    # compact span record riding alongside the answers).
    clock = MonotonicClock()

    def maybe_ack() -> None:
        """Ack a ship, honouring chaos delay/drop; returns via the
        enclosing ``continue`` either way."""
        if action is not None:
            delay_s, drop = action
            if drop:
                # Simulate a hung worker: never ack.  The parent's
                # ack timeout kills and restarts us.
                return
            if delay_s:
                clock.sleep(delay_s)
        result_q.put(("ack", worker_idx))

    while True:
        message = task_q.get()
        kind = message[0]
        if kind == "stop":
            result_q.put(("bye", worker_idx))
            return
        if kind == "snapshot":
            action = (chaos.ack_action(worker_idx, commit_seq)
                      if chaos is not None else None)
            commit_seq += 1
            engine, fib = _build_engine(width, factory, message[2],
                                        backend, cache_size)
            ship_seq = message[1]
            maybe_ack()
            continue
        if kind == "reload":
            # Blue/green: become the new catalog version wholesale.
            # Like "snapshot", a reload is a full resync — it resets
            # the ship chain rather than extending it.
            action = (chaos.ack_action(worker_idx, commit_seq)
                      if chaos is not None else None)
            commit_seq += 1
            try:
                engine, fib = _artifact_engine(width, factory, message[2],
                                               [], backend, cache_size)
            except Exception as exc:  # noqa: BLE001 — report, don't ack
                result_q.put(("artifact_fail", worker_idx, repr(exc)))
                return
            ship_seq = message[1]
            maybe_ack()
            continue
        if kind == "delta":
            action = (chaos.ack_action(worker_idx, commit_seq)
                      if chaos is not None else None)
            commit_seq += 1
            seq, wire = message[1], message[2]
            if seq != ship_seq + 1:
                # Broken chain: a commit never reached this worker.
                # Applying would serve a wrong table; never ack.
                continue
            ship_seq = seq
            delta = _apply_wire(fib, wire, width)
            try:
                algo = engine.algo
                if algo.supports_delta:
                    algo.apply_delta(delta)
                    engine.refresh(algo, delta.prefixes(), delta=delta)
                else:
                    engine = BatchEngine(factory(Fib(width, list(fib))),
                                         backend=backend,
                                         cache_size=cache_size)
            except Exception:  # noqa: BLE001 — resync, don't diverge
                # Any delta-apply failure: rebuild from the (already
                # updated) local FIB mirror — correct by construction.
                engine = BatchEngine(factory(Fib(width, list(fib))),
                                     backend=backend, cache_size=cache_size)
            maybe_ack()
            continue
        _kind, batch_id, addresses = message
        action = (chaos.batch_action(worker_idx, batch_seq)
                  if chaos is not None else None)
        batch_seq += 1
        try:
            if action == "crash":
                # A hard worker death: no cleanup, no reply — the
                # parent's liveness monitor must notice on its own.
                os._exit(CHAOS_EXIT)
            if action == "raise":
                raise ServerError(
                    f"[chaos] injected batch exception on worker "
                    f"{worker_idx} (batch seq {batch_seq - 1})")
            t0 = clock.now()
            hops = engine.lookup_batch(addresses)
            execute_s = clock.now() - t0
        except Exception as exc:  # noqa: BLE001 — report, don't die
            result_q.put(("error", batch_id, repr(exc)))
        else:
            result_q.put(("hops", batch_id, hops, execute_s))


class ProcessWorkerPool:
    """Round-robin dispatch over N forked engine replicas."""

    def __init__(
        self,
        width: int,
        factory: Callable,
        snapshot: Snapshot,
        *,
        workers: int = 2,
        queue_depth: int = 32,
        overload: str = "block",
        gate: Optional[CommitGate] = None,
        epoch_of: Optional[Callable[[], int]] = None,
        on_done: Optional[Callable[[CoalescedBatch,
                                    List[PendingLookup]], None]] = None,
        on_depth: Optional[Callable[[int], None]] = None,
        on_error: Optional[Callable[[Optional[CoalescedBatch],
                                     BaseException], None]] = None,
        on_worker_exit: Optional[Callable[[int, BaseException,
                                           List[CoalescedBatch]],
                                          None]] = None,
        backend: str = "plan",
        cache_size: int = 0,
        ack_timeout_s: float = 60.0,
        chaos=None,
        clock=None,
        ship_deltas: bool = True,
        on_ship: Optional[Callable[[str, int], None]] = None,
        artifact: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if overload not in ("block", "shed"):
            raise ValueError(f"unknown overload policy {overload!r}")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise ServerError(
                "process workers need the fork start method") from exc
        self.gate = gate if gate is not None else CommitGate()
        self.overload = overload
        self._epoch_of = epoch_of or (lambda: 0)
        self._on_done = on_done
        self._on_depth = on_depth
        self._on_error = on_error
        self._on_worker_exit = on_worker_exit
        self._ack_timeout_s = ack_timeout_s
        self._chaos = chaos
        #: Optional clock for parent-side span phase marks.
        self._clock = clock
        self._width = width
        self._factory = factory
        self._backend = backend
        self._cache_size = cache_size
        self._queue_depth = queue_depth
        self._snapshot: Snapshot = snapshot
        #: Whether commits ship per-batch deltas (with full-snapshot
        #: resync for restarted workers) instead of whole snapshots.
        self.ship_deltas = ship_deltas
        #: ``on_ship(kind, nbytes)`` — observer for shipped payload
        #: sizes (``kind`` is ``"snapshot"`` or ``"delta"``).
        self._on_ship = on_ship
        #: Parent-side FIB mirror: kept current across shipped deltas
        #: so a restarted worker can always fork from a full, fresh
        #: snapshot even when commits only shipped deltas.
        self._table: Dict[Tuple[int, int], int] = {
            (bits, length): hop for bits, length, hop in snapshot}
        self._snapshot_dirty = False
        #: Catalog snapshot children warm-start from (mmap) instead of
        #: unpickling ``snapshot``; its FIB must equal ``snapshot`` at
        #: construction.  Forks after commits carry a resync delta —
        #: the diff from the artifact's base to the current mirror.
        #: Poisoned (set to None) if a child ever fails to load it.
        self._artifact_path = artifact
        self._artifact_base: Dict[Tuple[int, int], int] = (
            dict(self._table) if artifact else {})
        #: Ship-sequence chain: every shipped snapshot or delta bumps
        #: it; children verify the chain per delta message.
        self._ship_seq = 0
        self._n = workers
        self._task_qs: List = [self._ctx.Queue(queue_depth)
                               for _ in range(workers)]
        self._result_q = self._ctx.Queue()
        self._procs: List[Optional[multiprocessing.Process]] = [
            None] * workers
        # Per-worker (batch, commit) sequence counters, carried across
        # restarts so chaos schedules stay a pure function of the seed.
        self._batch_seqs = [0] * workers
        self._commit_seqs = [0] * workers
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._ids = itertools.count()
        self._rr = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        #: batch_id -> (batch, epoch, worker)
        self._inflight: Dict[int, Tuple[CoalescedBatch, int, int]] = {}
        self._acked: set = set()
        self._started = False
        self._closed = False
        self._lifecycle = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._n

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._inflight)

    def alive(self) -> bool:
        return any(p is not None and p.is_alive() for p in self._procs)

    def alive_workers(self) -> int:
        return sum(1 for p in self._procs if p is not None and p.is_alive())

    def worker_alive(self, worker: int) -> bool:
        proc = self._procs[worker]
        return proc is not None and proc.is_alive()

    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lifecycle:
            if self._started:
                return
            self._started = True
            for i in range(self._n):
                self._spawn(i)
            self._collector = threading.Thread(
                target=self._collect, name="repro-serve-collector",
                daemon=True)
            self._collector.start()
            self._monitor = threading.Thread(
                target=self._watch, name="repro-serve-monitor", daemon=True)
            self._monitor.start()

    def _current_snapshot(self) -> Snapshot:
        """The latest full snapshot, re-materialised from the parent
        mirror when deltas have been shipped since the last one (caller
        holds ``_lifecycle``)."""
        if self._snapshot_dirty:
            self._snapshot = sorted(
                (bits, length, hop)
                for (bits, length), hop in self._table.items())
            self._snapshot_dirty = False
        return self._snapshot

    def _artifact_resync(self) -> WireDelta:
        """Net wire ops from the artifact's base table to the current
        mirror (caller holds ``_lifecycle``): what a warm-started fork
        must land on the loaded base to reach the serving epoch."""
        wire: WireDelta = []
        for key in self._artifact_base:
            if key not in self._table:
                wire.append((key[0], key[1], None))
        for key, hop in self._table.items():
            if self._artifact_base.get(key) != hop:
                wire.append((key[0], key[1], hop))
        wire.sort(key=lambda triple: (triple[0], triple[1]))
        return wire

    def _spawn(self, worker: int) -> None:
        """Fork worker ``worker`` from the latest snapshot (caller
        holds ``_lifecycle`` or runs before any concurrency).  The
        fresh fork is in sync by construction: it carries the current
        ship sequence and the table every shipped delta summed to.
        With an artifact attached, the child mmaps the catalog
        snapshot and applies the resync delta instead of unpickling
        the whole table."""
        if self._artifact_path is not None:
            snapshot: Snapshot = []
            artifact = (self._artifact_path, self._artifact_resync())
        else:
            snapshot = self._current_snapshot()
            artifact = None
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker, self._width, self._factory, snapshot,
                  self._backend, self._cache_size,
                  self._task_qs[worker], self._result_q,
                  self._chaos, self._batch_seqs[worker],
                  self._commit_seqs[worker], self._ship_seq, artifact),
            name=f"repro-serve-p{worker}", daemon=True)
        self._procs[worker] = proc
        proc.start()

    def restart_worker(self, worker: int) -> bool:
        """Fork a replacement for a dead worker from the latest
        shipped snapshot (epoch re-sync is free: the snapshot *is* the
        serving epoch's table).  ``False`` if it is still alive or the
        pool is closed."""
        with self._lifecycle:
            if self._closed or not self._started:
                return False
            if not 0 <= worker < self._n:
                return False
            if self.worker_alive(worker):
                return False
            # A fresh task queue: messages queued to the dead child
            # (including its stop sentinel, if any) must not leak into
            # the replacement.
            self._task_qs[worker] = self._ctx.Queue(self._queue_depth)
            self._spawn(worker)
            return True

    def kill_worker(self, worker: int) -> bool:
        """Hard-kill a child (chaos/benchmarks): SIGTERM, no cleanup.

        The liveness monitor notices the death, reports the orphaned
        batches, and the supervisor restarts the worker — exactly the
        path a real crash takes.
        """
        proc = self._procs[worker]
        if proc is None or not proc.is_alive():
            return False
        proc.terminate()
        return True

    # ------------------------------------------------------------------
    def submit(self, batch: CoalescedBatch) -> bool:
        """Dispatch a batch to the next live worker (inside the gate)."""
        if not self._started or self._closed:
            raise ServerError("worker pool is not running")
        clock = self._clock
        meta = batch.meta
        if clock is not None:
            meta["gate_wait_from"] = clock.now()
        with self.gate.read():
            epoch = self._epoch_of()
            if clock is not None:
                meta["gate_at"] = clock.now()
            with self._lock:
                worker = self._next_live_worker()
                if worker is None:
                    # Total outage: every child is down (restarts
                    # pending).  Refuse rather than queue into a void.
                    return False
                batch_id = next(self._ids)
                self._inflight[batch_id] = (batch, epoch, worker)
            if clock is not None:
                meta["worker"] = worker
            message = ("batch", batch_id, batch.addresses)
            task_q = self._task_qs[worker]
            if self.overload == "shed":
                try:
                    task_q.put_nowait(message)
                except queue_mod.Full:
                    with self._lock:
                        self._inflight.pop(batch_id, None)
                        self._idle.notify_all()
                    return False
            else:
                task_q.put(message)
            if clock is not None:
                meta["dispatched_at"] = clock.now()
            with self._lock:
                self._batch_seqs[worker] += 1
        self._note_depth()
        return True

    def _next_live_worker(self) -> Optional[int]:
        """Round-robin over live workers (caller holds ``_lock``)."""
        for _ in range(self._n):
            worker = self._rr
            self._rr = (self._rr + 1) % self._n
            if self.worker_alive(worker):
                return worker
        return None

    def requeue(self, batch: CoalescedBatch) -> bool:
        """Re-dispatch an orphaned batch from a dead worker.

        Goes through the normal gated dispatch (so it executes under —
        and is tagged with — the *current* epoch: the original worker
        never scattered anything, so a single delivery at the newer
        epoch is still exactly-once and consistent).  Fails the batch
        instead of dropping it when no dispatch is possible.
        """
        batch.meta["retries"] = batch.meta.get("retries", 0) + 1
        try:
            if not self.submit(batch):
                batch.fail(ServerError(
                    "worker died and no live worker could take its batch"))
                return False
        except ServerError as exc:
            batch.fail(exc)
            return False
        return True

    # ------------------------------------------------------------------
    def on_commit(self, outcome: str, algo, touched,
                  snapshot: Optional[Snapshot] = None,
                  delta=None) -> None:
        """Ship the commit to every worker and wait for their acks.
        Must run with the gate's write side held, so no new batch can
        be dispatched while the fleet re-synchronises.

        With ``ship_deltas`` and a committed
        :class:`~repro.control.FibDelta`, only the batch's net wire
        ops ship — tagged with the next ship-sequence number so a
        worker that ever misses a commit refuses the broken chain (and
        its ack), falling into the kill/restart path below.  Restarts,
        and commits without a delta (rebuilds), ship a full snapshot,
        re-materialised from the parent's own FIB mirror.

        A worker that does not ack within ``ack_timeout_s`` (hung, or
        a chaos-dropped ack) is killed: the liveness monitor reports
        it and the supervisor's restart rebuilds it from the latest
        snapshot, so the fleet still converges instead of stalling
        every future commit.
        """
        if snapshot is None and delta is None:
            raise ServerError("process workers need a FIB snapshot or "
                              "commit delta to refresh from (serve over "
                              "a ManagedFib)")
        self._wait_idle()
        # _lifecycle serialises the snapshot swap against
        # restart_worker: a restart either finishes its fork first
        # (the worker is alive here, lands in ``live`` and is shipped
        # the new snapshot) or starts after the swap (and forks from
        # it) — a replacement can never come up serving a stale table
        # at the new epoch.
        with self._lifecycle:
            self._ship_seq += 1
            if delta is not None and self.ship_deltas:
                wire = delta.wire_ops()
                for bits, length, hop in wire:
                    if hop is None:
                        self._table.pop((bits, length), None)
                    else:
                        self._table[(bits, length)] = hop
                self._snapshot_dirty = True
                message = ("delta", self._ship_seq, wire)
            else:
                if snapshot is not None:
                    self._snapshot = snapshot
                    self._table = {(bits, length): hop
                                   for bits, length, hop in snapshot}
                    self._snapshot_dirty = False
                message = ("snapshot", self._ship_seq,
                           self._current_snapshot())
            if self._on_ship is not None:
                self._on_ship(message[0], len(pickle.dumps(message)))
            with self._lock:
                self._acked = set()
                live = [i for i in range(self._n) if self.worker_alive(i)]
                for worker in live:
                    self._commit_seqs[worker] += 1
            for worker in live:
                self._task_qs[worker].put(message)
        with self._idle:
            self._idle.wait_for(
                lambda: self._acked >= set(
                    w for w in live if self.worker_alive(w)),
                timeout=self._ack_timeout_s)
            laggards = [w for w in live
                        if w not in self._acked and self.worker_alive(w)]
        for worker in laggards:
            # Killing it converts "hung on ack" into the ordinary
            # worker-death path: monitor -> on_worker_exit -> restart
            # from self._snapshot (the snapshot it failed to ack).
            self.kill_worker(worker)

    def reload_artifact(self, path: str, snapshot: Snapshot) -> None:
        """Blue/green flip: every worker becomes the catalog snapshot
        at ``path`` (whose FIB is ``snapshot``).  Must run with the
        gate's write side held, exactly like :meth:`on_commit`.

        The parent swaps its artifact reference, FIB mirror and full
        snapshot *before* shipping the reload, so a worker that dies
        mid-reload is restarted from the new catalog version — there
        is no window in which a restart forks the old table.  Workers
        that hang on the reload ack are killed into that same path.
        """
        self._wait_idle()
        with self._lifecycle:
            self._ship_seq += 1
            self._artifact_path = path
            self._artifact_base = {(bits, length): hop
                                   for bits, length, hop in snapshot}
            self._table = dict(self._artifact_base)
            self._snapshot = sorted(snapshot)
            self._snapshot_dirty = False
            message = ("reload", self._ship_seq, path)
            if self._on_ship is not None:
                self._on_ship("reload", len(pickle.dumps(message)))
            with self._lock:
                self._acked = set()
                live = [i for i in range(self._n) if self.worker_alive(i)]
                for worker in live:
                    self._commit_seqs[worker] += 1
            for worker in live:
                self._task_qs[worker].put(message)
        with self._idle:
            self._idle.wait_for(
                lambda: self._acked >= set(
                    w for w in live if self.worker_alive(w)),
                timeout=self._ack_timeout_s)
            laggards = [w for w in live
                        if w not in self._acked and self.worker_alive(w)]
        for worker in laggards:
            self.kill_worker(worker)

    def _wait_idle(self) -> None:
        with self._idle:
            if not self._idle.wait_for(lambda: not self._inflight,
                                       timeout=self._ack_timeout_s):
                raise ServerError("in-flight batches failed to drain")

    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        with self._lifecycle:
            if not self._started or self._closed:
                self._closed = True
                return
            self._closed = True
        if drain:
            try:
                self._wait_idle()
            except ServerError:  # pragma: no cover - crashed mid-drain
                pass
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
        for worker in range(self._n):
            if self.worker_alive(worker):
                self._task_qs[worker].put(("stop",))
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._result_q.put(("collector-stop",))
        if self._collector is not None:
            self._collector.join(timeout=10)
        with self._lock:
            leftovers = [batch for batch, _, _ in self._inflight.values()]
            self._inflight.clear()
        error = ServerError("server closed before serving")
        for batch in leftovers:
            batch.fail(error)
        self._note_depth()

    # ------------------------------------------------------------------
    def _note_depth(self) -> None:
        if self._on_depth is not None:
            self._on_depth(self.queue_depth())

    def _watch(self) -> None:
        """Liveness monitor: turn silent child deaths into supervised
        worker-exit events with their orphaned batches attached."""
        while not self._monitor_stop.wait(_MONITOR_POLL_S):
            for worker in range(self._n):
                proc = self._procs[worker]
                if proc is None or proc.is_alive():
                    continue
                if self._closed:
                    # Closing: no restarts, but the dead worker's
                    # in-flight batches must still be swept and failed
                    # or close()'s drain waits out its whole timeout
                    # on entries nobody will ever complete.
                    self._fail_worker_inflight(worker)
                    continue
                exitcode = proc.exitcode
                # Mark handled before callbacks: restart_worker will
                # install a fresh process (or leave it down if the
                # budget is spent).
                self._procs[worker] = None
                with self._lock:
                    orphan_ids = [bid for bid, (_b, _e, w)
                                  in self._inflight.items() if w == worker]
                    orphans = [self._inflight.pop(bid)[0]
                               for bid in orphan_ids]
                    if not self._inflight:
                        self._idle.notify_all()
                    self._acked.add(worker)  # never block a commit on it
                    self._idle.notify_all()
                exc = WorkerDeath(
                    f"worker {worker} died (exit code {exitcode}) with "
                    f"{len(orphans)} batch(es) in flight")
                # Hand the death to a short-lived reaper thread: the
                # supervisor's requeue re-enters submit(), which blocks
                # on gate.read() while a commit holds the write side —
                # if that happened *on this thread*, the monitor would
                # stop sweeping and a second dead worker's in-flight
                # batches would never drain, wedging the commit's
                # _wait_idle until its timeout.
                threading.Thread(
                    target=self._report_exit, args=(worker, exc, orphans),
                    name=f"repro-serve-reaper-{worker}", daemon=True,
                ).start()

    def _fail_worker_inflight(self, worker: int) -> None:
        """Sweep a dead worker's in-flight batches during close: mark
        the slot handled, fail the batches (no requeue, no restart)."""
        self._procs[worker] = None
        with self._lock:
            orphan_ids = [bid for bid, (_b, _e, w)
                          in self._inflight.items() if w == worker]
            orphans = [self._inflight.pop(bid)[0] for bid in orphan_ids]
            self._acked.add(worker)
            self._idle.notify_all()
        error = ServerError("server closed before serving")
        for batch in orphans:
            batch.fail(error)

    def _report_exit(self, worker: int, exc: BaseException,
                     orphans: List[CoalescedBatch]) -> None:
        """Deliver a worker death to the callbacks (off-monitor)."""
        if self._on_error is not None:
            self._on_error(orphans[0] if orphans else None, exc)
        if self._on_worker_exit is not None:
            self._on_worker_exit(worker, exc, orphans)
        else:
            for batch in orphans:
                batch.fail(exc)
        self._note_depth()

    def _collect(self) -> None:
        """Parent-side result loop: scatter answers, count acks."""
        while True:
            message = self._result_q.get()
            kind = message[0]
            if kind == "collector-stop":
                return
            if kind == "bye":
                continue
            if kind == "ack":
                with self._idle:
                    self._acked.add(message[1])
                    self._idle.notify_all()
                continue
            if kind == "artifact_fail":
                # A child could not materialise the catalog snapshot
                # (corrupt file, digest mismatch, ...).  Poison the
                # artifact so the supervisor's restart falls back to a
                # plain snapshot fork instead of crash-looping on the
                # same broken file; the dead child itself is handled
                # by the ordinary monitor -> restart path.
                self._artifact_path = None
                if self._on_error is not None:
                    self._on_error(None, ServerError(
                        f"worker {message[1]} artifact load failed: "
                        f"{message[2]}"))
                continue
            batch_id, payload = message[1], message[2]
            with self._lock:
                entry = self._inflight.pop(batch_id, None)
                if not self._inflight:
                    self._idle.notify_all()
            if entry is None:  # pragma: no cover - late result after close
                continue
            batch, epoch, _worker = entry
            if kind == "error":
                batch.fail(ServerError(f"worker failed: {payload}"))
                if self._on_error is not None:
                    self._on_error(batch, ServerError(payload))
            else:
                clock = self._clock
                if clock is not None:
                    batch.meta["done_at"] = clock.now()
                    if len(message) > 3:
                        # The child's compact span record: its own
                        # execute duration, shipped with the answers.
                        batch.meta["execute_s"] = message[3]
                finished = batch.complete(payload, epoch)
                if clock is not None:
                    batch.meta["scattered_at"] = clock.now()
                if self._on_done is not None:
                    self._on_done(batch, finished)
            self._note_depth()
