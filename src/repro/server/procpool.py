"""Process workers: engine replicas in forked children.

Thread workers share one interpreter; for pure-Python structures whose
lookups never release the GIL, :class:`ProcessWorkerPool` runs each
replica in its own forked process instead.  The protocol is built on
*snapshot shipping*: a worker never shares memory with the committed
structure — it holds its own rebuild from the last shipped FIB
snapshot (``(bits, length, hop)`` triples), compiles its own plan, and
serves address batches over a bounded per-worker task queue.

Consistency matches the thread pool exactly, enforced at the dispatch
side:

* batches are dispatched inside the :class:`~repro.server.pool.CommitGate`
  read section and tagged with the serving epoch;
* a commit (gate write side held by the server) waits for every
  in-flight batch to come back, ships the new snapshot to every
  worker, and waits for their acks — per-worker queues are FIFO, so a
  worker can never serve a post-commit batch from a pre-commit table.

Requires the ``fork`` start method (no pickling of factories; the
child inherits the code image).  On platforms without it the
constructor raises :class:`~repro.server.coalescer.ServerError` and
callers fall back to threads.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_mod
import threading
from typing import Callable, Dict, List, Optional, Tuple

from .coalescer import CoalescedBatch, PendingLookup, ServerError
from .pool import CommitGate

__all__ = ["ProcessWorkerPool", "fib_snapshot"]

#: ``(bits, length, hop)`` triples — the wire format of a FIB snapshot.
Snapshot = List[Tuple[int, int, int]]


def fib_snapshot(fib) -> Snapshot:
    """Serialise a :class:`~repro.prefix.Fib` into plain triples."""
    return [(prefix.bits, prefix.length, hop) for prefix, hop in fib]


def _build_engine(width: int, factory, snapshot: Snapshot,
                  backend: str, cache_size: int):
    from ..engine.engine import BatchEngine
    from ..prefix.prefix import Prefix
    from ..prefix.trie import Fib

    fib = Fib(width)
    for bits, length, hop in snapshot:
        fib.insert(Prefix.from_bits(bits, length, width), hop)
    return BatchEngine(factory(fib), backend=backend, cache_size=cache_size)


def _worker_main(worker_idx: int, width: int, factory, snapshot: Snapshot,
                 backend: str, cache_size: int, task_q, result_q) -> None:
    """Child body: rebuild from snapshots, answer address batches."""
    engine = _build_engine(width, factory, snapshot, backend, cache_size)
    while True:
        message = task_q.get()
        kind = message[0]
        if kind == "stop":
            result_q.put(("bye", worker_idx))
            return
        if kind == "snapshot":
            engine = _build_engine(width, factory, message[1],
                                   backend, cache_size)
            result_q.put(("ack", worker_idx))
            continue
        _kind, batch_id, addresses = message
        try:
            hops = engine.lookup_batch(addresses)
        except Exception as exc:  # noqa: BLE001 — report, don't die
            result_q.put(("error", batch_id, repr(exc)))
        else:
            result_q.put(("hops", batch_id, hops))


class ProcessWorkerPool:
    """Round-robin dispatch over N forked engine replicas."""

    def __init__(
        self,
        width: int,
        factory: Callable,
        snapshot: Snapshot,
        *,
        workers: int = 2,
        queue_depth: int = 32,
        overload: str = "block",
        gate: Optional[CommitGate] = None,
        epoch_of: Optional[Callable[[], int]] = None,
        on_done: Optional[Callable[[CoalescedBatch,
                                    List[PendingLookup]], None]] = None,
        on_depth: Optional[Callable[[int], None]] = None,
        on_error: Optional[Callable[[CoalescedBatch,
                                     BaseException], None]] = None,
        backend: str = "plan",
        cache_size: int = 0,
        ack_timeout_s: float = 60.0,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if overload not in ("block", "shed"):
            raise ValueError(f"unknown overload policy {overload!r}")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise ServerError(
                "process workers need the fork start method") from exc
        self.gate = gate if gate is not None else CommitGate()
        self.overload = overload
        self._epoch_of = epoch_of or (lambda: 0)
        self._on_done = on_done
        self._on_depth = on_depth
        self._on_error = on_error
        self._ack_timeout_s = ack_timeout_s
        self._task_qs = [self._ctx.Queue(queue_depth)
                         for _ in range(workers)]
        self._result_q = self._ctx.Queue()
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(i, width, factory, snapshot, backend, cache_size,
                      self._task_qs[i], self._result_q),
                name=f"repro-serve-p{i}", daemon=True)
            for i in range(workers)
        ]
        self._collector: Optional[threading.Thread] = None
        self._ids = itertools.count()
        self._rr = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight: Dict[int, Tuple[CoalescedBatch, int]] = {}
        self._acks = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._procs)

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._inflight)

    def alive(self) -> bool:
        return any(p.is_alive() for p in self._procs)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for proc in self._procs:
            proc.start()
        self._collector = threading.Thread(
            target=self._collect, name="repro-serve-collector", daemon=True)
        self._collector.start()

    def submit(self, batch: CoalescedBatch) -> bool:
        """Dispatch a batch to the next worker (inside the gate)."""
        if not self._started or self._closed:
            raise ServerError("worker pool is not running")
        with self.gate.read():
            epoch = self._epoch_of()
            with self._lock:
                batch_id = next(self._ids)
                worker = self._rr
                self._rr = (self._rr + 1) % len(self._procs)
                self._inflight[batch_id] = (batch, epoch)
            message = ("batch", batch_id, batch.addresses)
            if self.overload == "shed":
                try:
                    self._task_qs[worker].put_nowait(message)
                except queue_mod.Full:
                    with self._lock:
                        del self._inflight[batch_id]
                    return False
            else:
                self._task_qs[worker].put(message)
        self._note_depth()
        return True

    # ------------------------------------------------------------------
    def on_commit(self, outcome: str, algo, touched,
                  snapshot: Optional[Snapshot] = None) -> None:
        """Ship the post-commit snapshot to every worker and wait for
        their acks.  Must run with the gate's write side held, so no
        new batch can be dispatched while the fleet re-synchronises.
        """
        if snapshot is None:
            raise ServerError("process workers need a FIB snapshot to "
                              "refresh from (serve over a ManagedFib)")
        self._wait_idle()
        with self._lock:
            self._acks = 0
        for task_q in self._task_qs:
            task_q.put(("snapshot", snapshot))
        with self._idle:
            if not self._idle.wait_for(
                    lambda: self._acks >= len(self._procs),
                    timeout=self._ack_timeout_s):
                raise ServerError("process workers failed to ack the "
                                  "commit snapshot")

    def _wait_idle(self) -> None:
        with self._idle:
            if not self._idle.wait_for(lambda: not self._inflight,
                                       timeout=self._ack_timeout_s):
                raise ServerError("in-flight batches failed to drain")

    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        if not self._started or self._closed:
            self._closed = True
            return
        if drain:
            self._wait_idle()
        self._closed = True
        for task_q in self._task_qs:
            task_q.put(("stop",))
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - crashed worker
                proc.terminate()
        self._result_q.put(("collector-stop",))
        if self._collector is not None:
            self._collector.join(timeout=10)
        with self._lock:
            leftovers = [batch for batch, _ in self._inflight.values()]
            self._inflight.clear()
        error = ServerError("server closed before serving")
        for batch in leftovers:
            batch.fail(error)
        self._note_depth()

    # ------------------------------------------------------------------
    def _note_depth(self) -> None:
        if self._on_depth is not None:
            self._on_depth(self.queue_depth())

    def _collect(self) -> None:
        """Parent-side result loop: scatter answers, count acks."""
        while True:
            message = self._result_q.get()
            kind = message[0]
            if kind == "collector-stop":
                return
            if kind == "bye":
                continue
            if kind == "ack":
                with self._idle:
                    self._acks += 1
                    self._idle.notify_all()
                continue
            _kind, batch_id, payload = message
            with self._lock:
                entry = self._inflight.pop(batch_id, None)
                if not self._inflight:
                    self._idle.notify_all()
            if entry is None:  # pragma: no cover - late result after close
                continue
            batch, epoch = entry
            if kind == "error":
                batch.fail(ServerError(f"worker failed: {payload}"))
                if self._on_error is not None:
                    self._on_error(batch, ServerError(payload))
            else:
                finished = batch.complete(payload, epoch)
                if self._on_done is not None:
                    self._on_done(batch, finished)
            self._note_depth()
