"""Concurrent serving frontend over the batch engines.

Layers, bottom-up:

* :mod:`repro.server.coalescer` — FIFO request coalescing with a
  size-or-deadline flush trigger and future-like per-request handles;
* :mod:`repro.server.pool` — the :class:`CommitGate` readers/writer
  gate plus :class:`ThreadWorkerPool`, N engine replicas over one
  bounded queue with block/shed backpressure;
* :mod:`repro.server.procpool` — the same contract over forked
  processes with FIB-snapshot shipping at each commit;
* :mod:`repro.server.supervisor` — worker supervision (budgeted
  restarts, orphan re-queue), the HEALTHY/DEGRADED/BROWNOUT health
  state machine, and idempotent client-side retries;
* :mod:`repro.server.server` — :class:`LookupServer`, the facade that
  wires the pieces to :class:`~repro.control.ManagedFib` commits and
  :class:`~repro.obs.MetricsRegistry` telemetry.

See ``docs/serving.md`` for the architecture and consistency model,
``docs/robustness.md`` for the dataplane fault model, and
:mod:`repro.chaos` for the deterministic fault-injection harness.
"""

from .coalescer import (
    CoalescedBatch,
    PendingLookup,
    RequestCoalescer,
    RequestShed,
    RequestTimeout,
    ServerClosed,
    ServerError,
    WorkerCrash,
)
from .pool import CommitGate, ThreadWorkerPool
from .procpool import ProcessWorkerPool, WorkerDeath, fib_snapshot
from .server import SERVER_MODES, SERVER_OVERLOAD_POLICIES, LookupServer
from .supervisor import (
    RestartPolicy,
    RetryingClient,
    RetryPolicy,
    ServingHealth,
    ServingState,
    WorkerSupervisor,
)

__all__ = [
    "CoalescedBatch",
    "CommitGate",
    "LookupServer",
    "PendingLookup",
    "ProcessWorkerPool",
    "RequestCoalescer",
    "RequestShed",
    "RequestTimeout",
    "RestartPolicy",
    "RetryPolicy",
    "RetryingClient",
    "SERVER_MODES",
    "SERVER_OVERLOAD_POLICIES",
    "ServerClosed",
    "ServerError",
    "ServingHealth",
    "ServingState",
    "ThreadWorkerPool",
    "WorkerCrash",
    "WorkerDeath",
    "WorkerSupervisor",
    "fib_snapshot",
]
