"""Reproduction of "Scaling IP Lookup to Large Databases using the CRAM Lens".

NSDI 2025 (Chang, Dogga, Fingerhut, Rios, Varghese).  The package
provides:

* :mod:`repro.core` — the CRAM machine model, metrics, and the eight
  optimization idioms;
* :mod:`repro.prefix` — the IP prefix substrate (tries, expansion,
  ranges, distributions);
* :mod:`repro.memory` — TCAM/SRAM/d-left behavioural simulators;
* :mod:`repro.chip` — the ideal-RMT and Tofino-2 resource mappers;
* :mod:`repro.datasets` — synthetic BGP databases and workloads;
* :mod:`repro.algorithms` — RESAIL, BSIC, MASHUP, and the baselines
  (SAIL, DXR, multibit tries, HI-BST, logical TCAM);
* :mod:`repro.analysis` — the harness regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.obs` — telemetry: metrics registry, per-lookup CRAM
  step tracing, and memory-access accounting.

Quick taste::

    from repro.datasets import synthesize_as65000
    from repro.algorithms import Resail
    from repro.chip import map_to_tofino2

    fib = synthesize_as65000(scale=0.01)
    resail = Resail(fib, min_bmp=13)
    assert resail.lookup(0x0A000001) == fib.lookup(0x0A000001)
    print(resail.cram_metrics().describe())
    print(map_to_tofino2(resail.layout()).describe())
"""

__version__ = "1.0.0"

from . import (
    algorithms,
    analysis,
    chip,
    classify,
    core,
    datasets,
    measure,
    memory,
    obs,
    prefix,
)

__all__ = [
    "algorithms",
    "analysis",
    "chip",
    "classify",
    "core",
    "datasets",
    "measure",
    "memory",
    "obs",
    "prefix",
    "__version__",
]
