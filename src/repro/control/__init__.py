"""The control plane around the lookup structures.

The paper's algorithms answer "how do we look up"; this package
answers "how do we keep the structure correct while the table churns":
a managed runtime with transactional update batches, rebuild fallback,
capacity guards, and differential checking, plus the seeded churn and
fault generators the benchmarks and robustness tests drive it with.
"""

from .check import (
    DifferentialChecker,
    Violation,
    make_failure_predicate,
    replay,
    shrink_trace,
)
from .churn import (
    ANNOUNCE,
    CALM,
    DEFAULT,
    PROFILES,
    STORMY,
    WITHDRAW,
    ChurnGenerator,
    ChurnProfile,
    UpdateOp,
    churn_trace,
)
from .delta import DeltaOp, FibDelta
from .events import Event, EventLog
from .faults import (
    ALL_FAULTS,
    BucketOverflowFault,
    DuplicateWithdrawFault,
    FaultInjector,
    FaultPlan,
    GhostWithdrawFault,
    MalformedPrefixFault,
    MidUpdateExceptionFault,
    SimulatedFault,
)
from .runtime import (
    HEALTH_GAUGE_VALUES,
    CapacityGuard,
    Health,
    ManagedFib,
    RuntimePolicy,
)

__all__ = [
    "ANNOUNCE",
    "WITHDRAW",
    "CALM",
    "DEFAULT",
    "STORMY",
    "PROFILES",
    "ChurnGenerator",
    "ChurnProfile",
    "UpdateOp",
    "churn_trace",
    "DeltaOp",
    "FibDelta",
    "Event",
    "EventLog",
    "ALL_FAULTS",
    "FaultInjector",
    "FaultPlan",
    "SimulatedFault",
    "MalformedPrefixFault",
    "GhostWithdrawFault",
    "DuplicateWithdrawFault",
    "MidUpdateExceptionFault",
    "BucketOverflowFault",
    "DifferentialChecker",
    "Violation",
    "replay",
    "make_failure_predicate",
    "shrink_trace",
    "CapacityGuard",
    "HEALTH_GAUGE_VALUES",
    "Health",
    "ManagedFib",
    "RuntimePolicy",
]
