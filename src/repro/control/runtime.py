"""The managed FIB runtime: transactional updates over any algorithm.

:class:`ManagedFib` wraps a :class:`~repro.algorithms.base.LookupAlgorithm`
in the control loop a production switch would run around it:

* **Transactional batches.**  Each update batch lands on a snapshot
  work copy; the committed structure and the oracle FIB only advance
  when the whole batch succeeds.  A mid-batch failure rolls everything
  back (oracle via an undo journal, structure by discarding the copy).
* **Rebuild fallback.**  Algorithms whose update discipline is
  ``rebuild`` or ``unsupported`` (Appendix A.3) are rebuilt from the
  oracle once per batch — a *planned* rebuild that does not degrade
  health.  In-place algorithms that hit a persistent fault fall back
  to a *recovery* rebuild, bounded by the policy's rebuild budget.
* **Retry with backoff.**  Transient faults retry up to
  ``max_retries`` times with exponential (simulated, never slept)
  backoff.
* **Capacity guards.**  After each landed batch the Tofino-2 mapping
  is re-derived via :func:`~repro.chip.tofino2.tofino2_fit_report`; a
  hard trip (TCAM blocks / SRAM pages / stages over budget) rolls the
  batch back, a soft trip (d-left overflow cells in use) forces a
  recovery rebuild.  The runtime is never HEALTHY while a guard trips.
* **Differential checking.**  Every landed batch is probed against the
  oracle; a divergence triggers one recovery rebuild, and if it
  persists the runtime goes FAILED and shrinks the accumulated trace
  to a minimal reproduction.

Accounting invariant, asserted by the tests: every batch ends in
exactly one of *applied*, *rebuilt*, or *rolled back*, and every
injected fault is either *absorbed* at validation or *recovered* by
retry/rollback/rebuild.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..algorithms.base import (
    UPDATE_IN_PLACE,
    LookupAlgorithm,
    UpdateUnsupported,
)
from ..chip.tofino2 import tofino2_fit_report
from ..obs import MetricsRegistry
from ..prefix.prefix import Prefix, PrefixError
from ..prefix.trie import Fib
from .check import (
    DifferentialChecker,
    Violation,
    make_failure_predicate,
    shrink_trace,
)
from .churn import ANNOUNCE, WITHDRAW, UpdateOp
from .delta import DeltaOp, FibDelta
from .events import EventLog
from .faults import FaultPlan, SimulatedFault


class Health(str, enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    REBUILDING = "rebuilding"
    FAILED = "failed"

    def __str__(self) -> str:  # deterministic rendering in event logs
        return self.value


#: Numeric encoding of :class:`Health` for the ``repro_health_state``
#: gauge (higher = worse), so dashboards can alert on thresholds.
HEALTH_GAUGE_VALUES = {
    Health.HEALTHY: 0,
    Health.DEGRADED: 1,
    Health.REBUILDING: 2,
    Health.FAILED: 3,
}

#: Deterministic batch-size histogram bounds (update ops per batch).
BATCH_SIZE_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


@dataclass(frozen=True)
class RuntimePolicy:
    """Tunables for the managed runtime's failure handling."""

    #: In-place retries after a transient fault (total attempts = +1).
    max_retries: int = 2
    #: First backoff interval, seconds; doubles per retry.  Backoff is
    #: *simulated* (accumulated, never slept) to keep runs fast and
    #: deterministic.
    backoff_base: float = 0.001
    #: Recovery rebuilds allowed before the runtime goes FAILED.
    #: Planned rebuilds (rebuild/unsupported disciplines) are free.
    rebuild_budget: int = 64
    #: Consecutive clean batches needed to leave DEGRADED.
    degraded_window: int = 3
    #: Differential-check every Nth batch (1 = every batch, 0 = never).
    check_every: int = 1
    #: Capacity-guard inspection every Nth batch (0 = never).
    guard_every: int = 1
    #: Shrink the trace to a minimal repro when going FAILED.
    shrink_on_failure: bool = True
    max_shrink_evals: int = 200
    #: Apply batches as in-place deltas on algorithms that support it
    #: (``supports_delta``), skipping the per-batch snapshot copy.
    #: ``False`` forces the legacy copy-then-commit path everywhere.
    delta_updates: bool = True


@dataclass(frozen=True)
class CapacityGuard:
    """Resource envelope the committed structure must fit.

    ``None`` budgets default to the full Tofino-2 envelope (one
    recirculation); tighter values model sharing the pipe with other
    programs.  ``dleft_overflow_limit`` is the *soft* guard: overflow
    cells in use beyond it mean the d-left provisioning no longer fits
    its design load and the structure should be re-provisioned.
    """

    tcam_blocks: Optional[int] = None
    sram_pages: Optional[int] = None
    stage_budget: Optional[int] = None
    dleft_overflow_limit: int = 0

    def inspect(self, algo: LookupAlgorithm) -> Tuple[List[str], List[str]]:
        """``(hard_reasons, soft_reasons)`` for the current structure."""
        hard: List[str] = []
        soft: List[str] = []
        try:
            layout = algo.layout()
        except Exception:
            layout = None  # no layout -> nothing to map
        if layout is not None:
            _, reasons = tofino2_fit_report(
                layout, self.tcam_blocks, self.sram_pages, self.stage_budget
            )
            hard.extend(reasons)
        hash_table = getattr(algo, "hash_table", None)
        overflow = getattr(hash_table, "overflow_count", 0)
        if overflow > self.dleft_overflow_limit:
            soft.append(
                f"d-left overflow cells {overflow} > limit "
                f"{self.dleft_overflow_limit}"
            )
        return hard, soft


class ManagedFib:
    """A lookup structure plus the control loop that keeps it honest."""

    def __init__(
        self,
        factory: Callable[[Fib], LookupAlgorithm],
        base: Fib,
        policy: Optional[RuntimePolicy] = None,
        guard: Optional[CapacityGuard] = None,
        faults: Optional[FaultPlan] = None,
        check_seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        algo: Optional[LookupAlgorithm] = None,
    ):
        self.factory = factory
        self.policy = policy or RuntimePolicy()
        self.guard = guard or CapacityGuard()
        self.faults = faults or FaultPlan.none()
        #: Telemetry: event counters are mirrored here, batch outcomes
        #: and sizes are deterministic instruments, and apply/rollback/
        #: rebuild latencies land in the wall-clock timings section.
        self.registry = registry or MetricsRegistry()
        self._health_gauge = self.registry.gauge(
            "repro_health_state",
            "Managed-runtime health (0 healthy .. 3 failed).")
        self._batch_size_histogram = self.registry.histogram(
            "repro_batch_size", BATCH_SIZE_BUCKETS,
            "Update ops per applied batch.")
        self.log = EventLog(registry=self.registry)
        self.oracle = Fib(base.width, list(base))
        # A prebuilt structure (e.g. an artifact warm start) skips the
        # factory build; it must already reflect ``base`` exactly.
        self.algo = algo if algo is not None else factory(
            Fib(base.width, list(base)))
        self._base = Fib(base.width, list(base))
        self.checker = DifferentialChecker(base.width, seed=check_seed)
        self.health = Health.HEALTHY
        self.simulated_backoff_s = 0.0
        self.minimal_repro: Optional[List[UpdateOp]] = None
        self._guard_tripped = False
        self._recovery_rebuilds = 0
        self._healthy_streak = 0
        self._incident_flag = False
        self._batch_index = -1
        self._trace: List[UpdateOp] = []
        #: The committed delta of the most recent *applied* batch
        #: (None after rebuilds and rollbacks).  Commit listeners read
        #: this to patch plans / ship deltas instead of recompiling.
        self.last_delta: Optional[FibDelta] = None
        self._commit_listeners: List[
            Callable[[str, LookupAlgorithm, List[Prefix]], None]] = []
        self._health_gauge.set(HEALTH_GAUGE_VALUES[self.health])

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        return self.algo.lookup(address)

    def __len__(self) -> int:
        return len(self.oracle)

    # ------------------------------------------------------------------
    # Commit listeners (cache/plan invalidation contract)
    # ------------------------------------------------------------------
    def add_commit_listener(
        self,
        listener: Callable[[str, LookupAlgorithm, List[Prefix]], None],
    ) -> None:
        """Subscribe to committed batches.

        ``listener(outcome, algo, touched)`` fires after every *landed*
        batch — ``outcome`` is ``"batch_applied"`` or
        ``"batch_rebuilt"``, ``algo`` the newly committed structure,
        ``touched`` the prefixes the batch changed.  Rolled-back
        batches do not notify: the committed structure (and therefore
        anything derived from it — compiled plans, cache contents)
        is unchanged by construction.
        """
        self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener) -> None:
        self._commit_listeners.remove(listener)

    # ------------------------------------------------------------------
    # Blue/green adoption (artifact reloads)
    # ------------------------------------------------------------------
    def adopt(self, algo: LookupAlgorithm, base: Fib) -> None:
        """Atomically become ``algo`` serving ``base``.

        The blue/green path: the new structure was built (or loaded
        from the artifact catalog) off to the side, and the server
        flips to it under its commit gate.  Commit listeners are *not*
        fired — the caller owns the flip and refreshes its engines
        itself, exactly because this swap must happen inside the
        caller's write section.
        """
        if base.width != self.oracle.width:
            raise ValueError(
                f"cannot adopt width-{base.width} table into a "
                f"width-{self.oracle.width} runtime")
        self.algo = algo
        self.oracle = Fib(base.width, list(base))
        self._base = Fib(base.width, list(base))
        self.last_delta = None
        self.log.record("adopt", self._batch_index, size=len(self.oracle))

    # ------------------------------------------------------------------
    # Health plumbing
    # ------------------------------------------------------------------
    def _set_health(self, new: Health, batch: int) -> None:
        if new is Health.HEALTHY and self._guard_tripped:
            # Invariant: a tripped capacity guard pins us at DEGRADED.
            new = Health.DEGRADED
        if self.health is Health.FAILED:
            return  # FAILED is terminal
        if new is not self.health:
            self.log.record("health", batch, old=str(self.health), new=str(new))
            self.health = new
            self._health_gauge.set(HEALTH_GAUGE_VALUES[new])

    def _incident(self, batch: int) -> None:
        self._healthy_streak = 0
        self._incident_flag = True
        self._set_health(Health.DEGRADED, batch)

    # ------------------------------------------------------------------
    # Oracle staging (undo journal)
    # ------------------------------------------------------------------
    def _stage(self, journal: List[Tuple[str, Prefix, Optional[int]]],
               op: UpdateOp, prefix: Prefix) -> None:
        prev = self.oracle.get(prefix)
        if op.action == ANNOUNCE:
            journal.append((ANNOUNCE, prefix, prev))
            self.oracle.insert(prefix, op.next_hop)
        else:
            journal.append(("withdraw", prefix, prev))
            self.oracle.delete(prefix)

    def _unstage(self, journal: List[Tuple[str, Prefix, Optional[int]]]) -> None:
        with self.registry.timer("repro_rollback"):
            for action, prefix, prev in reversed(journal):
                if action == ANNOUNCE:
                    if prev is None:
                        self.oracle.delete(prefix)
                    else:
                        self.oracle.insert(prefix, prev)
                else:
                    self.oracle.insert(prefix, prev)
            journal.clear()

    # ------------------------------------------------------------------
    # Batch application
    # ------------------------------------------------------------------
    def apply_batch(self, ops: Sequence[UpdateOp]) -> str:
        """Apply one update batch; returns the outcome event kind."""
        self._batch_size_histogram.observe(len(ops))
        with self.registry.timer("repro_batch_apply"):
            outcome = self._apply_batch(ops)
        self.registry.counter(
            "repro_batch_outcomes_total", "Batches by final outcome."
        ).inc(1, outcome=outcome)
        return outcome

    def _apply_batch(self, ops: Sequence[UpdateOp]) -> str:
        self._batch_index += 1
        b = self._batch_index
        self._incident_flag = False
        self.log.record("batch", b, size=len(ops))

        if self.health is Health.FAILED:
            self.log.record("rollback", b, reason="runtime failed")
            self.log.record("batch_rolled_back", b, reason="runtime failed")
            return "batch_rolled_back"

        # 1. Trace faults corrupt the stream; account each marked op.
        ops = self.faults.mutate(b, list(ops))
        for op in ops:
            if op.fault is not None:
                self.log.record("fault_injected", b, fault=op.fault)
                self.log.tally(f"fault:{op.fault}")

        # 2. Validation: absorb hostile input, stage the rest on the
        #    oracle under an undo journal.
        journal: List[Tuple[str, Prefix, Optional[int]]] = []
        valid: List[Tuple[UpdateOp, Prefix]] = []
        for op in ops:
            reason = None
            prefix = None
            try:
                prefix = op.resolve()
            except PrefixError as exc:
                reason = f"malformed prefix: {exc}"
            if reason is None and prefix.width != self.oracle.width:
                reason = f"width {prefix.width} != table width {self.oracle.width}"
            if reason is None and op.action == ANNOUNCE and (
                op.next_hop is None or op.next_hop < 0
            ):
                reason = f"bad next hop {op.next_hop}"
            if reason is None and op.action != ANNOUNCE and prefix not in self.oracle:
                reason = "withdraw of a route not in the table"
            if reason is not None:
                self.log.record("op_absorbed", b, op=op.render(), reason=reason)
                if op.fault is not None:
                    self.log.record("fault_absorbed", b, fault=op.fault)
                continue
            if op.fault is not None:
                # An injected op that happens to be valid (e.g. a ghost
                # withdraw colliding with a live route): it lands like
                # any other op, which *is* absorbing it — account it so
                # the injected == absorbed + recovered identity holds.
                self.log.record("fault_absorbed", b, fault=op.fault,
                                how="benign-applied")
            self._stage(journal, op, prefix)
            valid.append((op, prefix))

        # 3. Arm runtime faults against the post-validation op list so
        #    fault positions line up with the in-place apply loop.
        armed = self.faults.arm(b, [op for op, _ in valid])
        for name in armed:
            self.log.record("fault_injected", b, fault=name)
            self.log.tally(f"fault:{name}")

        # The batch as a FibDelta: the journal (1:1 with ``valid``)
        # supplies each op's previous hop, so the delta is invertible.
        delta = FibDelta([
            DeltaOp(ANNOUNCE if op.action == ANNOUNCE else WITHDRAW,
                    prefix,
                    next_hop=op.next_hop if op.action == ANNOUNCE else None,
                    prev_hop=prev)
            for (op, prefix), (_action, _prefix, prev) in zip(valid, journal)
        ])

        # 4. Land the batch on the structure.
        outcome = None
        new_algo = None
        in_place_delta = False
        if self.policy.delta_updates and self.algo.supports_delta:
            new_algo, outcome = self._apply_delta(b, delta, armed)
            in_place_delta = outcome == "batch_applied"
        elif self.algo.update_strategy == UPDATE_IN_PLACE:
            new_algo, outcome = self._apply_in_place(b, valid, armed)
        else:
            # Planned per-batch rebuild (rebuild/unsupported discipline).
            new_algo = self._rebuild(b, planned=True)
            outcome = "batch_rebuilt"
            for name in armed:
                self.log.record("fault_recovered", b, fault=name, how="rebuild")

        if new_algo is None:
            # Recovery exhausted: roll the whole batch back.  (The
            # delta path already undid its partial progress.)
            self._unstage(journal)
            self.log.record("batch_rolled_back", b, reason=outcome)
            self._incident(b)
            if outcome == "rebuild budget exhausted":
                self._fail(b, reason=outcome)
            return "batch_rolled_back"

        # 5. Capacity guards.
        if self.policy.guard_every and b % self.policy.guard_every == 0:
            undo = None
            if in_place_delta:
                def undo():
                    # A delta batch mutated the live structure: restore
                    # it (oracle first, so the rollback safety net
                    # rebuilds from the pre-batch table) before the
                    # guard inspects the committed state.
                    self._unstage(journal)
                    self._rollback_delta(b, delta)
            kept, outcome = self._enforce_guards(b, new_algo, valid, outcome,
                                                 rollback=undo)
            if not kept:
                # Armed runtime faults were already accounted when the
                # in-place/rebuild path resolved them above.  A hard
                # trip on the delta path already ran ``undo``.
                if not in_place_delta:
                    self._unstage(journal)
                self.log.record("batch_rolled_back", b, reason="capacity guard")
                self._incident(b)
                return "batch_rolled_back"
            new_algo = kept if kept is not True else new_algo

        # 6. Differential check against the staged oracle.
        if self.policy.check_every and b % self.policy.check_every == 0:
            checked = self._enforce_consistency(b, new_algo,
                                                [p for _, p in valid])
            if checked is None:
                self._unstage(journal)
                if in_place_delta:
                    self._rollback_delta(b, delta)
                self.log.record("batch_rolled_back", b,
                                reason="unrecoverable divergence")
                self._fail(b, reason="differential check failed after rebuild",
                           extra_ops=[op for op, _ in valid])
                return "batch_rolled_back"
            if checked is not True:
                new_algo = checked
                outcome = "batch_rebuilt"

        # 7. Commit.
        self.algo = new_algo
        self.last_delta = delta if outcome == "batch_applied" else None
        self._trace.extend(op for op, _ in valid)
        for op, _ in valid:
            self.log.record("op_applied", b, op=op.render())
        self.log.record(outcome, b)
        touched = [prefix for _, prefix in valid]
        for listener in list(self._commit_listeners):
            listener(outcome, self.algo, touched)
        if not self._incident_flag and not self._guard_tripped:
            self._healthy_streak += 1
        if (
            self.health is Health.DEGRADED
            and not self._guard_tripped
            and self._healthy_streak >= self.policy.degraded_window
        ):
            self._set_health(Health.HEALTHY, b)
        elif self.health is Health.REBUILDING:
            self._set_health(
                Health.DEGRADED if self._guard_tripped else Health.HEALTHY, b
            )
        return outcome

    # ------------------------------------------------------------------
    # In-place application with retry/rebuild fallback
    # ------------------------------------------------------------------
    def _apply_in_place(
        self,
        b: int,
        valid: List[Tuple[UpdateOp, Prefix]],
        armed: List[str],
    ) -> Tuple[Optional[LookupAlgorithm], str]:
        last_fault: Optional[SimulatedFault] = None
        for attempt in range(self.policy.max_retries + 1):
            work = self.algo.snapshot()
            try:
                work.begin_update_batch()
                for i, (op, prefix) in enumerate(valid):
                    fault = self.faults.should_raise(attempt, i)
                    if fault is not None:
                        raise fault
                    if op.action == ANNOUNCE:
                        work.insert(prefix, op.next_hop)
                    else:
                        work.delete(prefix)
                work.end_update_batch()
            except SimulatedFault as fault:
                last_fault = fault
                self.log.record("rollback", b, fault=fault.fault_name,
                                attempt=attempt)
                self._incident(b)
                if fault.transient and attempt < self.policy.max_retries:
                    backoff = self.policy.backoff_base * (2 ** attempt)
                    self.simulated_backoff_s += backoff
                    self.log.record("retry", b, attempt=attempt + 1,
                                    backoff_ms=round(backoff * 1000, 3))
                    continue
                break
            except UpdateUnsupported:
                # The algorithm refused mid-batch; fall back to rebuild.
                self.log.record("rollback", b, reason="update unsupported",
                                attempt=attempt)
                last_fault = None
                break
            else:
                # Success: the armed transient faults were ridden out.
                for name in armed:
                    self.log.record("fault_recovered", b, fault=name,
                                    how="retry" if attempt else "clean-pass")
                return work, "batch_applied"

        # Retries exhausted or non-transient failure: recovery rebuild.
        if self._recovery_rebuilds >= self.policy.rebuild_budget:
            for name in armed:
                self.log.record("fault_recovered", b, fault=name,
                                how="rollback")
            return None, "rebuild budget exhausted"
        rebuilt = self._rebuild(b, planned=False)
        for name in armed:
            self.log.record("fault_recovered", b, fault=name, how="rebuild")
        if last_fault is not None:
            self._incident(b)
        return rebuilt, "batch_rebuilt"

    # ------------------------------------------------------------------
    # Delta application: mutate the live structure, no snapshot copy
    # ------------------------------------------------------------------
    def _apply_delta(
        self,
        b: int,
        delta: FibDelta,
        armed: List[str],
    ) -> Tuple[Optional[LookupAlgorithm], str]:
        """Land the batch as an in-place delta on ``self.algo``.

        The per-batch ``snapshot()`` deep copy — the dominant commit
        cost at AS65000 scale — is skipped entirely; rollback safety
        comes from the delta's own invertibility instead.  Fault
        semantics mirror :meth:`_apply_in_place`: transient faults
        retry with backoff, persistent ones fall back to a recovery
        rebuild, and an :class:`UpdateUnsupported` mid-delta (a
        declared capability boundary, e.g. DXR declining a very broad
        short prefix) falls back to a *planned* rebuild.
        """
        last_fault: Optional[SimulatedFault] = None
        for attempt in range(self.policy.max_retries + 1):
            applied = 0
            try:
                self.algo.begin_update_batch()
                try:
                    for i, dop in enumerate(delta.ops):
                        fault = self.faults.should_raise(attempt, i)
                        if fault is not None:
                            raise fault
                        self.algo.apply_delta_op(dop)
                        applied += 1
                finally:
                    self.algo.end_update_batch()
            except SimulatedFault as fault:
                self._undo_partial_delta(b, delta, applied)
                last_fault = fault
                self.log.record("rollback", b, fault=fault.fault_name,
                                attempt=attempt)
                self._incident(b)
                if fault.transient and attempt < self.policy.max_retries:
                    backoff = self.policy.backoff_base * (2 ** attempt)
                    self.simulated_backoff_s += backoff
                    self.log.record("retry", b, attempt=attempt + 1,
                                    backoff_ms=round(backoff * 1000, 3))
                    continue
                break
            except UpdateUnsupported:
                self._undo_partial_delta(b, delta, applied)
                self.log.record("rollback", b, reason="update unsupported",
                                attempt=attempt)
                rebuilt = self._rebuild(b, planned=True)
                for name in armed:
                    self.log.record("fault_recovered", b, fault=name,
                                    how="rebuild")
                return rebuilt, "batch_rebuilt"
            else:
                for name in armed:
                    self.log.record("fault_recovered", b, fault=name,
                                    how="retry" if attempt else "clean-pass")
                return self.algo, "batch_applied"

        # Retries exhausted or non-transient failure: recovery rebuild.
        if self._recovery_rebuilds >= self.policy.rebuild_budget:
            for name in armed:
                self.log.record("fault_recovered", b, fault=name,
                                how="rollback")
            return None, "rebuild budget exhausted"
        rebuilt = self._rebuild(b, planned=False)
        for name in armed:
            self.log.record("fault_recovered", b, fault=name, how="rebuild")
        if last_fault is not None:
            self._incident(b)
        return rebuilt, "batch_rebuilt"

    def _undo_partial_delta(self, b: int, delta: FibDelta,
                            applied: int) -> None:
        """Return ``self.algo`` to its pre-batch state after ``applied``
        delta ops landed, via inverse ops (newest first)."""
        if applied == 0:
            return
        try:
            for dop in reversed(delta.ops[:applied]):
                self.algo.apply_delta_op(dop.inverse())
        except Exception:
            # Last resort: reconstruct the pre-batch table (the staged
            # oracle minus the whole batch) and rebuild from it.  No
            # listener fires — serving still holds pre-batch plans.
            self.log.record("delta_undo_rebuild", b)
            base = Fib(self.oracle.width, list(self.oracle))
            self._replay_inverse(base, delta)
            self.algo = self.factory(base)

    def _rollback_delta(self, b: int, delta: FibDelta) -> None:
        """Undo a fully-applied delta on ``self.algo`` (post-apply
        rollback: hard guard trip or unrecoverable divergence).  The
        oracle has already been unstaged, so the safety net rebuilds
        straight from it."""
        try:
            for dop in delta.inverse().ops:
                self.algo.apply_delta_op(dop)
        except Exception:
            self.log.record("delta_undo_rebuild", b)
            self.algo = self.factory(Fib(self.oracle.width, list(self.oracle)))

    @staticmethod
    def _replay_inverse(base: Fib, delta: FibDelta) -> None:
        for dop in delta.inverse().ops:
            if dop.action == ANNOUNCE:
                base.insert(dop.prefix, dop.next_hop)
            elif dop.prefix in base:
                base.delete(dop.prefix)

    def _rebuild(self, b: int, planned: bool) -> LookupAlgorithm:
        if planned:
            self.log.record("rebuild_planned", b)
        else:
            previous = self.health
            self._set_health(Health.REBUILDING, b)
            self.log.record("rebuild_recovery", b)
            self._recovery_rebuilds += 1
            self._healthy_streak = 0
            if previous is not Health.REBUILDING:
                self._set_health(Health.DEGRADED, b)
        with self.registry.timer("repro_rebuild",
                                 planned="true" if planned else "false"):
            return self.factory(Fib(self.oracle.width, list(self.oracle)))

    # ------------------------------------------------------------------
    # Guards and consistency
    # ------------------------------------------------------------------
    def _enforce_guards(self, b, new_algo, valid, outcome, rollback=None):
        """Returns ``(keep, outcome)``; ``keep`` is False to roll back,
        True to keep ``new_algo``, or a replacement structure.

        ``rollback`` (delta batches only) undoes the in-place mutation
        before a hard trip inspects the committed state — without it
        ``self.algo`` would still hold the rejected batch."""
        hard, soft = self.guard.inspect(new_algo)
        if hard:
            self._guard_tripped = True
            self.log.record("guard_trip", b, severity="hard",
                            reasons="; ".join(hard))
            if rollback is not None:
                rollback()
            # Rolling back restores the last committed state; only
            # clear the guard if that state actually fits (it may not,
            # e.g. when the budget was tightened below the base load).
            committed_hard, _ = self.guard.inspect(self.algo)
            if not committed_hard:
                self._guard_tripped = False
                self.log.record("guard_clear", b, how="rollback")
            return False, outcome
        if soft:
            self._guard_tripped = True
            self.log.record("guard_trip", b, severity="soft",
                            reasons="; ".join(soft))
            self._incident(b)
            if self._recovery_rebuilds < self.policy.rebuild_budget:
                new_algo = self._rebuild(b, planned=False)
                outcome = "batch_rebuilt"
                _, soft_after = self.guard.inspect(new_algo)
                if not soft_after:
                    self._guard_tripped = False
                    self.log.record("guard_clear", b, how="rebuild")
            return new_algo, outcome
        if self._guard_tripped:
            self._guard_tripped = False
            self.log.record("guard_clear", b, how="drained")
        return True, outcome

    def _enforce_consistency(self, b, new_algo, touched: List[Prefix]):
        """True if consistent, a rebuilt structure if recovered, or
        ``None`` if divergence survives a rebuild (runtime failure)."""
        probes = self.checker.probe_addresses(touched)
        violations = self.checker.check(new_algo, self.oracle, probes)
        if not violations:
            return True
        for violation in violations[:8]:
            self.log.record("violation", b,
                            detail=violation.render(self.oracle.width))
        self._incident(b)
        if self._recovery_rebuilds >= self.policy.rebuild_budget:
            return None
        rebuilt = self._rebuild(b, planned=False)
        if self.checker.check(rebuilt, self.oracle, probes):
            return None
        return rebuilt

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _fail(self, b: int, reason: str,
              extra_ops: Optional[List[UpdateOp]] = None) -> None:
        self._healthy_streak = 0
        if self.health is not Health.FAILED:
            self.log.record("health", b, old=str(self.health),
                            new=str(Health.FAILED))
            self.health = Health.FAILED
            self._health_gauge.set(HEALTH_GAUGE_VALUES[Health.FAILED])
        self.log.record("failed", b, reason=reason)
        if not self.policy.shrink_on_failure:
            return
        trace = self._trace + list(extra_ops or [])
        fails = make_failure_predicate(self.factory, self._base)
        try:
            self.minimal_repro = shrink_trace(
                trace, fails, max_evals=self.policy.max_shrink_evals
            )
            self.log.record("repro_shrunk", b, from_ops=len(trace),
                            to_ops=len(self.minimal_repro))
        except ValueError:
            # The full-replay predicate cannot reproduce it (e.g. the
            # divergence needed the runtime's own state); keep the
            # whole trace as the repro.
            self.minimal_repro = trace
