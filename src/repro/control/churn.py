"""Deterministic BGP-like churn generation.

Real routing tables do not receive uniform random updates: BGP feeds
mix announcements and withdrawals roughly 2:1, next-hop changes
re-announce existing prefixes, unstable links *flap* (the same prefix
announced and withdrawn in quick succession), and provider outages
withdraw whole swaths of correlated prefixes at once.  The paper's
update discipline (Appendix A.3) is judged against exactly this kind
of traffic, so the benchmarks and the robustness tests share one
generator instead of each hand-rolling a trace.

Everything is driven by a single ``random.Random(seed)``; the same
seed always yields the same operation stream.  Prefix lengths are
drawn from the calibrated AS65000 / AS131072 histograms in
:mod:`repro.datasets.bgp`, so churn traffic has the same length mix
as the tables it lands on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..datasets.bgp import AS65000_LENGTH_COUNTS, AS131072_LENGTH_COUNTS
from ..prefix.prefix import IPV4_WIDTH, IPV6_WIDTH, Prefix, PrefixError
from ..prefix.trie import Fib

ANNOUNCE = "announce"
WITHDRAW = "withdraw"


@dataclass(frozen=True)
class UpdateOp:
    """One routing update.

    A well-formed op carries a :class:`Prefix`.  Fault injectors build
    *malformed* ops instead: ``prefix`` is ``None`` and ``raw`` holds
    the (bits, length, width) triple exactly as it arrived off the
    wire; :meth:`resolve` then raises :class:`PrefixError`, which the
    managed runtime must absorb without corrupting the FIB.
    """

    action: str  # ANNOUNCE or WITHDRAW
    prefix: Optional[Prefix] = None
    next_hop: Optional[int] = None
    raw: Optional[Tuple[int, int, int]] = None
    fault: Optional[str] = None  # name of the injector that made this op

    def resolve(self) -> Prefix:
        """The op's prefix, validating raw bits if present."""
        if self.raw is not None:
            return Prefix.from_bits(*self.raw)
        if self.prefix is None:
            raise PrefixError("update op carries no prefix")
        return self.prefix

    def render(self) -> str:
        if self.raw is not None:
            bits, length, width = self.raw
            what = f"raw({bits:#x}/{length}@{width})"
        else:
            what = str(self.prefix)
        if self.action == ANNOUNCE:
            return f"+{what}->{self.next_hop}"
        return f"-{what}"


@dataclass(frozen=True)
class ChurnProfile:
    """Mix of update behaviours, as probabilities per generated op.

    The defaults model a moderately unstable feed: two announcements
    for each withdrawal, a sixth of announcements being next-hop
    modifies of live routes, and occasional flap storms / correlated
    withdraws.  Events that need live state (withdraw, modify) fall
    back to fresh announcements while the table is empty.
    """

    withdraw: float = 0.30
    modify: float = 0.12
    flap_storm: float = 0.01
    correlated_withdraw: float = 0.005
    flap_length: Tuple[int, int] = (4, 10)  # inclusive range of storm ops
    correlated_slice: int = 16  # withdraw everything under one /16
    correlated_cap: int = 32  # ... up to this many prefixes

    def validate(self) -> None:
        if not 0 <= self.withdraw + self.modify <= 1:
            raise ValueError("withdraw + modify probabilities exceed 1")


#: Stable profile for smoke tests: no storms, light withdrawal.
CALM = ChurnProfile(withdraw=0.2, modify=0.1, flap_storm=0.0,
                    correlated_withdraw=0.0)
#: Default realistic mix.
DEFAULT = ChurnProfile()
#: Hostile mix for stress runs: heavy withdrawal and frequent storms.
STORMY = ChurnProfile(withdraw=0.4, modify=0.1, flap_storm=0.05,
                      correlated_withdraw=0.02)

PROFILES: Dict[str, ChurnProfile] = {
    "calm": CALM,
    "default": DEFAULT,
    "stormy": STORMY,
}


class _LiveSet:
    """The generator's view of currently-announced prefixes.

    Supports O(1) membership, O(1) uniform random choice, and O(1)
    removal (swap-with-last), all deterministic under a seeded rng.
    """

    def __init__(self, entries: Sequence[Tuple[Prefix, int]]):
        self._hops: Dict[Prefix, int] = {}
        self._order: List[Prefix] = []
        self._index: Dict[Prefix, int] = {}
        for prefix, hop in entries:
            self.announce(prefix, hop)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._hops

    def hop(self, prefix: Prefix) -> int:
        return self._hops[prefix]

    def announce(self, prefix: Prefix, hop: int) -> None:
        if prefix not in self._hops:
            self._index[prefix] = len(self._order)
            self._order.append(prefix)
        self._hops[prefix] = hop

    def withdraw(self, prefix: Prefix) -> None:
        i = self._index.pop(prefix)
        last = self._order.pop()
        if last is not prefix:
            self._order[i] = last
            self._index[last] = i
        del self._hops[prefix]

    def choose(self, rng: random.Random) -> Prefix:
        return self._order[rng.randrange(len(self._order))]


def _length_weights(width: int) -> Tuple[List[int], List[int]]:
    counts = AS65000_LENGTH_COUNTS if width == IPV4_WIDTH else AS131072_LENGTH_COUNTS
    if width not in (IPV4_WIDTH, IPV6_WIDTH):
        # Toy widths: uniform over [1, width].
        return list(range(1, width + 1)), [1] * width
    lengths = sorted(length for length in counts if length <= width)
    return lengths, [counts[length] for length in lengths]


class ChurnGenerator:
    """A seeded stream of BGP-like :class:`UpdateOp` values.

    The generator tracks its own live set (seeded from ``base``), so
    every op it emits is *valid by construction*: withdrawals name
    live prefixes, announcements of new prefixes do not collide, and
    modifies change the next hop of live routes.  Invalid traffic is
    the business of :mod:`repro.control.faults`, which mutates batches
    after generation — keeping "realistic churn" and "hostile input"
    separately controllable.
    """

    def __init__(
        self,
        base: Fib,
        seed: int = 0,
        profile: ChurnProfile = DEFAULT,
        next_hops: int = 256,
    ):
        profile.validate()
        self.width = base.width
        self.profile = profile
        self.next_hops = next_hops
        self._rng = random.Random(seed)
        self._live = _LiveSet(list(base))
        self._lengths, self._weights = _length_weights(base.width)
        self._pending: List[UpdateOp] = []

    # ------------------------------------------------------------------
    # Op construction
    # ------------------------------------------------------------------
    def _fresh_prefix(self) -> Prefix:
        rng = self._rng
        while True:
            length = rng.choices(self._lengths, self._weights)[0]
            bits = rng.getrandbits(length) if length else 0
            prefix = Prefix.from_bits(bits, length, self.width)
            if prefix not in self._live:
                return prefix

    def _announce_new(self) -> UpdateOp:
        prefix = self._fresh_prefix()
        hop = self._rng.randrange(self.next_hops)
        self._live.announce(prefix, hop)
        return UpdateOp(ANNOUNCE, prefix, hop)

    def _withdraw_live(self) -> UpdateOp:
        prefix = self._live.choose(self._rng)
        self._live.withdraw(prefix)
        return UpdateOp(WITHDRAW, prefix)

    def _modify_live(self) -> UpdateOp:
        prefix = self._live.choose(self._rng)
        old = self._live.hop(prefix)
        hop = self._rng.randrange(self.next_hops)
        if hop == old:
            hop = (hop + 1) % self.next_hops
        self._live.announce(prefix, hop)
        return UpdateOp(ANNOUNCE, prefix, hop)

    def _flap_storm(self) -> List[UpdateOp]:
        """One unstable route announced/withdrawn several times."""
        rng = self._rng
        lo, hi = self.profile.flap_length
        flaps = rng.randint(lo, hi)
        prefix = self._fresh_prefix()
        ops: List[UpdateOp] = []
        for i in range(flaps):
            if i % 2 == 0:
                hop = rng.randrange(self.next_hops)
                self._live.announce(prefix, hop)
                ops.append(UpdateOp(ANNOUNCE, prefix, hop))
            else:
                self._live.withdraw(prefix)
                ops.append(UpdateOp(WITHDRAW, prefix))
        return ops

    def _correlated_withdraw(self) -> List[UpdateOp]:
        """A provider outage: withdraw live prefixes under one slice."""
        rng = self._rng
        victim = self._live.choose(self._rng)
        slice_len = min(self.profile.correlated_slice, victim.length)
        parent = victim.truncate(slice_len)
        doomed = [
            p for p in self._live._order
            if p.length >= slice_len and parent.is_prefix_of(p)
        ]
        doomed.sort(key=lambda p: (p.value, p.length))
        if len(doomed) > self.profile.correlated_cap:
            doomed = rng.sample(doomed, self.profile.correlated_cap)
            doomed.sort(key=lambda p: (p.value, p.length))
        ops = []
        for prefix in doomed:
            self._live.withdraw(prefix)
            ops.append(UpdateOp(WITHDRAW, prefix))
        return ops

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def next_op(self) -> UpdateOp:
        if self._pending:
            return self._pending.pop(0)
        rng, profile = self._rng, self.profile
        roll = rng.random()
        if roll < profile.flap_storm:
            self._pending = self._flap_storm()
            return self._pending.pop(0)
        roll = rng.random()
        if roll < profile.correlated_withdraw and len(self._live):
            self._pending = self._correlated_withdraw()
            if self._pending:
                return self._pending.pop(0)
        roll = rng.random()
        if roll < profile.withdraw and len(self._live):
            return self._withdraw_live()
        if roll < profile.withdraw + profile.modify and len(self._live):
            return self._modify_live()
        return self._announce_new()

    def ops(self, count: int) -> Iterator[UpdateOp]:
        for _ in range(count):
            yield self.next_op()

    def batches(self, total_ops: int, batch_size: int) -> Iterator[List[UpdateOp]]:
        """``total_ops`` operations chunked into batches of ``batch_size``."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        emitted = 0
        while emitted < total_ops:
            size = min(batch_size, total_ops - emitted)
            yield [self.next_op() for _ in range(size)]
            emitted += size


def churn_trace(base: Fib, count: int, seed: int = 0,
                profile: ChurnProfile = DEFAULT) -> List[UpdateOp]:
    """A materialized churn trace (convenience for benchmarks)."""
    gen = ChurnGenerator(base, seed=seed, profile=profile)
    return list(gen.ops(count))
