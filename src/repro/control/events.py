"""Structured event log for the managed FIB runtime.

Every interesting control-plane action — a batch landing, a rollback,
a rebuild, a capacity-guard trip, a health transition — is recorded as
an :class:`Event` and tallied in a counter.  Two properties matter:

* **Determinism** — two runs with the same seeds must produce
  byte-identical :meth:`EventLog.summary` output, so the log carries
  no wall-clock timestamps; ordering comes from batch indices.
* **Auditability** — the robustness tests assert *accounting
  identities* over the counters, e.g. every batch ends in exactly one
  of applied / rolled back / rebuilt, and every injected fault is
  either absorbed at validation or recovered by rollback/rebuild.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Batch outcomes — exactly one is recorded per batch.
BATCH_OUTCOMES = ("batch_applied", "batch_rebuilt", "batch_rolled_back")


@dataclass(frozen=True)
class Event:
    """One control-plane event.

    ``fields`` is stored as a sorted tuple of ``(key, value)`` pairs so
    events render deterministically and hash/compare cleanly.
    """

    kind: str
    batch: Optional[int] = None
    fields: Tuple[Tuple[str, object], ...] = ()

    def get(self, key: str, default=None):
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def render(self) -> str:
        where = f"@{self.batch}" if self.batch is not None else ""
        extras = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.kind}{where}" + (f" [{extras}]" if extras else "")

    def to_dict(self) -> dict:
        """A JSON-safe rendering for archival/replay by external tools."""
        return {
            "kind": self.kind,
            "batch": self.batch,
            "fields": {
                k: v if isinstance(v, (bool, int, float, str, type(None)))
                else str(v)
                for k, v in self.fields
            },
        }


class EventLog:
    """An append-only event log with counters.

    The runtime records; benchmarks and tests assert.  ``counters``
    maps event kinds to occurrence counts (plus a few derived keys the
    runtime maintains, like per-fault-name tallies under
    ``fault:<name>``).
    """

    def __init__(self, registry=None) -> None:
        self.events: List[Event] = []
        self.counters: Counter = Counter()
        #: Optional :class:`repro.obs.MetricsRegistry`; every recorded
        #: event kind is mirrored into ``repro_events_total{kind=...}``
        #: so dashboards and the accounting tests see the same truth.
        self.registry = registry
        self._mirror = (
            registry.counter("repro_events_total",
                             "Control-plane events by kind.")
            if registry is not None else None
        )

    def record(self, kind: str, batch: Optional[int] = None, **fields) -> Event:
        event = Event(kind, batch, tuple(sorted(fields.items())))
        self.events.append(event)
        self.counters[kind] += 1
        if self._mirror is not None:
            self._mirror.inc(1, kind=kind)
        return event

    def tally(self, kind: str, amount: int = 1) -> None:
        """Count a fact without recording an event (e.g. armed faults).

        Keeps the counter and the registry mirror in lockstep, so the
        bidirectional consistency check covers tallies too.
        """
        self.counters[kind] += amount
        if self._mirror is not None:
            self._mirror.inc(amount, kind=kind)

    def count(self, kind: str) -> int:
        return self.counters.get(kind, 0)

    def of_kind(self, kind: str) -> Iterator[Event]:
        return (e for e in self.events if e.kind == kind)

    # ------------------------------------------------------------------
    # Accounting identities
    # ------------------------------------------------------------------
    @property
    def batches_total(self) -> int:
        return self.count("batch")

    @property
    def batches_accounted(self) -> int:
        """applied + rolled back + rebuilt — must equal ``batches_total``."""
        return sum(self.count(kind) for kind in BATCH_OUTCOMES)

    def check_accounting(self) -> None:
        """Raise ``AssertionError`` if any accounting identity is broken."""
        if self.batches_accounted != self.batches_total:
            raise AssertionError(
                f"batch accounting broken: {self.batches_total} batches but "
                f"{self.batches_accounted} outcomes "
                f"({ {k: self.count(k) for k in BATCH_OUTCOMES} })"
            )
        injected = self.count("fault_injected")
        handled = self.count("fault_absorbed") + self.count("fault_recovered")
        if injected != handled:
            raise AssertionError(
                f"fault accounting broken: {injected} injected but "
                f"{handled} absorbed/recovered"
            )

    def check_registry_consistency(self) -> None:
        """Assert the registry mirror agrees with the log, both ways.

        Every kind counted here (recorded events and ``tally`` bumps
        alike) must show the same count under
        ``repro_events_total{kind=...}``, and the registry must not
        carry event kinds the log never counted.  No-op without a
        registry.
        """
        if self._mirror is None:
            return
        recorded = {k: v for k, v in self.counters.items() if v}
        mirrored: Dict[str, int] = {}
        for label_key, value in self._mirror.items():
            labels = dict(label_key)
            mirrored[labels.get("kind", "?")] = int(value)
        for kind, count in sorted(recorded.items()):
            if mirrored.get(kind, 0) != count:
                raise AssertionError(
                    f"registry mirror broken: log has {count} x {kind!r}, "
                    f"registry has {mirrored.get(kind, 0)}"
                )
        extra = sorted(set(mirrored) - set(recorded))
        if extra:
            raise AssertionError(
                f"registry mirror broken: registry has kinds {extra} "
                "never recorded in the log"
            )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One event per line, in order — archivable and replayable.

        Deterministic for seeded runs (events carry batch indices, not
        timestamps), so churn archives diff cleanly across runs.
        """
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self.events
        ) + ("\n" if self.events else "")

    def health_transitions(self) -> List[str]:
        return [
            f"{e.get('old')}->{e.get('new')}@{e.batch}"
            for e in self.of_kind("health")
        ]

    def summary(self) -> str:
        """A deterministic, byte-stable run summary."""
        c = self.count
        lines = [
            "=== managed FIB event log ===",
            f"batches: {self.batches_total} "
            f"(applied {c('batch_applied')}, rebuilt {c('batch_rebuilt')}, "
            f"rolled back {c('batch_rolled_back')})",
            f"ops: applied {c('op_applied')}, absorbed {c('op_absorbed')}",
            f"rollbacks: {c('rollback')}  retries: {c('retry')}  "
            f"rebuilds: planned {c('rebuild_planned')}, "
            f"recovery {c('rebuild_recovery')}",
            f"faults: injected {c('fault_injected')}, "
            f"absorbed {c('fault_absorbed')}, recovered {c('fault_recovered')}",
            f"guard: trips {c('guard_trip')}, clears {c('guard_clear')}",
            f"violations: {c('violation')}",
        ]
        fault_keys = sorted(k for k in self.counters if k.startswith("fault:"))
        if fault_keys:
            lines.append(
                "fault mix: "
                + ", ".join(f"{k[6:]} {self.counters[k]}" for k in fault_keys)
            )
        transitions = self.health_transitions()
        if transitions:
            lines.append("health transitions: " + ", ".join(transitions))
        return "\n".join(lines)
