"""Commit deltas: the net effect of a landed update batch.

A :class:`FibDelta` is the *validated, staged* form of an update
batch — one :class:`DeltaOp` per accepted operation, each carrying the
previous next hop so the whole delta can be undone in place.  It is
the currency of the incremental commit pipeline:

* :class:`~repro.control.runtime.ManagedFib` builds one per batch and
  applies it through ``algo.apply_delta_op`` instead of rebuilding,
  undoing partial progress via :meth:`DeltaOp.inverse` when a fault
  interrupts the batch;
* :class:`~repro.engine.BatchEngine` hands it to the algorithm's
  ``plan_patch`` / ``vector_patch`` hooks so compiled plans re-derive
  only the touched steps;
* :class:`~repro.server.procpool.ProcessWorkerPool` ships its
  :meth:`FibDelta.wire_ops` net effect to worker replicas instead of a
  whole-FIB snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..prefix.prefix import Prefix
from .churn import ANNOUNCE, WITHDRAW

__all__ = ["DeltaOp", "FibDelta"]


@dataclass(frozen=True)
class DeltaOp:
    """One accepted route update, with enough state to undo it.

    ``prev_hop`` is the next hop the prefix had *before* this op (None
    if it was absent) — captured at validation time from the staged
    oracle, exactly like the runtime's undo journal.
    """

    action: str  # ANNOUNCE or WITHDRAW
    prefix: Prefix
    next_hop: Optional[int] = None  # the new hop (ANNOUNCE only)
    prev_hop: Optional[int] = None  # the hop before this op (None = absent)

    def inverse(self) -> "DeltaOp":
        """The op that exactly undoes this one."""
        if self.prev_hop is None:
            # The prefix did not exist before: undo by withdrawing it.
            return DeltaOp(WITHDRAW, self.prefix, prev_hop=self.next_hop)
        # It existed with prev_hop: undo by re-announcing that hop.
        prev = self.next_hop if self.action == ANNOUNCE else None
        return DeltaOp(ANNOUNCE, self.prefix, next_hop=self.prev_hop,
                       prev_hop=prev)

    def render(self) -> str:
        if self.action == ANNOUNCE:
            return f"+{self.prefix}->{self.next_hop}"
        return f"-{self.prefix}"


class FibDelta:
    """The ordered list of accepted ops in one committed batch."""

    __slots__ = ("ops",)

    def __init__(self, ops: Sequence[DeltaOp]):
        self.ops: Tuple[DeltaOp, ...] = tuple(ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[DeltaOp]:
        return iter(self.ops)

    def __repr__(self) -> str:
        body = ", ".join(op.render() for op in self.ops[:4])
        if len(self.ops) > 4:
            body += f", … ({len(self.ops)} ops)"
        return f"FibDelta([{body}])"

    def inverse(self) -> "FibDelta":
        """The delta that exactly undoes this one (reverse order)."""
        return FibDelta([op.inverse() for op in reversed(self.ops)])

    def prefixes(self) -> Set[Prefix]:
        """Every prefix this delta touches."""
        return {op.prefix for op in self.ops}

    def wire_ops(self) -> List[Tuple[int, int, Optional[int]]]:
        """The delta's *net* effect as picklable (bits, length, hop) triples.

        ``hop is None`` means the prefix ends up absent.  The last op
        per prefix wins; prefixes whose final state equals their state
        before the batch are dropped entirely.  This is what ships to
        process workers — order-independent, idempotent to apply.
        """
        first_prev: dict = {}
        final: dict = {}
        for op in self.ops:
            key = (op.prefix.bits, op.prefix.length)
            if key not in first_prev:
                first_prev[key] = op.prev_hop
            final[key] = op.next_hop if op.action == ANNOUNCE else None
        out: List[Tuple[int, int, Optional[int]]] = []
        for key in sorted(final):
            if final[key] != first_prev[key]:
                out.append((key[0], key[1], final[key]))
        return out
