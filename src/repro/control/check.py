"""Differential consistency checking and failing-trace shrinking.

After every batch the managed runtime compares the production
structure against the oracle :class:`~repro.prefix.trie.Fib` on a set
of probe addresses biased toward the prefixes the batch touched (their
first/last covered addresses and near misses — where update bugs
actually live) plus a deterministic stream of random probes.

When a divergence survives recovery, the runtime hands the accumulated
operation trace to :func:`shrink_trace`, a ddmin-style minimizer that
returns a small reproduction — debugging a 3-op repro beats debugging
a 10k-op churn log.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..prefix.prefix import Prefix, PrefixError
from ..prefix.trie import Fib
from .churn import ANNOUNCE, UpdateOp


@dataclass(frozen=True)
class Violation:
    """One probe address where the structure disagrees with the oracle."""

    address: int
    expected: Optional[int]
    got: Optional[int]

    def render(self, width: int = 32) -> str:
        return (
            f"address {self.address:#0{2 + width // 4}x}: "
            f"oracle says {self.expected}, structure says {self.got}"
        )


class DifferentialChecker:
    """Probe-based equivalence checking against the oracle FIB."""

    def __init__(self, width: int, seed: int = 0, random_probes: int = 16):
        self.width = width
        self.random_probes = random_probes
        self._rng = random.Random(f"check:{seed}")

    def probe_addresses(self, touched: Sequence[Prefix]) -> List[int]:
        """Probes for one batch: targeted around ``touched`` + random.

        The targeted probes hit each touched prefix's first and last
        covered address and the addresses just outside that range —
        off-by-one errors in range structures (DXR, BSIC) and stale
        expansions in stride tables (SAIL, MASHUP) live exactly there.
        """
        limit = (1 << self.width) - 1
        probes = set()
        for prefix in touched:
            first, last = prefix.address_range()
            probes.add(first)
            probes.add(last)
            if first > 0:
                probes.add(first - 1)
            if last < limit:
                probes.add(last + 1)
        for _ in range(self.random_probes):
            probes.add(self._rng.getrandbits(self.width))
        return sorted(probes)

    def check(self, algo, oracle: Fib,
              probes: Sequence[int]) -> List[Violation]:
        violations = []
        for address in probes:
            expected = oracle.lookup(address)
            got = algo.lookup(address)
            if got != expected:
                violations.append(Violation(address, expected, got))
        return violations


# ---------------------------------------------------------------------------
# Trace replay and shrinking
# ---------------------------------------------------------------------------


def replay(factory: Callable[[Fib], object], base: Fib,
           ops: Sequence[UpdateOp]) -> Tuple[object, Fib]:
    """Apply ``ops`` directly (no managed runtime) to a fresh structure.

    Invalid ops — malformed prefixes, withdrawals of absent routes —
    are skipped, mirroring what the runtime's validation absorbs, so a
    shrunk trace reproduces the *structure* bug, not input handling.
    Algorithms without in-place updates are rebuilt from the oracle
    after every op, matching the runtime's fallback.
    """
    from ..algorithms.base import UpdateUnsupported

    oracle = Fib(base.width, list(base))
    algo = factory(Fib(base.width, list(base)))
    for op in ops:
        try:
            prefix = op.resolve()
        except PrefixError:
            continue
        if op.action == ANNOUNCE:
            oracle.insert(prefix, op.next_hop)
        else:
            if prefix not in oracle:
                continue
            oracle.delete(prefix)
        try:
            if op.action == ANNOUNCE:
                algo.insert(prefix, op.next_hop)
            else:
                algo.delete(prefix)
        except UpdateUnsupported:
            algo = factory(Fib(base.width, list(oracle)))
    return algo, oracle


def make_failure_predicate(
    factory: Callable[[Fib], object],
    base: Fib,
    probe_seed: int = 0,
) -> Callable[[Sequence[UpdateOp]], bool]:
    """True iff replaying the ops still yields a differential violation."""

    def fails(ops: Sequence[UpdateOp]) -> bool:
        algo, oracle = replay(factory, base, ops)
        checker = DifferentialChecker(base.width, seed=probe_seed)
        touched = []
        for op in ops:
            try:
                touched.append(op.resolve())
            except PrefixError:
                continue
        probes = checker.probe_addresses(touched)
        return bool(checker.check(algo, oracle, probes))

    return fails


def shrink_trace(
    ops: Sequence[UpdateOp],
    fails: Callable[[Sequence[UpdateOp]], bool],
    max_evals: int = 400,
) -> List[UpdateOp]:
    """ddmin: a minimal-ish sub-trace on which ``fails`` still holds.

    Classic delta debugging (Zeller & Hildebrandt): try dropping ever
    finer-grained chunks, restarting whenever a drop keeps the failure
    alive.  ``max_evals`` bounds the predicate calls so shrinking a
    huge trace cannot dominate a test run; the result is still a valid
    failing trace, just possibly not 1-minimal.
    """
    ops = list(ops)
    if not fails(ops):
        raise ValueError("trace does not fail; nothing to shrink")
    evals = 0
    granularity = 2
    while len(ops) >= 2 and evals < max_evals:
        chunk = math.ceil(len(ops) / granularity)
        reduced = False
        for start in range(0, len(ops), chunk):
            candidate = ops[:start] + ops[start + chunk:]
            evals += 1
            if candidate and fails(candidate):
                ops = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if evals >= max_evals:
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(len(ops), granularity * 2)
    return ops
