"""Pluggable fault injection for the managed FIB runtime.

Two families of faults, matching the two places real systems break:

* **Trace faults** corrupt the update stream before it reaches the
  runtime — malformed prefixes off the wire, withdrawals of routes
  that were never announced, the same withdrawal delivered twice.
  The runtime must *absorb* these at validation without corrupting
  the table.
* **Runtime faults** fire inside the data-structure update itself —
  a transient mid-update exception (lock timeout, parity hiccup) or a
  persistent one (a d-left bucket overflowing, which only a rebuild
  with fresh provisioning clears).  The runtime must *recover* via
  retry or rebuild-fallback.

Every injector owns a private ``random.Random(f"{name}:{seed}")``, so
adding or removing one fault never perturbs another's decisions and a
given (fault set, seed) pair replays identically.  Fault decisions for
a batch are fixed when the batch is armed, not when ops execute —
otherwise a retry would re-roll the dice and transient faults could
never be retried deterministically.

:mod:`repro.chaos` is this module's *dataplane* twin: the same
named-registry + seeded-stream idiom (``ChaosPlan.build(names, seed)``
mirrors :meth:`FaultPlan.build`), but its injectors break the serving
machinery — worker kills, in-batch exceptions, snapshot-ack faults —
instead of the update stream.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..prefix.prefix import Prefix
from .churn import ANNOUNCE, WITHDRAW, UpdateOp


class SimulatedFault(Exception):
    """An injected runtime failure.

    ``transient`` faults clear on retry (the runtime's backoff policy
    handles them); persistent faults reproduce on every in-place
    attempt and only a rebuild clears them.
    """

    def __init__(self, fault_name: str, message: str, transient: bool):
        super().__init__(f"[{fault_name}] {message}")
        self.fault_name = fault_name
        self.transient = transient


class FaultInjector:
    """Base class: a named, seeded, per-batch fault source."""

    name: str = "fault"
    #: Probability that this injector fires on a given batch.
    rate: float = 0.25

    def __init__(self, seed: int, rate: Optional[float] = None):
        if rate is not None:
            self.rate = rate
        self.rng = random.Random(f"{self.name}:{seed}")

    # Trace faults override this: return the (possibly mutated) batch.
    # Injected ops must carry ``fault=self.name`` so the runtime can
    # attribute absorptions.
    def mutate(self, batch_index: int, batch: List[UpdateOp]) -> List[UpdateOp]:
        return batch

    # Runtime faults override these.  ``arm`` fixes the batch's fault
    # decisions; ``should_raise`` is consulted per in-place op attempt
    # and must be a pure function of the armed state.
    def arm(self, batch_index: int, batch: List[UpdateOp]) -> bool:
        return False

    def should_raise(self, attempt: int, op_index: int) -> Optional[SimulatedFault]:
        return None


# ---------------------------------------------------------------------------
# Trace faults
# ---------------------------------------------------------------------------


class MalformedPrefixFault(FaultInjector):
    """Wire garbage: an announcement whose prefix cannot be built.

    ``UpdateOp.raw`` carries the bogus (bits, length, width) triple;
    resolving it raises :class:`~repro.prefix.prefix.PrefixError`.
    """

    name = "malformed_prefix"

    def mutate(self, batch_index: int, batch: List[UpdateOp]) -> List[UpdateOp]:
        if self.rng.random() >= self.rate or not batch:
            return batch
        width = 32
        for op in batch:
            if op.prefix is not None:
                width = op.prefix.width
                break
        bad = self.rng.choice([
            (self.rng.getrandbits(width + 4) | (1 << width), width, width),
            (1, 0, width),          # /0 with significant bits
            (0, width + 1, width),  # length beyond the address width
            (0, -2, width),         # negative length
            (0b1111, 2, width),     # more bits than the length holds
        ])
        op = UpdateOp(ANNOUNCE, None, self.rng.randrange(256), raw=bad,
                      fault=self.name)
        at = self.rng.randrange(len(batch) + 1)
        return batch[:at] + [op] + batch[at:]


class GhostWithdrawFault(FaultInjector):
    """A withdrawal for a route that was never announced."""

    name = "ghost_withdraw"

    def mutate(self, batch_index: int, batch: List[UpdateOp]) -> List[UpdateOp]:
        if self.rng.random() >= self.rate or not batch:
            return batch
        width = 32
        for op in batch:
            if op.prefix is not None:
                width = op.prefix.width
                break
        # A /31-or-longer prefix is vanishingly unlikely to be live in
        # the synthetic tables; build one from the injector's own rng.
        length = width - 1
        ghost = Prefix.from_bits(self.rng.getrandbits(length), length, width)
        op = UpdateOp(WITHDRAW, ghost, fault=self.name)
        at = self.rng.randrange(len(batch) + 1)
        return batch[:at] + [op] + batch[at:]


class DuplicateWithdrawFault(FaultInjector):
    """The same withdrawal delivered twice in one batch."""

    name = "duplicate_withdraw"

    def mutate(self, batch_index: int, batch: List[UpdateOp]) -> List[UpdateOp]:
        if self.rng.random() >= self.rate:
            return batch
        withdraw_at = [i for i, op in enumerate(batch)
                       if op.action == WITHDRAW and op.fault is None]
        if not withdraw_at:
            return batch
        i = self.rng.choice(withdraw_at)
        dup = UpdateOp(WITHDRAW, batch[i].prefix, fault=self.name)
        at = self.rng.randrange(i + 1, len(batch) + 1)
        return batch[:at] + [dup] + batch[at:]


# ---------------------------------------------------------------------------
# Runtime faults
# ---------------------------------------------------------------------------


class MidUpdateExceptionFault(FaultInjector):
    """A transient exception partway through applying a batch.

    Fires once on the first in-place attempt of an armed batch, at a
    fixed op position; retries sail past it.  Exercises the runtime's
    snapshot-rollback plus retry-with-backoff path.
    """

    name = "mid_update_exception"

    def __init__(self, seed: int, rate: Optional[float] = None):
        super().__init__(seed, rate)
        self._armed_at: Optional[int] = None

    def arm(self, batch_index: int, batch: List[UpdateOp]) -> bool:
        self._armed_at = None
        if batch and self.rng.random() < self.rate:
            self._armed_at = self.rng.randrange(len(batch))
            return True
        return False

    def should_raise(self, attempt: int, op_index: int) -> Optional[SimulatedFault]:
        if attempt == 0 and op_index == self._armed_at:
            return SimulatedFault(
                self.name, f"update engine fault at op {op_index}", transient=True
            )
        return None


class BucketOverflowFault(FaultInjector):
    """A d-left hash bucket overflows mid-batch.

    Persistent: every in-place attempt of an armed batch hits the same
    full bucket, so retries cannot help and the runtime must fall back
    to a recovery rebuild (which re-provisions the hash table).  This
    simulates the overflow RESAIL's look-aside TCAM normally hides
    (§5.3) when the TCAM itself is at capacity.
    """

    name = "bucket_overflow"

    def __init__(self, seed: int, rate: Optional[float] = None):
        super().__init__(seed, rate)
        self._armed_at: Optional[int] = None

    def arm(self, batch_index: int, batch: List[UpdateOp]) -> bool:
        self._armed_at = None
        announce_at = [i for i, op in enumerate(batch)
                       if op.action == ANNOUNCE and op.fault is None]
        if announce_at and self.rng.random() < self.rate:
            self._armed_at = self.rng.choice(announce_at)
            return True
        return False

    def should_raise(self, attempt: int, op_index: int) -> Optional[SimulatedFault]:
        if op_index == self._armed_at:
            return SimulatedFault(
                self.name, f"d-left bucket full inserting op {op_index}",
                transient=False,
            )
        return None


#: Registry, in a fixed order so "--faults all" is deterministic.
ALL_FAULTS: Dict[str, Type[FaultInjector]] = {
    cls.name: cls
    for cls in (
        MalformedPrefixFault,
        GhostWithdrawFault,
        DuplicateWithdrawFault,
        MidUpdateExceptionFault,
        BucketOverflowFault,
    )
}


class FaultPlan:
    """An ordered set of injectors sharing a base seed.

    The runtime drives it per batch: :meth:`mutate` first (trace
    faults), then :meth:`arm` (runtime faults), then
    :meth:`should_raise` per op attempt during in-place application.
    """

    def __init__(self, injectors: Sequence[FaultInjector]):
        self.injectors = list(injectors)

    @classmethod
    def build(cls, names: Sequence[str], seed: int,
              rate: Optional[float] = None) -> "FaultPlan":
        unknown = [n for n in names if n not in ALL_FAULTS]
        if unknown:
            raise ValueError(
                f"unknown faults {unknown}; available: {sorted(ALL_FAULTS)}"
            )
        return cls([ALL_FAULTS[n](seed, rate) for n in names])

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls([])

    def names(self) -> List[str]:
        """Active injector names, in order (for run sidecars/logs;
        the chaos harness reports its plan the same way)."""
        return [injector.name for injector in self.injectors]

    def mutate(self, batch_index: int, batch: List[UpdateOp]) -> List[UpdateOp]:
        for injector in self.injectors:
            batch = injector.mutate(batch_index, batch)
        return batch

    def arm(self, batch_index: int, batch: List[UpdateOp]) -> List[str]:
        """Fix runtime-fault decisions; returns the names that armed."""
        return [
            injector.name
            for injector in self.injectors
            if injector.arm(batch_index, batch)
        ]

    def should_raise(self, attempt: int, op_index: int) -> Optional[SimulatedFault]:
        for injector in self.injectors:
            fault = injector.should_raise(attempt, op_index)
            if fault is not None:
                return fault
        return None
