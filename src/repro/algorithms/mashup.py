"""MASHUP: a mashup of CAM and RAM trie nodes (§5).

MASHUP starts from a fixed-stride multibit trie and applies:

* **I1/I2 node hybridization** — each node is rendered in SRAM when
  its directly-indexed form costs less than ``3x`` the TCAM entries it
  would need (TCAM's area factor [82]); otherwise it becomes a TCAM
  node storing its un-expanded prefix segments plus child pointers;
* **I5 table coalescing** — the (often tiny) logical node tables of
  one level and memory kind merge into a single super-table,
  distinguished by tag bits, eliminating per-node block/page
  fragmentation;
* **I4 strategic cutting** — the stride vector mirrors the database's
  prefix-length spikes (§6.3): 16-4-4-8 for IPv4, 20-12-16-16 for
  IPv6.

Lookups follow Algorithm 3: at each level the current tag plus the
next stride bits probe either the level's TCAM or SRAM super-table;
hits report a next hop (remembered as best-so-far), a pointer, and the
next tag.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.idioms import (
    TCAM_AREA_FACTOR,
    Idiom,
    IdiomApplication,
    prefer_sram,
    tag_width,
)
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import exact_table, ternary_table
from ..memory.tcam import TcamTable
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from .base import UPDATE_IN_PLACE, LookupAlgorithm
from .multibit import SLOT_BITS, MultibitTrie, TrieNode

DEFAULT_IPV4_STRIDES = (16, 4, 4, 8)
DEFAULT_IPV6_STRIDES = (20, 12, 16, 16)

#: A node reference: (memory kind, tag within the level's super-table).
NodeRef = Tuple[str, int]


def default_strides(width: int) -> Tuple[int, ...]:
    """The paper's spike-mirroring stride choices (§6.3)."""
    if width == 32:
        return DEFAULT_IPV4_STRIDES
    if width == 64:
        return DEFAULT_IPV6_STRIDES
    raise ValueError(f"no default strides for width {width}")


class Mashup(LookupAlgorithm):
    """Behavioural MASHUP over a hybridized, coalesced multibit trie."""

    update_strategy = UPDATE_IN_PLACE

    def __init__(
        self,
        fib: Fib,
        strides: Optional[Sequence[int]] = None,
        area_factor: int = TCAM_AREA_FACTOR,
        coalesce: bool = True,
    ):
        strides = tuple(strides) if strides is not None else default_strides(fib.width)
        self.width = fib.width
        self.strides = strides
        self.area_factor = area_factor
        self.coalesce = coalesce
        self.name = f"MASHUP ({'-'.join(map(str, strides))})"
        self._trie = MultibitTrie(fib, strides)
        self._in_batch = False
        self._hybridize()

    # ------------------------------------------------------------------
    # Hybridization + coalescing (rebuilt after updates)
    # ------------------------------------------------------------------
    def _hybridize(self) -> None:
        levels = self._trie.nodes_by_level()
        self.default_hop = self._trie.default_hop

        #: Per level: kind and tag of every node, keyed by id(node).
        refs: Dict[int, NodeRef] = {}
        self.level_kinds: List[Dict[str, List[TrieNode]]] = []
        for level_nodes in levels:
            kinds: Dict[str, List[TrieNode]] = {"tcam": [], "sram": []}
            # Footnote 1's greedy order: largest tables first, smallest
            # last, so small tables fill the tail of the super-table.
            for node in sorted(level_nodes, key=lambda n: -n.tcam_items()):
                stride = node.stride
                kind = (
                    "sram"
                    if prefer_sram(1 << stride, node.tcam_items(), self.area_factor)
                    else "tcam"
                )
                refs[id(node)] = (kind, len(kinds[kind]))
                kinds[kind].append(node)
            self.level_kinds.append(kinds)

        self.root_ref: NodeRef = refs[id(self._trie.root)]
        #: Behavioural super-tables.
        self.tcam_levels: List[TcamTable] = []
        self.sram_levels: List[Dict[Tuple[int, int], Tuple[Optional[int], Optional[NodeRef]]]] = []
        for level, stride in enumerate(self.strides):
            kinds = self.level_kinds[level]
            tag_bits = tag_width(max(1, len(kinds["tcam"])))
            tcam = TcamTable(max(1, tag_bits + stride), name=f"tcam_L{level}")
            sram: Dict[Tuple[int, int], Tuple[Optional[int], Optional[NodeRef]]] = {}
            for tag, node in enumerate(kinds["tcam"]):
                self._fill_tcam_node(tcam, node, tag, tag_bits, refs)
            for tag, node in enumerate(kinds["sram"]):
                self._fill_sram_node(sram, node, tag, refs)
            self.tcam_levels.append(tcam)
            self.sram_levels.append(sram)

    def _child_ref(self, node: TrieNode, slot: int, refs: Dict[int, NodeRef]):
        child = node.children.get(slot)
        return refs[id(child)] if child is not None else None

    def _fill_tcam_node(
        self,
        tcam: TcamTable,
        node: TrieNode,
        tag: int,
        tag_bits: int,
        refs: Dict[int, NodeRef],
    ) -> None:
        stride = node.stride
        tag_mask = ((1 << tag_bits) - 1) << stride
        full = {bits for (bits, length) in node.segments if length == stride}
        for (bits, length), hop in node.segments.items():
            if length == stride and bits in node.children:
                continue  # merged with the child entry below
            value = (tag << stride) | (bits << (stride - length))
            mask = tag_mask | (((1 << length) - 1) << (stride - length))
            tcam.insert(value, mask, priority=stride - length, data=(hop, None))
        for slot, child in sorted(node.children.items()):
            value = (tag << stride) | slot
            mask = tag_mask | ((1 << stride) - 1)
            tcam.insert(value, mask, priority=0,
                        data=(node.hop_at(slot), refs[id(child)]))

    def _fill_sram_node(
        self,
        sram: Dict[Tuple[int, int], Tuple[Optional[int], Optional[NodeRef]]],
        node: TrieNode,
        tag: int,
        refs: Dict[int, NodeRef],
    ) -> None:
        slots = node.expanded_slots()
        for slot, child_node in node.children.items():
            slots.setdefault(slot, None)
        for slot, hop in slots.items():
            sram[(tag, slot)] = (hop, self._child_ref(node, slot, refs))

    # ------------------------------------------------------------------
    # Updates (Appendix A.3.3; re-hybridizes from the trie)
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        self._trie.insert(prefix, next_hop)
        if not self._in_batch:
            self._hybridize()

    def delete(self, prefix: Prefix) -> None:
        self._trie.delete(prefix)
        if not self._in_batch:
            self._hybridize()

    def begin_update_batch(self) -> None:
        """Defer re-hybridization until the whole batch has landed —
        the trie absorbs each update in place; the hybrid rendering is
        derived state that only the final trie needs."""
        self._in_batch = True

    def end_update_batch(self) -> None:
        self._in_batch = False
        self._hybridize()

    # ------------------------------------------------------------------
    # Lookup (Algorithm 3)
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        best = self.default_hop
        ref: Optional[NodeRef] = self.root_ref
        for level, stride in enumerate(self.strides):
            if ref is None:
                break
            base = self._trie.level_base[level]
            slot = (address >> (self.width - base - stride)) & ((1 << stride) - 1)
            kind, tag = ref
            if kind == "tcam":
                result = self.tcam_levels[level].search((tag << stride) | slot)
            else:
                result = self.sram_levels[level].get((tag, slot))
            if result is None:
                return best
            hop, child = result
            if hop is not None:
                best = hop
            ref = child
        return best

    # ------------------------------------------------------------------
    # CRAM model: per level, a TCAM and an SRAM step in parallel
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        registers = ["addr"]
        for i in range(len(self.strides)):
            registers += [f"t_fired_{i}", f"s_fired_{i}",
                          f"t_best_{i}", f"s_best_{i}",
                          f"t_next_{i}", f"s_next_{i}"]
        prog = CramProgram("MASHUP", registers=registers)

        def prev_state(state: dict, level: int):
            """(ref, best) handed to `level` by the fired side above it."""
            if level == 0:
                return self.root_ref, self.default_hop
            if state.get(f"t_fired_{level - 1}"):
                return state.get(f"t_next_{level - 1}"), state.get(f"t_best_{level - 1}")
            if state.get(f"s_fired_{level - 1}"):
                return state.get(f"s_next_{level - 1}"), state.get(f"s_best_{level - 1}")
            return None, None

        prev_names: List[str] = []
        for level, stride in enumerate(self.strides):
            base = self._trie.level_base[level]
            kinds = self.level_kinds[level]
            tag_bits = tag_width(max(1, len(kinds["tcam"])))
            sram_level = self.sram_levels[level]
            tcam_level = self.tcam_levels[level]

            def make_selector(side: str, level=level, stride=stride, base=base):
                def selector(state: dict):
                    ref, _best = prev_state(state, level)
                    if ref is None or ref[0] != side:
                        return None
                    slot = (state["addr"] >> (self.width - base - stride)) & (
                        (1 << stride) - 1
                    )
                    return (ref[1] << stride) | slot if side == "tcam" else (ref[1], slot)

                return selector

            def make_act(side: str, level=level):
                def act(state: dict, result) -> None:
                    ref, carried = prev_state(state, level)
                    if ref is None or ref[0] != side:
                        return
                    state[f"{side[0]}_fired_{level}"] = 1
                    if result is None:
                        state[f"{side[0]}_best_{level}"] = carried
                        state[f"{side[0]}_next_{level}"] = None
                        return
                    hop, child = result
                    state[f"{side[0]}_best_{level}"] = hop if hop is not None else carried
                    state[f"{side[0]}_next_{level}"] = child

                return act

            reads = ["addr"] + [
                f"{p}_{level - 1}"
                for p in ("t_fired", "s_fired", "t_next", "s_next", "t_best", "s_best")
                if level > 0
            ]
            tcam_spec = ternary_table(
                f"tcam_L{level}", max(1, tag_bits + stride),
                len(tcam_level), SLOT_BITS,
                key_selector=make_selector("tcam"), backing=tcam_level,
            )
            sram_spec = exact_table(
                f"sram_L{level}", 0,
                sum(1 << n.stride for n in kinds["sram"]), SLOT_BITS,
                key_selector=make_selector("sram"),
                backing=lambda key, sram_level=sram_level: sram_level.get(key),
            )
            t_step = Step(f"tcam_L{level}", table=tcam_spec, reads=reads,
                          writes=[f"t_fired_{level}", f"t_best_{level}", f"t_next_{level}"],
                          action=make_act("tcam"))
            s_step = Step(f"sram_L{level}", table=sram_spec, reads=reads,
                          writes=[f"s_fired_{level}", f"s_best_{level}", f"s_next_{level}"],
                          action=make_act("sram"))
            prog.add_step(t_step, after=prev_names)
            prog.add_step(s_step, after=prev_names)
            prev_names = [t_step.name, s_step.name]

        def final_hop(state: dict) -> Optional[int]:
            for level in range(len(self.strides) - 1, -1, -1):
                if state.get(f"t_fired_{level}"):
                    return state.get(f"t_best_{level}")
                if state.get(f"s_fired_{level}"):
                    return state.get(f"s_best_{level}")
            return self.default_hop

        prog.deparser = final_hop
        return prog

    def cram_extract_hop(self, state: dict) -> Optional[int]:
        for level in range(len(self.strides) - 1, -1, -1):
            if state.get(f"t_fired_{level}"):
                return state.get(f"t_best_{level}")
            if state.get(f"s_fired_{level}"):
                return state.get(f"s_best_{level}")
        return self.default_hop

    # ------------------------------------------------------------------
    # Vector lowering (the lane compiler)
    # ------------------------------------------------------------------
    # Int64 lane encodings.  A table result (hop, child) packs as
    #   bits 0..23   hop value          bit 24  hop present
    #   bits 25..26  child kind (0 none, 1 tcam, 2 sram)
    #   bits 27..50  child tag
    # and a NodeRef register as (kind << 40) | tag with the same kind
    # codes — the next level's selector splits it back apart.
    _HOP_BITS = 24
    _TAG_BITS = 24
    _KIND_SHIFT = 25
    _TAG_SHIFT = 27
    _REF_KIND_SHIFT = 40
    _KIND_CODE = {"tcam": 1, "sram": 2}

    def _encode_result(self, data) -> Optional[int]:
        hop, child = data
        code = 0
        if hop is not None:
            if not 0 <= int(hop) < (1 << self._HOP_BITS):
                return None
            code |= (1 << self._HOP_BITS) | int(hop)
        if child is not None:
            kind, tag = child
            if not 0 <= tag < (1 << self._TAG_BITS):
                return None
            code |= (self._KIND_CODE[kind] << self._KIND_SHIFT) | (
                tag << self._TAG_SHIFT)
        return code

    def _encode_ref(self, ref: Optional[NodeRef]) -> Optional[int]:
        if ref is None:
            return None
        kind, tag = ref
        return (self._KIND_CODE[kind] << self._REF_KIND_SHIFT) | tag

    def vector_specs(self):
        """Lower Algorithm 3 to lane kernels, all levels or nothing.

        NodeRefs and (hop, child) results live as packed int64 codes;
        the TCAM super-tables lower through their own vector views and
        the SRAM super-tables through sorted ``(tag << stride) | slot``
        probes.  All-or-nothing: a mixed compilation would interleave
        the scalar bridge (tuple refs) with kernels (packed codes) on
        the same registers, so any un-encodable piece bridges the whole
        program instead.
        """
        import numpy as np

        from ..core.vector import SparseMapView, VectorStepSpec

        views = []
        for level, stride in enumerate(self.strides):
            tcam_view = self.tcam_levels[level].vector_reader(
                encode=self._encode_result)
            if tcam_view is None:
                return {}
            items = []
            for (tag, slot), data in self.sram_levels[level].items():
                code = self._encode_result(data)
                if code is None:
                    return {}
                items.append(((tag << stride) | slot, code))
            items.sort()
            sram_view = SparseMapView(
                np.array([k for k, _v in items], dtype=np.int64),
                np.array([v for _k, v in items], dtype=np.int64),
            )
            views.append((tcam_view, sram_view))

        root_code = self._encode_ref(self.root_ref)
        default_hop = self.default_hop
        hop_mask = (1 << self._HOP_BITS) - 1
        ref_tag_mask = (1 << self._REF_KIND_SHIFT) - 1
        kind_shift = self._KIND_SHIFT
        tag_shift = self._TAG_SHIFT
        tag_mask = (1 << self._TAG_BITS) - 1
        ref_kind_shift = self._REF_KIND_SHIFT

        def prev_ref(lanes, level):
            """Vector ``prev_state``: (ref codes, ref none, carried
            best values, carried none)."""
            if level == 0:
                ref_vals = np.full(lanes.n, root_code, dtype=np.int64)
                ref_none = np.zeros(lanes.n, dtype=bool)
                if default_hop is None:
                    carried = np.zeros(lanes.n, dtype=np.int64)
                    carried_none = np.ones(lanes.n, dtype=bool)
                else:
                    carried = np.full(lanes.n, default_hop, dtype=np.int64)
                    carried_none = np.zeros(lanes.n, dtype=bool)
                return ref_vals, ref_none, carried, carried_none
            t_f = lanes.truthy(f"t_fired_{level - 1}")
            s_f = ~t_f & lanes.truthy(f"s_fired_{level - 1}")
            t_next = lanes.values(f"t_next_{level - 1}")
            s_next = lanes.values(f"s_next_{level - 1}")
            ref_vals = np.where(t_f, t_next, np.where(s_f, s_next, 0))
            ref_none = np.where(
                t_f, lanes.is_none(f"t_next_{level - 1}"),
                np.where(s_f, lanes.is_none(f"s_next_{level - 1}"), True))
            carried = np.where(
                t_f, lanes.values(f"t_best_{level - 1}"),
                np.where(s_f, lanes.values(f"s_best_{level - 1}"), 0))
            carried_none = np.where(
                t_f, lanes.is_none(f"t_best_{level - 1}"),
                np.where(s_f, lanes.is_none(f"s_best_{level - 1}"), True))
            return ref_vals, ref_none, carried, carried_none

        specs = {}
        for level, stride in enumerate(self.strides):
            base = self._trie.level_base[level]
            addr_shift = self.width - base - stride
            slot_mask = (1 << stride) - 1

            def make_side(side, level=level, stride=stride,
                          addr_shift=addr_shift, slot_mask=slot_mask):
                side_code = self._KIND_CODE[side]
                reg = side[0]

                def select(lanes):
                    ref_vals, ref_none, _c, _cn = prev_ref(lanes, level)
                    mine = ~ref_none & (
                        (ref_vals >> ref_kind_shift) == side_code)
                    slot = (lanes.values("addr") >> addr_shift) & slot_mask
                    keys = ((ref_vals & ref_tag_mask) << stride) | slot
                    return keys, mine

                def update(lanes, vals, found, active):
                    _rv, _rn, carried, carried_none = prev_ref(lanes, level)
                    fired = active
                    lanes.assign(f"{reg}_fired_{level}",
                                 np.where(fired, 1, 0), none=~fired)
                    hop_present = found & (
                        ((vals >> self._HOP_BITS) & 1) == 1)
                    lanes.assign(
                        f"{reg}_best_{level}",
                        np.where(hop_present, vals & hop_mask, carried),
                        none=~fired | (~hop_present & carried_none))
                    kindb = (vals >> kind_shift) & 3
                    lanes.assign(
                        f"{reg}_next_{level}",
                        (kindb << ref_kind_shift) | (
                            (vals >> tag_shift) & tag_mask),
                        none=~fired | (kindb == 0))

                return VectorStepSpec(
                    update=update, select=select,
                    reader=views[level][0 if side == "tcam" else 1])

            specs[f"tcam_L{level}"] = make_side("tcam")
            specs[f"sram_L{level}"] = make_side("sram")
        return specs

    def vector_extract_hop(self, lanes):
        import numpy as np

        vals = np.zeros(lanes.n, dtype=np.int64)
        none = np.ones(lanes.n, dtype=bool)
        undecided = np.ones(lanes.n, dtype=bool)
        for level in range(len(self.strides) - 1, -1, -1):
            for reg in ("t", "s"):
                fired = undecided & lanes.truthy(f"{reg}_fired_{level}")
                np.copyto(vals, lanes.values(f"{reg}_best_{level}"),
                          where=fired)
                np.copyto(none, lanes.is_none(f"{reg}_best_{level}"),
                          where=fired)
                undecided &= ~fired
        if self.default_hop is not None:
            vals[undecided] = self.default_hop
            none[undecided] = False
        vals[none] = 0
        return vals, none

    # ------------------------------------------------------------------
    # Chip layout
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        phases = []
        for level, stride in enumerate(self.strides):
            kinds = self.level_kinds[level]
            tables: List[LogicalTable] = []
            if self.coalesce:
                tag_bits = tag_width(max(1, len(kinds["tcam"])))
                tcam_entries = sum(n.tcam_items() for n in kinds["tcam"])
                if tcam_entries:
                    tables.append(LogicalTable(
                        f"tcam_L{level}", MemoryKind.TCAM, entries=tcam_entries,
                        key_width=tag_bits + stride, data_width=SLOT_BITS,
                    ))
                sram_entries = sum(1 << n.stride for n in kinds["sram"])
                if sram_entries:
                    tables.append(LogicalTable(
                        f"sram_L{level}", MemoryKind.SRAM, entries=sram_entries,
                        key_width=0, data_width=SLOT_BITS,
                    ))
            else:
                # Ablation: one physical table per node — the
                # fragmentation I5 exists to remove.
                for i, node in enumerate(kinds["tcam"]):
                    tables.append(LogicalTable(
                        f"tcam_L{level}_n{i}", MemoryKind.TCAM,
                        entries=node.tcam_items(), key_width=stride,
                        data_width=SLOT_BITS,
                    ))
                for i, node in enumerate(kinds["sram"]):
                    tables.append(LogicalTable(
                        f"sram_L{level}_n{i}", MemoryKind.SRAM,
                        entries=1 << node.stride, key_width=0,
                        data_width=SLOT_BITS,
                    ))
            phases.append(Phase(f"level {level}", tables, dependent_alu_ops=1))
        return Layout(self.name, phases)

    def idioms_applied(self) -> List[IdiomApplication]:
        return [
            IdiomApplication(Idiom.COMPRESS_WITH_TCAM, "sparse trie nodes",
                             "wildcard segments stored unexpanded"),
            IdiomApplication(Idiom.EXPAND_TO_SRAM, "dense trie nodes",
                             f"SRAM when expansion < {self.area_factor}x"),
            IdiomApplication(Idiom.TABLE_COALESCING, "per-level node tables",
                             "tagged super-tables, no fragmentation"),
            IdiomApplication(Idiom.STRATEGIC_CUTTING, "strides",
                             "cuts mirror the length-distribution spikes"),
        ]
