"""DXR (Zec, Rizzo & Mikuc [89]): the range-search baseline (§4).

DXR converts prefixes to sorted ranges and binary-searches them.  An
initial lookup table directly indexed by the first ``k`` address bits
(D16R: k=16) narrows the search to one slice's section of the global
range table, after two optimizations: neighbouring ranges with equal
next hops are merged, and right endpoints are discarded.

DXR is fast *software*; on RMT chips its single range table would be
accessed once per binary-search probe, violating the one-access-per-
table rule — the paper's motivation for BSIC's memory fan-out (I8).
:meth:`Dxr.layout` therefore returns the only legal RMT rendering,
with the range table duplicated per search level (the "infeasible
26.73 MB" §4.1 mentions); :attr:`Dxr.single_table_sram_bits` exposes
the software footprint for the ablation bench.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import direct_index_table, exact_table
from ..prefix.prefix import Prefix
from ..prefix.ranges import RangeEntry, expand_to_ranges
from ..prefix.trie import BinaryTrie, Fib
from .base import LookupAlgorithm, UpdateUnsupported

NEXT_HOP_BITS = 8
POINTER_BITS = 20
#: Initial-table slot: next hop or section pointer + length (paper: the
#: D16R table is 0.25 MB = 2**16 x 32 bits).
INITIAL_SLOT_BITS = 32
#: A short-prefix delta op covers ``2**(k - length)`` slices; beyond
#: this many covered bits a rebuild is cheaper than slice-by-slice
#: patching, so :meth:`Dxr.apply_delta_op` declines.
MAX_SHORT_DELTA_BITS = 10


class Dxr(LookupAlgorithm):
    """Behavioural D-k-R with a single global range table.

    Route-by-route :meth:`insert`/:meth:`delete` stay unsupported (the
    merged, right-endpoint-discarded range table has no sensible
    per-route mutation), but whole *delta batches* apply incrementally:
    the build keeps its short-prefix trie and per-slice suffix groups,
    so a delta op re-derives only the covered slices' sections.  Fresh
    sections append to the global range table (pointers are per-slice,
    so stale rows are simply unreachable); the dead rows are compacted
    away once they outnumber the live ones.
    """

    supports_delta = True

    def __init__(self, fib: Fib, k: int = 16):
        if not 1 <= k < fib.width:
            raise ValueError(f"k {k} outside [1, {fib.width})")
        self.width = fib.width
        self.k = k
        self.name = f"DXR (k={k})"
        self.suffix_bits = fib.width - k

        #: Prefixes of length <= k: slice defaults (kept for deltas).
        self._shorts = BinaryTrie(fib.width)
        #: slice -> {(suffix bits, suffix length): (suffix, hop)}.
        self._groups: Dict[int, Dict[Tuple[int, int], Tuple[Prefix, int]]] = {}
        for prefix, hop in fib:
            if prefix.length <= self.k:
                self._shorts.insert(prefix, hop)
            else:
                slice_bits = prefix.slice(0, self.k)
                suffix = self._suffix_of(prefix)
                self._groups.setdefault(slice_bits, {})[
                    (suffix.bits, suffix.length)] = (suffix, hop)

        #: Global merged range table; sections are contiguous.
        self.ranges: List[RangeEntry] = []
        #: Slice -> ('hop', hop) | ('section', start, count) | None.
        self.initial: List[Optional[Tuple]] = [None] * (1 << self.k)
        #: Rows in self.ranges no slice points at any more.
        self._dead_ranges = 0
        for slice_bits in range(1 << self.k):
            default = self._shorts.lookup(slice_bits << self.suffix_bits)
            group = self._groups.get(slice_bits)
            if not group:
                if default is not None:
                    self.initial[slice_bits] = ("hop", default)
                continue
            section = expand_to_ranges(
                list(group.values()), self.suffix_bits, default_hop=default)
            start = len(self.ranges)
            self.ranges.extend(section)
            self.initial[slice_bits] = ("section", start, len(section))

        self.max_section = max(
            (entry[2] for entry in self.initial if entry and entry[0] == "section"),
            default=0,
        )
        self._build_mirrors()

    def _suffix_of(self, prefix: Prefix) -> Prefix:
        """Re-express a long prefix's suffix in the (width - k)-bit space."""
        return Prefix.from_bits(
            prefix.bits & ((1 << (prefix.length - self.k)) - 1),
            prefix.length - self.k,
            self.suffix_bits,
        )

    # ------------------------------------------------------------------
    @property
    def search_depth(self) -> int:
        """Binary-search probes needed for the largest section."""
        return max(1, math.ceil(math.log2(self.max_section + 1))) if self.max_section else 0

    @property
    def single_table_sram_bits(self) -> int:
        """Software DXR footprint: initial table + one range table."""
        range_bits = len(self.ranges) * (self.suffix_bits + NEXT_HOP_BITS)
        return (1 << self.k) * INITIAL_SLOT_BITS + range_bits

    # ------------------------------------------------------------------
    # Updates: unsupported — DXR's merged, right-endpoint-discarded
    # range table cannot take a single route in place; the managed
    # runtime rebuilds from the FIB instead.
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        raise UpdateUnsupported(
            f"{self.name}: the merged range table has no in-place insert; "
            "rebuild from the FIB"
        )

    def delete(self, prefix: Prefix) -> None:
        raise UpdateUnsupported(
            f"{self.name}: the merged range table has no in-place delete; "
            "rebuild from the FIB"
        )

    # ------------------------------------------------------------------
    # Delta batches: per-slice section re-derivation
    # ------------------------------------------------------------------
    def apply_delta_op(self, op) -> None:
        from ..control.churn import ANNOUNCE

        prefix = op.prefix
        self._check_prefix(prefix)
        announce = op.action == ANNOUNCE
        if not announce and op.prev_hop is None:
            return  # withdraw of an absent prefix: no-op
        if prefix.length > self.k:
            slice_bits = prefix.slice(0, self.k)
            suffix = self._suffix_of(prefix)
            key = (suffix.bits, suffix.length)
            group = self._groups.setdefault(slice_bits, {})
            if announce:
                group[key] = (suffix, op.next_hop)
            else:
                group.pop(key, None)
                if not group:
                    del self._groups[slice_bits]
            self._rebuild_slice(slice_bits)
            return
        # Short prefix: the inherited default of every covered slice
        # changes.  Very broad prefixes cover too many slices to be
        # worth patching — decline, and the runtime rebuilds instead.
        covered = self.k - prefix.length
        if covered > MAX_SHORT_DELTA_BITS:
            raise UpdateUnsupported(
                f"{self.name}: /{prefix.length} covers 2**{covered} slices; "
                "rebuild instead"
            )
        if announce:
            self._shorts.insert(prefix, op.next_hop)
        else:
            self._shorts.delete(prefix)
        base = prefix.bits << covered
        for slice_bits in range(base, base + (1 << covered)):
            self._rebuild_slice(slice_bits)

    def end_update_batch(self) -> None:
        live = len(self.ranges) - self._dead_ranges
        if self._dead_ranges > max(64, live):
            self._compact_ranges()

    def _rebuild_slice(self, slice_bits: int) -> None:
        """Re-derive one slice's initial entry (and range section)."""
        old = self.initial[slice_bits]
        if old is not None and old[0] == "section":
            self._dead_ranges += old[2]
        default = self._shorts.lookup(slice_bits << self.suffix_bits)
        group = self._groups.get(slice_bits)
        if not group:
            entry = ("hop", default) if default is not None else None
        else:
            section = expand_to_ranges(
                list(group.values()), self.suffix_bits, default_hop=default)
            start = len(self.ranges)
            self.ranges.extend(section)
            entry = ("section", start, len(section))
            # Monotone: search_depth never shrinks mid-flight, so an
            # already-compiled probe chain stays deep enough.
            self.max_section = max(self.max_section, len(section))
            self._mirror_extend(section)
        self.initial[slice_bits] = entry
        self._mirror_initial_slot(slice_bits)

    def _compact_ranges(self) -> None:
        """Drop unreachable rows, rewriting every section pointer."""
        compacted: List[RangeEntry] = []
        for slot, entry in enumerate(self.initial):
            if entry is None or entry[0] != "section":
                continue
            _tag, start, count = entry
            new_start = len(compacted)
            compacted.extend(self.ranges[start:start + count])
            self.initial[slot] = ("section", new_start, count)
        self.ranges = compacted
        self._dead_ranges = 0
        self._build_mirrors()

    # ------------------------------------------------------------------
    # NumPy mirrors of the initial and range tables, maintained
    # incrementally so vector patching is O(delta), not O(table)
    # ------------------------------------------------------------------
    def _build_mirrors(self) -> None:
        size = 1 << self.k
        self._mirror_kind = np.zeros(size, dtype=np.int64)
        self._mirror_a = np.zeros(size, dtype=np.int64)
        self._mirror_b = np.zeros(size, dtype=np.int64)
        for slot, entry in enumerate(self.initial):
            if entry is not None:
                self._mirror_initial_slot(slot)
        n = len(self.ranges)
        cap = max(64, n)
        self._mirror_left = np.zeros(cap, dtype=np.int64)
        self._mirror_hops = np.zeros(cap, dtype=np.int64)
        self._mirror_hopnone = np.zeros(cap, dtype=bool)
        for row, r in enumerate(self.ranges):
            self._mirror_left[row] = r.left
            self._mirror_hops[row] = 0 if r.next_hop is None else r.next_hop
            self._mirror_hopnone[row] = r.next_hop is None

    def _mirror_initial_slot(self, slot: int) -> None:
        entry = self.initial[slot]
        if entry is None:
            kind = a = b = 0
        elif entry[0] == "hop":
            kind, a, b = 1, entry[1], 0
        else:
            kind, a, b = 2, entry[1], entry[2]
        self._mirror_kind[slot] = kind
        self._mirror_a[slot] = a
        self._mirror_b[slot] = b

    def _mirror_extend(self, section: List[RangeEntry]) -> None:
        n = len(self.ranges)  # section already appended
        cap = self._mirror_left.size
        if n > cap:
            while cap < n:
                cap *= 2
            for attr in ("_mirror_left", "_mirror_hops", "_mirror_hopnone"):
                old = getattr(self, attr)
                grown = np.zeros(cap, dtype=old.dtype)
                grown[:old.size] = old
                setattr(self, attr, grown)
        start = n - len(section)
        for offset, r in enumerate(section):
            row = start + offset
            self._mirror_left[row] = r.left
            self._mirror_hops[row] = 0 if r.next_hop is None else r.next_hop
            self._mirror_hopnone[row] = r.next_hop is None

    # ------------------------------------------------------------------
    # Artifact state (repro.artifact warm starts)
    # ------------------------------------------------------------------
    def state_export(self):
        """The merged range table, initial-table mirrors, and the
        delta-maintenance sources (shorts trie + suffix groups).
        Importing skips the per-slice ``expand_to_ranges`` sweep over
        all ``2**k`` slices."""
        n = len(self.ranges)
        groups = []
        for slice_bits in sorted(self._groups):
            for (sbits, slen), (_suffix, hop) in sorted(
                    self._groups[slice_bits].items()):
                groups.append((slice_bits, sbits, slen, hop))
        arrays = {
            "mirror_kind": self._mirror_kind,
            "mirror_a": self._mirror_a,
            "mirror_b": self._mirror_b,
            "range_left": self._mirror_left[:n],
            "range_hops": self._mirror_hops[:n],
            "range_hopnone": self._mirror_hopnone[:n],
            "shorts": np.array(
                sorted((p.bits, p.length, h)
                       for p, h in self._shorts.items()),
                dtype=np.int64).reshape(-1, 3),
            "groups": np.array(groups, dtype=np.int64).reshape(-1, 4),
        }
        meta = {"k": self.k, "width": self.width,
                "max_section": self.max_section,
                "dead_ranges": self._dead_ranges}
        return meta, arrays

    @classmethod
    def state_import(cls, meta, arrays) -> "Dxr":
        obj = cls.__new__(cls)
        obj.width = int(meta["width"])
        obj.k = int(meta["k"])
        obj.name = f"DXR (k={obj.k})"
        obj.suffix_bits = obj.width - obj.k
        obj._shorts = BinaryTrie(obj.width)
        for bits, length, hop in arrays["shorts"]:
            obj._shorts.insert(
                Prefix.from_bits(int(bits), int(length), obj.width),
                int(hop))
        obj._groups = {}
        for slice_bits, sbits, slen, hop in arrays["groups"]:
            suffix = Prefix.from_bits(int(sbits), int(slen), obj.suffix_bits)
            obj._groups.setdefault(int(slice_bits), {})[
                (int(sbits), int(slen))] = (suffix, int(hop))
        left = arrays["range_left"]
        hops = arrays["range_hops"]
        hopnone = arrays["range_hopnone"]
        obj.ranges = [
            RangeEntry(int(left[row]),
                       None if hopnone[row] else int(hops[row]))
            for row in range(left.size)]
        kind = arrays["mirror_kind"]
        a = arrays["mirror_a"]
        b = arrays["mirror_b"]
        obj.initial = [
            None if kind[slot] == 0
            else ("hop", int(a[slot])) if kind[slot] == 1
            else ("section", int(a[slot]), int(b[slot]))
            for slot in range(1 << obj.k)]
        obj._dead_ranges = int(meta["dead_ranges"])
        obj.max_section = int(meta["max_section"])
        # Adopt the mapped mirrors (copy-on-write pages) directly; the
        # range mirrors re-pad to the growth capacity _build_mirrors
        # would have picked.
        obj._mirror_kind = np.asarray(kind)
        obj._mirror_a = np.asarray(a)
        obj._mirror_b = np.asarray(b)
        cap = max(64, left.size)
        obj._mirror_left = np.zeros(cap, dtype=np.int64)
        obj._mirror_hops = np.zeros(cap, dtype=np.int64)
        obj._mirror_hopnone = np.zeros(cap, dtype=bool)
        obj._mirror_left[:left.size] = left
        obj._mirror_hops[:left.size] = hops
        obj._mirror_hopnone[:left.size] = (
            hopnone.view(np.bool_) if hopnone.dtype == np.uint8 else hopnone)
        return obj

    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        entry = self.initial[address >> self.suffix_bits]
        if entry is None:
            return None
        if entry[0] == "hop":
            return entry[1]
        _tag, start, count = entry
        key = address & ((1 << self.suffix_bits) - 1)
        lo, hi = start, start + count - 1
        best = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.ranges[mid].left <= key:
                best = self.ranges[mid].next_hop
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    # ------------------------------------------------------------------
    # CRAM model (Figure 6a: one range table, probed repeatedly)
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        prog = CramProgram(
            "DXR",
            registers=["addr", "lo", "hi", "best", "done", "key"],
        )
        initial = direct_index_table(
            "initial", self.k, INITIAL_SLOT_BITS,
            key_selector=lambda s: s["addr"] >> self.suffix_bits,
            backing=lambda i: self.initial[i],
        )

        def init_act(state: dict, result) -> None:
            state["key"] = state["addr"] & ((1 << self.suffix_bits) - 1)
            if result is None:
                state["done"] = 1
            elif result[0] == "hop":
                state["best"], state["done"] = result[1], 1
            else:
                state["lo"], state["hi"] = result[1], result[1] + result[2] - 1

        prog.add_step(Step("initial", table=initial, reads=["addr"],
                           writes=["lo", "hi", "best", "done", "key"],
                           action=init_act))

        # ONE physical range table, probed once per search level — the
        # RAM-model luxury that RMT chips disallow (idiom I8's target).
        # Pointer-addressed: no stored keys, rows are endpoint + hop.
        range_table = exact_table(
            "ranges", 0, len(self.ranges),
            self.suffix_bits + NEXT_HOP_BITS,
            key_selector=lambda s: (
                None if s.get("done") or s.get("lo") is None or s["lo"] > s["hi"]
                else (s["lo"] + s["hi"]) // 2
            ),
            backing=lambda mid: self.ranges[mid],
        )

        def probe_act(state: dict, result) -> None:
            if result is None:
                return
            mid = (state["lo"] + state["hi"]) // 2
            if result.left <= state["key"]:
                state["best"] = result.next_hop
                state["lo"] = mid + 1
            else:
                state["hi"] = mid - 1

        previous = "initial"
        for level in range(self.search_depth):
            step = Step(f"probe_{level}", table=range_table,
                        reads=["lo", "hi", "key", "done", "best"],
                        writes=["lo", "hi", "best"], action=probe_act)
            prog.add_step(step, after=[previous])
            previous = step.name
        return prog

    def cram_extract_hop(self, state: dict) -> Optional[int]:
        return state.get("best")

    # ------------------------------------------------------------------
    # Compiled plans: frozen snapshot readers + delta patching
    # ------------------------------------------------------------------
    def plan_backings(self):
        """Frozen list snapshots of the initial and range tables, so an
        in-place delta never leaks into an already-compiled plan."""
        initial = list(self.initial)
        ranges = list(self.ranges)
        backings = {"initial": initial.__getitem__}
        for level in range(self.search_depth):
            backings[f"probe_{level}"] = ranges.__getitem__
        return backings

    def _probe_steps(self, step_names):
        return [name for name in step_names if name.startswith("probe_")]

    def plan_patch(self, delta, plan):
        probes = self._probe_steps(plan.step_names)
        if self.search_depth > len(probes):
            return None  # the compiled probe chain is too shallow now
        # Sections append (and compaction rewrites pointers), so every
        # probe level and the initial table refresh together.
        initial = list(self.initial)
        ranges = list(self.ranges)
        readers = {"initial": initial.__getitem__}
        for name in probes:
            readers[name] = ranges.__getitem__
        return readers

    def vector_patch(self, delta, vector_plan):
        probes = self._probe_steps(vector_plan.plan.step_names)
        if self.search_depth > len(probes):
            return None
        specs = {"initial": self._vector_initial_spec()}
        make_probe = self._vector_probe_spec_factory()
        for name in probes:
            specs[name] = make_probe()
        return specs

    # ------------------------------------------------------------------
    # Lane compiler (repro.core.vector): every step fully lowered
    # ------------------------------------------------------------------
    def vector_specs(self):
        specs = {"initial": self._vector_initial_spec()}
        make_probe = self._vector_probe_spec_factory()
        for level in range(self.search_depth):
            specs[f"probe_{level}"] = make_probe()
        return specs

    def _vector_initial_spec(self):
        from ..core.vector import VectorStepSpec

        # Initial table as parallel kind/a/b arrays:
        # kind 0 = empty, 1 = ('hop', a), 2 = ('section', a, count=b).
        # Copies freeze the incrementally-maintained mirrors.
        kind = self._mirror_kind.copy()
        a = self._mirror_a.copy()
        b = self._mirror_b.copy()
        suffix_mask = (1 << self.suffix_bits) - 1

        def init_update(lanes, vals, found, active):
            slot = lanes.values("addr") >> self.suffix_bits
            lanes.assign("key", lanes.values("addr") & suffix_mask)
            section = kind[slot] == 2
            hop = kind[slot] == 1
            # Non-section lanes finish here; section lanes keep done=None
            # (the base state), exactly as the scalar action leaves it.
            lanes.assign("done", np.where(section, 0, 1), none=section)
            lanes.assign("best", np.where(hop, a[slot], 0), none=~hop)
            lanes.assign("lo", np.where(section, a[slot], 0), none=~section)
            lanes.assign("hi", np.where(section, a[slot] + b[slot] - 1, 0),
                         none=~section)

        return VectorStepSpec(init_update)

    def _vector_probe_spec_factory(self):
        from ..core.vector import VectorStepSpec

        # The global range table as left-endpoint / hop columns; one
        # shared update closure drives every binary-search level.
        n = len(self.ranges)
        left = self._mirror_left[:n].copy()
        hops = self._mirror_hops[:n].copy()
        hop_none = self._mirror_hopnone[:n].copy()

        def probe_update(lanes, vals, found, active):
            lo = lanes.values("lo")
            hi = lanes.values("hi")
            searching = (~lanes.truthy("done") & lanes.present("lo")
                         & (lo <= hi))
            mid = np.where(searching, (lo + hi) >> 1, 0)
            le = searching & (left[mid] <= lanes.values("key"))
            lanes.assign_where("best", le, hops[mid], none=hop_none[mid])
            lanes.assign_where("lo", le, mid + 1)
            lanes.assign_where("hi", searching & ~le, mid - 1)

        return lambda: VectorStepSpec(probe_update)

    def vector_extract_hop(self, lanes):
        return lanes.values("best"), lanes.is_none("best")

    # ------------------------------------------------------------------
    # Chip layout: legal only with the range table duplicated per level
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        initial = LogicalTable(
            "initial", MemoryKind.SRAM, entries=1 << self.k, key_width=self.k,
            data_width=INITIAL_SLOT_BITS, direct_index=True,
        )
        phases = [Phase("initial table", [initial], dependent_alu_ops=1)]
        entry_bits = self.suffix_bits + NEXT_HOP_BITS
        for level in range(self.search_depth):
            duplicate = LogicalTable(
                f"ranges (copy {level})", MemoryKind.SRAM,
                entries=len(self.ranges), key_width=0, data_width=entry_bits,
            )
            phases.append(Phase(f"probe {level}", [duplicate], dependent_alu_ops=2))
        return Layout(self.name, phases)
