"""DXR (Zec, Rizzo & Mikuc [89]): the range-search baseline (§4).

DXR converts prefixes to sorted ranges and binary-searches them.  An
initial lookup table directly indexed by the first ``k`` address bits
(D16R: k=16) narrows the search to one slice's section of the global
range table, after two optimizations: neighbouring ranges with equal
next hops are merged, and right endpoints are discarded.

DXR is fast *software*; on RMT chips its single range table would be
accessed once per binary-search probe, violating the one-access-per-
table rule — the paper's motivation for BSIC's memory fan-out (I8).
:meth:`Dxr.layout` therefore returns the only legal RMT rendering,
with the range table duplicated per search level (the "infeasible
26.73 MB" §4.1 mentions); :attr:`Dxr.single_table_sram_bits` exposes
the software footprint for the ablation bench.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import direct_index_table, exact_table
from ..prefix.prefix import Prefix
from ..prefix.ranges import RangeEntry, expand_to_ranges
from ..prefix.trie import BinaryTrie, Fib
from .base import LookupAlgorithm, UpdateUnsupported

NEXT_HOP_BITS = 8
POINTER_BITS = 20
#: Initial-table slot: next hop or section pointer + length (paper: the
#: D16R table is 0.25 MB = 2**16 x 32 bits).
INITIAL_SLOT_BITS = 32


class Dxr(LookupAlgorithm):
    """Behavioural D-k-R with a single global range table."""

    def __init__(self, fib: Fib, k: int = 16):
        if not 1 <= k < fib.width:
            raise ValueError(f"k {k} outside [1, {fib.width})")
        self.width = fib.width
        self.k = k
        self.name = f"DXR (k={k})"
        self.suffix_bits = fib.width - k

        shorts = BinaryTrie(fib.width)
        groups: Dict[int, List[Tuple[Prefix, int]]] = {}
        exact_k: Dict[int, int] = {}
        for prefix, hop in fib:
            if prefix.length < self.k:
                shorts.insert(prefix, hop)
            elif prefix.length == self.k:
                exact_k[prefix.bits] = hop
                shorts.insert(prefix, hop)
            else:
                slice_bits = prefix.slice(0, self.k)
                # Re-express the suffix in the (width - k)-bit space.
                suffix = Prefix.from_bits(
                    prefix.bits & ((1 << (prefix.length - self.k)) - 1),
                    prefix.length - self.k,
                    self.suffix_bits,
                )
                groups.setdefault(slice_bits, []).append((suffix, hop))

        #: Global merged range table; sections are contiguous.
        self.ranges: List[RangeEntry] = []
        #: Slice -> ('hop', hop) | ('section', start, count) | None.
        self.initial: List[Optional[Tuple]] = [None] * (1 << self.k)
        for slice_bits in range(1 << self.k):
            default = shorts.lookup(slice_bits << self.suffix_bits)
            group = groups.get(slice_bits)
            if not group:
                if default is not None:
                    self.initial[slice_bits] = ("hop", default)
                continue
            section = expand_to_ranges(group, self.suffix_bits, default_hop=default)
            start = len(self.ranges)
            self.ranges.extend(section)
            self.initial[slice_bits] = ("section", start, len(section))

        self.max_section = max(
            (entry[2] for entry in self.initial if entry and entry[0] == "section"),
            default=0,
        )

    # ------------------------------------------------------------------
    @property
    def search_depth(self) -> int:
        """Binary-search probes needed for the largest section."""
        return max(1, math.ceil(math.log2(self.max_section + 1))) if self.max_section else 0

    @property
    def single_table_sram_bits(self) -> int:
        """Software DXR footprint: initial table + one range table."""
        range_bits = len(self.ranges) * (self.suffix_bits + NEXT_HOP_BITS)
        return (1 << self.k) * INITIAL_SLOT_BITS + range_bits

    # ------------------------------------------------------------------
    # Updates: unsupported — DXR's merged, right-endpoint-discarded
    # range table cannot take a single route in place; the managed
    # runtime rebuilds from the FIB instead.
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        raise UpdateUnsupported(
            f"{self.name}: the merged range table has no in-place insert; "
            "rebuild from the FIB"
        )

    def delete(self, prefix: Prefix) -> None:
        raise UpdateUnsupported(
            f"{self.name}: the merged range table has no in-place delete; "
            "rebuild from the FIB"
        )

    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        entry = self.initial[address >> self.suffix_bits]
        if entry is None:
            return None
        if entry[0] == "hop":
            return entry[1]
        _tag, start, count = entry
        key = address & ((1 << self.suffix_bits) - 1)
        lo, hi = start, start + count - 1
        best = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.ranges[mid].left <= key:
                best = self.ranges[mid].next_hop
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    # ------------------------------------------------------------------
    # CRAM model (Figure 6a: one range table, probed repeatedly)
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        prog = CramProgram(
            "DXR",
            registers=["addr", "lo", "hi", "best", "done", "key"],
        )
        initial = direct_index_table(
            "initial", self.k, INITIAL_SLOT_BITS,
            key_selector=lambda s: s["addr"] >> self.suffix_bits,
            backing=lambda i: self.initial[i],
        )

        def init_act(state: dict, result) -> None:
            state["key"] = state["addr"] & ((1 << self.suffix_bits) - 1)
            if result is None:
                state["done"] = 1
            elif result[0] == "hop":
                state["best"], state["done"] = result[1], 1
            else:
                state["lo"], state["hi"] = result[1], result[1] + result[2] - 1

        prog.add_step(Step("initial", table=initial, reads=["addr"],
                           writes=["lo", "hi", "best", "done", "key"],
                           action=init_act))

        # ONE physical range table, probed once per search level — the
        # RAM-model luxury that RMT chips disallow (idiom I8's target).
        # Pointer-addressed: no stored keys, rows are endpoint + hop.
        range_table = exact_table(
            "ranges", 0, len(self.ranges),
            self.suffix_bits + NEXT_HOP_BITS,
            key_selector=lambda s: (
                None if s.get("done") or s.get("lo") is None or s["lo"] > s["hi"]
                else (s["lo"] + s["hi"]) // 2
            ),
            backing=lambda mid: self.ranges[mid],
        )

        def probe_act(state: dict, result) -> None:
            if result is None:
                return
            mid = (state["lo"] + state["hi"]) // 2
            if result.left <= state["key"]:
                state["best"] = result.next_hop
                state["lo"] = mid + 1
            else:
                state["hi"] = mid - 1

        previous = "initial"
        for level in range(self.search_depth):
            step = Step(f"probe_{level}", table=range_table,
                        reads=["lo", "hi", "key", "done", "best"],
                        writes=["lo", "hi", "best"], action=probe_act)
            prog.add_step(step, after=[previous])
            previous = step.name
        return prog

    def cram_extract_hop(self, state: dict) -> Optional[int]:
        return state.get("best")

    # ------------------------------------------------------------------
    # Lane compiler (repro.core.vector): every step fully lowered
    # ------------------------------------------------------------------
    def vector_specs(self):
        from ..core.vector import VectorStepSpec

        # Initial table as parallel kind/a/b arrays:
        # kind 0 = empty, 1 = ('hop', a), 2 = ('section', a, count=b).
        size = 1 << self.k
        kind = np.zeros(size, dtype=np.int64)
        a = np.zeros(size, dtype=np.int64)
        b = np.zeros(size, dtype=np.int64)
        for slot, entry in enumerate(self.initial):
            if entry is None:
                continue
            if entry[0] == "hop":
                kind[slot], a[slot] = 1, entry[1]
            else:
                kind[slot], a[slot], b[slot] = 2, entry[1], entry[2]
        suffix_mask = (1 << self.suffix_bits) - 1

        def init_update(lanes, vals, found, active):
            slot = lanes.values("addr") >> self.suffix_bits
            lanes.assign("key", lanes.values("addr") & suffix_mask)
            section = kind[slot] == 2
            hop = kind[slot] == 1
            # Non-section lanes finish here; section lanes keep done=None
            # (the base state), exactly as the scalar action leaves it.
            lanes.assign("done", np.where(section, 0, 1), none=section)
            lanes.assign("best", np.where(hop, a[slot], 0), none=~hop)
            lanes.assign("lo", np.where(section, a[slot], 0), none=~section)
            lanes.assign("hi", np.where(section, a[slot] + b[slot] - 1, 0),
                         none=~section)

        # The global range table as left-endpoint / hop columns; one
        # shared update closure drives every binary-search level.
        left = np.array([r.left for r in self.ranges], dtype=np.int64)
        hops = np.array(
            [0 if r.next_hop is None else r.next_hop for r in self.ranges],
            dtype=np.int64)
        hop_none = np.array([r.next_hop is None for r in self.ranges],
                            dtype=bool)

        def probe_update(lanes, vals, found, active):
            lo = lanes.values("lo")
            hi = lanes.values("hi")
            searching = (~lanes.truthy("done") & lanes.present("lo")
                         & (lo <= hi))
            mid = np.where(searching, (lo + hi) >> 1, 0)
            le = searching & (left[mid] <= lanes.values("key"))
            lanes.assign_where("best", le, hops[mid], none=hop_none[mid])
            lanes.assign_where("lo", le, mid + 1)
            lanes.assign_where("hi", searching & ~le, mid - 1)

        specs = {"initial": VectorStepSpec(init_update)}
        for level in range(self.search_depth):
            specs[f"probe_{level}"] = VectorStepSpec(probe_update)
        return specs

    def vector_extract_hop(self, lanes):
        return lanes.values("best"), lanes.is_none("best")

    # ------------------------------------------------------------------
    # Chip layout: legal only with the range table duplicated per level
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        initial = LogicalTable(
            "initial", MemoryKind.SRAM, entries=1 << self.k, key_width=self.k,
            data_width=INITIAL_SLOT_BITS, direct_index=True,
        )
        phases = [Phase("initial table", [initial], dependent_alu_ops=1)]
        entry_bits = self.suffix_bits + NEXT_HOP_BITS
        for level in range(self.search_depth):
            duplicate = LogicalTable(
                f"ranges (copy {level})", MemoryKind.SRAM,
                entries=len(self.ranges), key_width=0, data_width=entry_bits,
            )
            phases.append(Phase(f"probe {level}", [duplicate], dependent_alu_ops=2))
        return Layout(self.name, phases)
