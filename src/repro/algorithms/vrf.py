"""Virtual routing tables (VRFs) through the CRAM lens (§1 O3, idiom I5).

Routers carry hundreds of VPN routing tables; the public BGP table is
only a fraction of required capacity.  Naively, each VRF gets its own
physical tables — and pays block/page *fragmentation* for every one of
them (a 100-entry VRF still occupies a whole 512-entry TCAM block).

Idiom I5 (table coalescing) fixes this exactly as it fixes MASHUP's
node tables: extend every prefix with a fully-specified VRF tag and
store all VRFs in one shared structure.  A prefix ``p/l`` of VRF ``v``
becomes ``v . p`` of length ``tag_bits + l`` over a widened address
space; lookups prepend the packet's VRF to its destination address.
Longest-prefix-match semantics are preserved because tags are exact:
entries of different VRFs can never match the same lookup key.

:class:`VrfRouter` provides both renderings so their costs can be
compared (see ``benchmarks/bench_vrf.py``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from ..chip.layout import Layout, Phase
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from .base import LookupAlgorithm
from .logical_tcam import LogicalTcam

#: Builds a lookup algorithm over a FIB of arbitrary width.
AlgorithmFactory = Callable[[Fib], LookupAlgorithm]


def tag_prefix(prefix: Prefix, vrf_id: int, tag_bits: int) -> Prefix:
    """Extend ``prefix`` with its VRF tag as fully-specified top bits."""
    if not 0 <= vrf_id < (1 << tag_bits):
        raise ValueError(f"VRF id {vrf_id} does not fit in {tag_bits} tag bits")
    return Prefix.from_bits(
        (vrf_id << prefix.length) | prefix.bits,
        tag_bits + prefix.length,
        tag_bits + prefix.width,
    )


class VrfRouter:
    """A multi-VRF router with coalesced (I5) physical tables.

    ``factory`` builds the underlying lookup algorithm over the
    combined, tag-widened FIB; it must accept arbitrary address widths
    (the logical TCAM, BSIC, HI-BST, and the tries all do).  The
    default is the logical TCAM — the rendering whose fragmentation
    story is the crispest.
    """

    def __init__(
        self,
        width: int,
        max_vrfs: int,
        factory: Optional[AlgorithmFactory] = None,
    ):
        if max_vrfs < 1:
            raise ValueError("need at least one VRF")
        self.width = width
        self.tag_bits = max(1, math.ceil(math.log2(max_vrfs)))
        self.max_vrfs = max_vrfs
        self._factory = factory or LogicalTcam
        self._vrfs: Dict[int, Fib] = {}
        self._combined = Fib(self.tag_bits + width)
        self._engine: Optional[LookupAlgorithm] = None

    # ------------------------------------------------------------------
    # VRF management
    # ------------------------------------------------------------------
    def add_vrf(self, vrf_id: int, fib: Fib) -> None:
        """Install (or replace) a VRF's routing table."""
        if fib.width != self.width:
            raise ValueError(
                f"VRF table width {fib.width} does not match router width {self.width}"
            )
        if not 0 <= vrf_id < self.max_vrfs:
            raise ValueError(f"VRF id {vrf_id} outside [0, {self.max_vrfs})")
        if vrf_id in self._vrfs:
            self.remove_vrf(vrf_id)
        self._vrfs[vrf_id] = fib
        for prefix, hop in fib:
            self._combined.insert(tag_prefix(prefix, vrf_id, self.tag_bits), hop)
        self._engine = None  # rebuilt lazily

    def remove_vrf(self, vrf_id: int) -> None:
        fib = self._vrfs.pop(vrf_id)
        for prefix, _hop in fib:
            self._combined.delete(tag_prefix(prefix, vrf_id, self.tag_bits))
        self._engine = None

    def vrf_ids(self) -> List[int]:
        return sorted(self._vrfs)

    def total_prefixes(self) -> int:
        return len(self._combined)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _ensure_engine(self) -> LookupAlgorithm:
        if self._engine is None:
            self._engine = self._factory(self._combined)
        return self._engine

    def lookup(self, vrf_id: int, address: int) -> Optional[int]:
        """Route ``address`` within VRF ``vrf_id``."""
        if vrf_id not in self._vrfs:
            raise KeyError(f"unknown VRF {vrf_id}")
        if not 0 <= address < (1 << self.width):
            raise ValueError(f"address {address:#x} outside {self.width} bits")
        return self._ensure_engine().lookup((vrf_id << self.width) | address)

    # ------------------------------------------------------------------
    # Accounting: coalesced vs per-VRF rendering
    # ------------------------------------------------------------------
    def coalesced_layout(self) -> Layout:
        """One shared structure over the tag-widened FIB (idiom I5)."""
        layout = self._ensure_engine().layout()
        return Layout(f"VRFs coalesced ({len(self._vrfs)} tables)", layout.phases)

    def separate_layouts(self) -> Layout:
        """One physical structure per VRF — the fragmented rendering.

        All per-VRF tables sit in parallel phases (a packet consults
        only its own VRF), so the combined layout has one phase whose
        tables are the union.
        """
        tables = []
        for vrf_id, fib in sorted(self._vrfs.items()):
            engine = self._factory(fib)
            for phase in engine.layout().phases:
                for table in phase.tables:
                    tables.append(_renamed(table, f"vrf{vrf_id}_{table.name}"))
        return Layout(
            f"VRFs separate ({len(self._vrfs)} tables)",
            [Phase("per-VRF tables", tables, dependent_alu_ops=1)],
        )


def _renamed(table, name: str):
    from dataclasses import replace

    return replace(table, name=name)
