"""Logical TCAM: the TCAM-only baseline (§6.5.1).

One ternary entry per prefix, longest-prefix priority, single-step
lookup.  Simple and fast — and, as Tables 8/9 show, hopeless at scale:
Tofino-2's 480 blocks cap it at 245,760 IPv4 entries (one 44-bit block
column) or 122,880 IPv6 entries (64-bit keys need two block columns),
well short of today's global tables.
"""

from __future__ import annotations

from typing import Optional

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import ternary_table
from ..core.units import TCAM_BLOCK_ENTRIES, TCAM_BLOCK_WIDTH
from ..memory.tcam import TcamTable
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from .base import UPDATE_IN_PLACE, LookupAlgorithm

NEXT_HOP_BITS = 8


class LogicalTcam(LookupAlgorithm):
    """All prefixes in one priority-ordered ternary table."""

    update_strategy = UPDATE_IN_PLACE

    def __init__(self, fib: Fib):
        self.width = fib.width
        self.name = "Logical TCAM"
        self.table: TcamTable[int] = TcamTable(fib.width, name="fib")
        for prefix, hop in fib:
            self.table.insert_prefix(prefix, hop)

    def insert(self, prefix: Prefix, next_hop: int) -> None:
        self._check_prefix(prefix)
        self.table.insert_prefix(prefix, next_hop)

    def delete(self, prefix: Prefix) -> None:
        self._check_prefix(prefix)
        self.table.delete_prefix(prefix)

    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        return self.table.search(address)

    def cram_program(self) -> CramProgram:
        prog = CramProgram("Logical TCAM", registers=["addr", "hop"])
        spec = ternary_table(
            "fib", self.width, len(self.table), NEXT_HOP_BITS,
            key_selector=lambda s: s["addr"], backing=self.table,
        )
        prog.add_step(Step("match", table=spec, reads=["addr"], writes=["hop"],
                           action=lambda s, r: s.__setitem__("hop", r)))
        return prog

    def vector_specs(self):
        """Lower the single priority match onto the TCAM's own vector
        view: masked compare + priority argmax (or grouped probes past
        ``MATRIX_ROW_LIMIT`` rows), hop register from the result."""
        from ..core.vector import VectorStepSpec

        def match_update(lanes, vals, found, active):
            lanes.assign("hop", vals, none=~found)

        return {"match": VectorStepSpec(
            update=match_update,
            select=lambda lanes: (lanes.values("addr"), None),
        )}

    def layout(self) -> Layout:
        return logical_tcam_layout(len(self.table), self.width, name=self.name)


def logical_tcam_layout(entries: int, width: int, name: str = "Logical TCAM") -> Layout:
    """Analytic layout for a logical TCAM of ``entries`` prefixes."""
    table = LogicalTable(
        "fib", MemoryKind.TCAM, entries=entries, key_width=width,
        data_width=NEXT_HOP_BITS,
    )
    return Layout(name, [Phase("match", [table], dependent_alu_ops=1)])


def logical_tcam_capacity(width: int, total_blocks: int = 480) -> int:
    """Max prefixes a chip's TCAM holds at this key width (§6.5.2/3)."""
    columns = -(-width // TCAM_BLOCK_WIDTH)
    return (total_blocks // columns) * TCAM_BLOCK_ENTRIES
