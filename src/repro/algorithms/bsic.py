"""BSIC: Binary Search with Initial CAM (§4).

BSIC applies three idioms to DXR:

* **I1 compress with TCAM** — the directly-indexed initial table
  becomes a ternary table, so ``k`` can grow to the TCAM block width
  (44 on Tofino-2) instead of DXR's direct-index ceiling of ~20; this
  is what makes IPv6 (k=24) tractable;
* **I8 memory fan-out** — the range table becomes per-slice binary
  search *trees* whose levels are separate tables, each accessed at
  most once per packet (at a ~2.9x memory cost over DXR's single
  table, but far below duplicating it per probe);
* **I4 strategic cutting** — ``k`` balances initial-TCAM size against
  BST depth (Figure 13 explores the trade-off; 24 is optimal for
  AS131072).

The BST construction follows Appendix A.4: prefix suffixes expand to
ranges completing the whole ``2**(width-k)`` space, uncovered
intervals inherit the slice's own longest match (so a mis-directed
address still resolves correctly), equal-hop neighbours merge, and
right endpoints are discarded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.idioms import Idiom, IdiomApplication
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import exact_table, ternary_table
from ..memory.tcam import TcamTable
from ..prefix.prefix import Prefix
from ..prefix.ranges import BstNode, expand_to_ranges, ranges_to_bst
from ..prefix.trie import BinaryTrie, Fib
from .base import UPDATE_REBUILD, LookupAlgorithm

NEXT_HOP_BITS = 8
#: BST child pointers are 24 bits: the §7.2 multiverse scaling grows a
#: level table past 2**20 nodes well before the feasibility frontier,
#: so 20-bit pointers (enough for today's tables) would cap the very
#: scaling range the paper evaluates.
POINTER_BITS = 24
#: Initial-table result: 1 type bit + max(pointer, hop) bits.
INITIAL_DATA_BITS = 1 + POINTER_BITS


class BstForest:
    """Per-level node storage for all of BSIC's BSTs (idiom I8).

    Every BST node lives in the table of its level; pointers are
    indices into the next level's table.  One lookup therefore touches
    each level's table at most once — the memory fan-out that makes
    binary search legal on RMT chips.
    """

    def __init__(self, endpoint_bits: int):
        self.endpoint_bits = endpoint_bits
        #: levels[d][i] = (endpoint, hop, left_index, right_index).
        self.levels: List[List[Tuple[int, Optional[int], Optional[int], Optional[int]]]] = []

    @property
    def node_entry_bits(self) -> int:
        """Endpoint + next hop + two child pointers (§4.2's four fields)."""
        return self.endpoint_bits + NEXT_HOP_BITS + 2 * POINTER_BITS

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level_sizes(self) -> List[int]:
        return [len(level) for level in self.levels]

    def total_nodes(self) -> int:
        return sum(len(level) for level in self.levels)

    def add_tree(self, root: BstNode) -> int:
        """Store a BST; returns the root's index in level 0."""
        return self._place(root, 0)

    def _place(self, node: BstNode, depth: int) -> int:
        while len(self.levels) <= depth:
            self.levels.append([])
        left = self._place(node.left, depth + 1) if node.left else None
        right = self._place(node.right, depth + 1) if node.right else None
        index = len(self.levels[depth])
        self.levels[depth].append((node.left_endpoint, node.next_hop, left, right))
        return index

    def search(self, root_index: int, key: int) -> Optional[int]:
        """Algorithm 2's BST walk across the level tables."""
        index: Optional[int] = root_index
        level = 0
        best: Optional[int] = None
        while index is not None:
            endpoint, hop, left, right = self.levels[level][index]
            if key == endpoint:
                return hop
            if key > endpoint:
                best = hop
                index = right
            else:
                index = left
            level += 1
        return best

    def node(self, level: int, index: int):
        return self.levels[level][index]


class Bsic(LookupAlgorithm):
    """Behavioural BSIC for IPv4 (k=16) and IPv6 (k=24)."""

    #: Appendix A.3.2: every update rebuilds from the auxiliary
    #: database, so a managed runtime should batch updates and rebuild
    #: once per batch rather than calling insert/delete per route.
    update_strategy = UPDATE_REBUILD

    def __init__(self, fib: Fib, k: Optional[int] = None):
        if k is None:
            k = 16 if fib.width == 32 else 24
        if not 1 <= k < fib.width:
            raise ValueError(f"k {k} outside [1, {fib.width})")
        self.width = fib.width
        self.k = k
        self.suffix_bits = fib.width - k
        self.name = f"BSIC (k={k})"

        #: All prefixes of length <= k (the slice defaults).
        self._shorts = BinaryTrie(fib.width)
        #: slice bits -> [(suffix prefix, hop)] for prefixes longer than k.
        self._groups: Dict[int, List[Tuple[Prefix, int]]] = {}
        #: slice bits -> exact /k next hop (case 2 bookkeeping).
        self._exact_k: Dict[int, int] = {}

        for prefix, hop in fib:
            if prefix.length <= self.k:
                self._shorts.insert(prefix, hop)
                if prefix.length == self.k:
                    self._exact_k[prefix.bits] = hop
            else:
                self._groups.setdefault(prefix.slice(0, self.k), []).append(
                    (self._suffix_of(prefix), hop)
                )
        self._rebuild()

    def _suffix_of(self, prefix: Prefix) -> Prefix:
        return Prefix.from_bits(
            prefix.bits & ((1 << (prefix.length - self.k)) - 1),
            prefix.length - self.k,
            self.suffix_bits,
        )

    def _slice_default(self, slice_bits: int) -> Optional[int]:
        """LPM of the slice among prefixes of length <= k (Appendix A.4)."""
        return self._shorts.lookup(slice_bits << self.suffix_bits)

    def _rebuild(self) -> None:
        """(Re)construct the initial TCAM and the BST forest.

        Appendix A.3.2: BSIC updates are costly — they rebuild from the
        auxiliary prefix database (`_shorts`, `_groups`).
        """
        self.initial: TcamTable[Tuple] = TcamTable(self.k, name="initial")
        self.forest = BstForest(self.suffix_bits)
        handled_slices = set()
        for slice_bits, group in sorted(self._groups.items()):
            ranges = expand_to_ranges(
                group, self.suffix_bits, default_hop=self._slice_default(slice_bits)
            )
            root = self.forest.add_tree(ranges_to_bst(ranges))
            self.initial.insert_prefix(
                Prefix.from_bits(slice_bits, self.k, self.k), ("bst", root)
            )
            handled_slices.add(slice_bits)
        for prefix, hop in self._shorts.items():
            if prefix.length == self.k and prefix.bits in handled_slices:
                continue  # its hop is inherited by the slice's BST ranges
            self.initial.insert_prefix(
                Prefix.from_bits(prefix.bits, prefix.length, self.k), ("hop", hop)
            )

    # ------------------------------------------------------------------
    # Updates (Appendix A.3.2: rebuild the affected structures)
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        self._check_prefix(prefix)
        if prefix.length <= self.k:
            self._shorts.insert(prefix, next_hop)
            if prefix.length == self.k:
                self._exact_k[prefix.bits] = next_hop
        else:
            slice_bits = prefix.slice(0, self.k)
            group = self._groups.setdefault(slice_bits, [])
            suffix = self._suffix_of(prefix)
            group[:] = [(s, h) for s, h in group if s != suffix]
            group.append((suffix, next_hop))
        self._rebuild()

    def delete(self, prefix: Prefix) -> None:
        self._check_prefix(prefix)
        if prefix.length <= self.k:
            self._shorts.delete(prefix)
            if prefix.length == self.k:
                self._exact_k.pop(prefix.bits, None)
        else:
            slice_bits = prefix.slice(0, self.k)
            group = self._groups.get(slice_bits, [])
            suffix = self._suffix_of(prefix)
            kept = [(s, h) for s, h in group if s != suffix]
            if len(kept) == len(group):
                raise KeyError(str(prefix))
            if kept:
                self._groups[slice_bits] = kept
            else:
                del self._groups[slice_bits]
        self._rebuild()

    # ------------------------------------------------------------------
    # Lookup (Algorithm 2)
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        result = self.initial.search(address >> self.suffix_bits)
        if result is None:
            return None
        kind, value = result
        if kind == "hop":
            return value
        key = address & ((1 << self.suffix_bits) - 1)
        return self.forest.search(value, key)

    # ------------------------------------------------------------------
    # CRAM model (Figure 6b: initial CAM + fanned-out BST levels)
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        prog = CramProgram(
            "BSIC", registers=["addr", "key", "ptr", "best", "done"]
        )
        initial = ternary_table(
            "initial", self.k, len(self.initial), INITIAL_DATA_BITS,
            key_selector=lambda s: s["addr"] >> self.suffix_bits,
            backing=self.initial,
        )

        def init_act(state: dict, result) -> None:
            state["key"] = state["addr"] & ((1 << self.suffix_bits) - 1)
            if result is None:
                state["done"] = 1
            elif result[0] == "hop":
                state["best"], state["done"] = result[1], 1
            else:
                state["ptr"] = result[1]

        prog.add_step(Step("initial", table=initial, reads=["addr"],
                           writes=["key", "ptr", "best", "done"],
                           action=init_act))

        previous = "initial"
        for level in range(self.forest.depth):
            table = exact_table(
                f"bst_level_{level}", 0, len(self.forest.levels[level]),
                self.forest.node_entry_bits,
                key_selector=lambda s: None if s.get("done") or s.get("ptr") is None
                else s["ptr"],
                backing=lambda i, level=level: self.forest.node(level, i),
            )

            def act(state: dict, result) -> None:
                if result is None:
                    state["ptr"] = None
                    return
                endpoint, hop, left, right = result
                if state["key"] == endpoint:
                    state["best"], state["done"] = hop, 1
                    state["ptr"] = None
                elif state["key"] > endpoint:
                    state["best"], state["ptr"] = hop, right
                else:
                    state["ptr"] = left

            step = Step(f"bst_level_{level}", table=table,
                        reads=["key", "ptr", "done", "best"],
                        writes=["ptr", "best", "done"], action=act)
            prog.add_step(step, after=[previous])
            previous = step.name
        return prog

    def cram_extract_hop(self, state: dict) -> Optional[int]:
        return state.get("best")

    # ------------------------------------------------------------------
    # Vector lowering (the lane compiler)
    # ------------------------------------------------------------------
    #: Tag bit distinguishing ("hop", h) from ("bst", root) in the
    #: initial view's int64 encoding: hop entries carry bit 32.
    _HOP_TAG = 1 << 32

    def _encode_initial(self, data) -> Optional[int]:
        kind, value = data
        if kind == "hop":
            return self._HOP_TAG | int(value)
        return int(value)

    def vector_specs(self):
        """Lower Algorithm 2 to lane kernels.

        The initial TCAM probes through its own vector view (hop vs
        BST-root results told apart by a tag bit); each BST level is
        linearized into flat per-field arrays (endpoint, hop, child
        indices) indexed by the ``ptr`` register, so the walk becomes
        a fancy-indexed compare per level — the PlanB move.
        """
        import numpy as np

        from ..core.vector import VectorStepSpec

        initial_view = self.initial.vector_reader(encode=self._encode_initial)
        if initial_view is None:
            return {}
        suffix_mask = (1 << self.suffix_bits) - 1
        hop_tag = self._HOP_TAG

        def init_update(lanes, vals, found, active):
            addr = lanes.values("addr")
            lanes.assign("key", addr & suffix_mask)
            is_hop = found & (vals >= hop_tag)
            is_bst = found & ~is_hop
            lanes.assign("done", np.where(is_bst, 0, 1), none=is_bst)
            lanes.assign("best", vals & (hop_tag - 1), none=~is_hop)
            lanes.assign("ptr", vals, none=~is_bst)

        specs = {"initial": VectorStepSpec(
            update=init_update,
            select=lambda lanes: (lanes.values("addr") >> self.suffix_bits,
                                  None),
            reader=initial_view,
        )}

        for depth, nodes in enumerate(self.forest.levels):
            ep = np.array([n[0] for n in nodes], dtype=np.int64)
            hops = np.array([0 if n[1] is None else n[1] for n in nodes],
                            dtype=np.int64)
            hop_none = np.array([n[1] is None for n in nodes], dtype=bool)
            left = np.array([0 if n[2] is None else n[2] for n in nodes],
                            dtype=np.int64)
            left_none = np.array([n[2] is None for n in nodes], dtype=bool)
            right = np.array([0 if n[3] is None else n[3] for n in nodes],
                             dtype=np.int64)
            right_none = np.array([n[3] is None for n in nodes], dtype=bool)

            def level_update(lanes, _vals, _found, _active, ep=ep,
                             hops=hops, hop_none=hop_none, left=left,
                             left_none=left_none, right=right,
                             right_none=right_none):
                walking = lanes.present("ptr") & ~lanes.truthy("done")
                idx = np.where(walking, lanes.values("ptr"), 0)
                node_ep = ep[idx]
                key = lanes.values("key")
                eq = walking & (key == node_ep)
                gt = walking & (key > node_ep)
                lt = walking & ~eq & ~gt
                lanes.assign_where("best", eq | gt, hops[idx],
                                   none=hop_none[idx])
                lanes.assign_where("done", eq, 1)
                ptr_vals = np.zeros(lanes.n, dtype=np.int64)
                ptr_none = np.ones(lanes.n, dtype=bool)
                np.copyto(ptr_vals, right[idx], where=gt)
                np.copyto(ptr_none, right_none[idx], where=gt)
                np.copyto(ptr_vals, left[idx], where=lt)
                np.copyto(ptr_none, left_none[idx], where=lt)
                lanes.assign("ptr", ptr_vals, none=ptr_none)

            specs[f"bst_level_{depth}"] = VectorStepSpec(update=level_update)
        return specs

    def vector_extract_hop(self, lanes):
        return lanes.values("best"), lanes.is_none("best")

    # ------------------------------------------------------------------
    # Chip layout
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        return bsic_layout_from_counts(
            initial_entries=len(self.initial),
            level_sizes=self.forest.level_sizes(),
            k=self.k,
            width=self.width,
            name=self.name,
        )

    def idioms_applied(self) -> List[IdiomApplication]:
        return [
            IdiomApplication(Idiom.COMPRESS_WITH_TCAM, "initial table",
                             "ternary slices instead of 2^k direct slots"),
            IdiomApplication(Idiom.MEMORY_FAN_OUT, "range table",
                             "per-level BST tables, one access each"),
            IdiomApplication(Idiom.STRATEGIC_CUTTING, "k",
                             "balances TCAM size against BST depth"),
        ]


def bsic_layout_from_counts(
    initial_entries: int,
    level_sizes: List[int],
    k: int,
    width: int,
    name: Optional[str] = None,
) -> Layout:
    """BSIC's chip layout from table populations.

    Exposed separately so the §7.2 multiverse scaling can scale the
    populations analytically (universes are disjoint copies, so every
    table grows by exactly the universe count).
    """
    endpoint_bits = width - k
    node_bits = endpoint_bits + NEXT_HOP_BITS + 2 * POINTER_BITS
    initial = LogicalTable(
        "initial", MemoryKind.TCAM, entries=initial_entries, key_width=k,
        data_width=INITIAL_DATA_BITS,
    )
    phases = [Phase("initial TCAM", [initial], dependent_alu_ops=1)]
    for level, size in enumerate(level_sizes):
        table = LogicalTable(
            f"bst_level_{level}", MemoryKind.SRAM, entries=size, key_width=0,
            data_width=node_bits,
        )
        # Compare-then-act: two dependent ALU ops — one ideal-RMT
        # stage, two Tofino-2 stages (§6.5.3).
        phases.append(Phase(f"BST level {level}", [table], dependent_alu_ops=2))
    return Layout(name or f"BSIC (k={k})", phases)
