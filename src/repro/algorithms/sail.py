"""SAIL (Yang et al. [83]): the IPv4 SRAM-only baseline (§3, §6.5.1).

SAIL splits IP lookup by prefix *length*: a bitmap ``B_i`` of size
``2**i`` records whether any length-``i`` prefix matches, and a
directly-indexed next-hop array ``N_i`` holds the hops.  Lengths run
up to the pivot level 24; longer prefixes are *pivot pushed* — expanded
to 32 bits and stored in per-/24 chunks of 256 next hops reached
through ``N_24``.

The paper's §6.5.2 point is exactly this structure's cost: the
directly-indexed arrays need ~32 MB (2313 SRAM pages, 33 ideal-RMT
stages), far beyond the Tofino-2 envelope — the motivation for RESAIL.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.idioms import IdiomApplication
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import direct_index_table, exact_table
from ..memory.sram import Bitmap, DirectIndexTable
from ..prefix.distribution import LengthDistribution
from ..prefix.prefix import IPV4_WIDTH, Prefix
from ..prefix.trie import Fib
from .base import UPDATE_IN_PLACE, LookupAlgorithm

PIVOT_LEVEL = 24
NEXT_HOP_BITS = 8
CHUNK_SIZE = 1 << (IPV4_WIDTH - PIVOT_LEVEL)  # 256 expanded hops per chunk


class Sail(LookupAlgorithm):
    """Behavioural SAIL with pivot pushing."""

    update_strategy = UPDATE_IN_PLACE
    supports_delta = True

    def __init__(self, fib: Fib):
        if fib.width != IPV4_WIDTH:
            raise ValueError("SAIL is an IPv4 scheme")
        self.width = IPV4_WIDTH
        self.name = "SAIL"
        self.default_hop: Optional[int] = None
        self.bitmaps: Dict[int, Bitmap] = {
            i: Bitmap(i, name=f"B{i}") for i in range(1, PIVOT_LEVEL + 1)
        }
        self.arrays: Dict[int, DirectIndexTable] = {
            i: DirectIndexTable(i, NEXT_HOP_BITS, name=f"N{i}")
            for i in range(1, PIVOT_LEVEL + 1)
        }
        #: /24 slot -> 256 expanded next hops (pivot pushing).
        self.chunks: Dict[int, List[Optional[int]]] = {}
        self._long_prefixes = Fib(IPV4_WIDTH)  # source data for chunk rebuilds
        for prefix, hop in fib:
            self.insert(prefix, hop)

    # ------------------------------------------------------------------
    # Updates (SAIL supports straightforward incremental updates)
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        self._check_prefix(prefix)
        if prefix.length == 0:
            self.default_hop = next_hop
            return
        if prefix.length <= PIVOT_LEVEL:
            self.bitmaps[prefix.length].set(prefix.bits)
            self.arrays[prefix.length].store(prefix.bits, next_hop)
            slot = prefix.bits
            if prefix.length == PIVOT_LEVEL and slot in self.chunks:
                self._rebuild_chunk(slot)
            return
        # Pivot pushing: the /24 slot owning this prefix gains a chunk.
        self._long_prefixes.insert(prefix, next_hop)
        slot = prefix.bits >> (prefix.length - PIVOT_LEVEL)
        self.bitmaps[PIVOT_LEVEL].set(slot)
        self._rebuild_chunk(slot)

    def delete(self, prefix: Prefix) -> None:
        self._check_prefix(prefix)
        if prefix.length == 0:
            self.default_hop = None
            return
        if prefix.length <= PIVOT_LEVEL:
            if self.arrays[prefix.length].load(prefix.bits) is None:
                raise KeyError(str(prefix))
            self.arrays[prefix.length].clear_slot(prefix.bits)
            if prefix.length == PIVOT_LEVEL and prefix.bits in self.chunks:
                self._rebuild_chunk(prefix.bits)
            else:
                self.bitmaps[prefix.length].set(prefix.bits, False)
            return
        self._long_prefixes.delete(prefix)
        slot = prefix.bits >> (prefix.length - PIVOT_LEVEL)
        self._rebuild_chunk(slot)
        if slot not in self.chunks and self.arrays[PIVOT_LEVEL].load(slot) is None:
            self.bitmaps[PIVOT_LEVEL].set(slot, False)

    def _rebuild_chunk(self, slot: int) -> None:
        """Recompute the expanded hops of one /24 chunk (pivot pushing)."""
        base = slot << (IPV4_WIDTH - PIVOT_LEVEL)
        slot_hop = self.arrays[PIVOT_LEVEL].load(slot)
        chunk: List[Optional[int]] = []
        any_long = False
        for offset in range(CHUNK_SIZE):
            hop = self._long_prefixes.lookup(base | offset)
            if hop is not None:
                any_long = True
            else:
                hop = slot_hop
            chunk.append(hop)
        if any_long:
            self.chunks[slot] = chunk
        else:
            self.chunks.pop(slot, None)

    # ------------------------------------------------------------------
    # Artifact state (repro.artifact warm starts)
    # ------------------------------------------------------------------
    def state_export(self):
        """Flatten bitmaps, hop arrays, pivot chunks and the long-prefix
        source table — everything :meth:`state_import` needs to skip
        the per-prefix build (and its 256-slot chunk rebuilds)."""
        arrays = {}
        for i in range(1, PIVOT_LEVEL + 1):
            arrays[f"bitmap_{i:02d}"] = self.bitmaps[i]._bits.view(np.uint8)
            items = sorted(self.arrays[i].items())
            arrays[f"array_{i:02d}_keys"] = np.array(
                [k for k, _ in items], dtype=np.int64)
            arrays[f"array_{i:02d}_hops"] = np.array(
                [h for _, h in items], dtype=np.int64)
        slots = sorted(self.chunks)
        hops = np.zeros((len(slots), CHUNK_SIZE), dtype=np.int64)
        none = np.zeros((len(slots), CHUNK_SIZE), dtype=bool)
        for row, slot in enumerate(slots):
            for col, hop in enumerate(self.chunks[slot]):
                if hop is None:
                    none[row, col] = True
                else:
                    hops[row, col] = hop
        arrays["chunk_slots"] = np.array(slots, dtype=np.int64)
        arrays["chunk_hops"] = hops
        arrays["chunk_none"] = none
        arrays["long_prefixes"] = np.array(
            [(p.bits, p.length, h) for p, h in self._long_prefixes],
            dtype=np.int64).reshape(-1, 3)
        return {"default_hop": self.default_hop}, arrays

    @classmethod
    def state_import(cls, meta, arrays) -> "Sail":
        obj = cls.__new__(cls)
        obj.width = IPV4_WIDTH
        obj.name = "SAIL"
        obj.default_hop = meta.get("default_hop")
        obj.bitmaps = {}
        obj.arrays = {}
        for i in range(1, PIVOT_LEVEL + 1):
            obj.bitmaps[i] = Bitmap.from_bits(i, arrays[f"bitmap_{i:02d}"],
                                              name=f"B{i}")
            table = DirectIndexTable(i, NEXT_HOP_BITS, name=f"N{i}")
            # Adopt the slot dict wholesale; per-key store() validation
            # is what the warm start exists to skip.
            table._slots = {
                int(k): int(h)
                for k, h in zip(arrays[f"array_{i:02d}_keys"],
                                arrays[f"array_{i:02d}_hops"])}
            obj.arrays[i] = table
        obj.chunks = {}
        chunk_hops = arrays["chunk_hops"]
        chunk_none = arrays["chunk_none"]
        for row, slot in enumerate(arrays["chunk_slots"]):
            obj.chunks[int(slot)] = [
                None if chunk_none[row, col] else int(chunk_hops[row, col])
                for col in range(CHUNK_SIZE)]
        obj._long_prefixes = Fib(IPV4_WIDTH)
        for bits, length, hop in arrays["long_prefixes"]:
            obj._long_prefixes.insert(
                Prefix.from_bits(int(bits), int(length), IPV4_WIDTH),
                int(hop))
        return obj

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        for i in range(PIVOT_LEVEL, 0, -1):
            index = address >> (IPV4_WIDTH - i)
            if self.bitmaps[i].test(index):
                if i == PIVOT_LEVEL and index in self.chunks:
                    hop = self.chunks[index][address & (CHUNK_SIZE - 1)]
                    if hop is not None:
                        return hop
                    # Chunk slot holds no long match and no /24: fall
                    # through to shorter lengths.
                    continue
                return self.arrays[i].load(index)
        return self.default_hop

    # ------------------------------------------------------------------
    # CRAM model (Figure 5a: bitmap/array chain with data dependencies)
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        prog = CramProgram("SAIL", registers=["addr", "hop", "done"])

        def bitmap_step(i: int) -> Step:
            table = direct_index_table(
                f"B{i}", i, 1,
                key_selector=lambda s, i=i: s["addr"] >> (IPV4_WIDTH - i),
                backing=self.bitmaps[i].test,
                default=False,
            )

            def act(state: dict, result, i=i) -> None:
                state[f"hit_{i}"] = bool(result)

            return Step(f"bitmap_{i}", table=table, reads=["addr"],
                        writes=[f"hit_{i}"], action=act)

        def array_step(i: int) -> Step:
            def select(s: dict, i=i):
                if not s.get(f"hit_{i}"):
                    return None
                return s["addr"] >> (IPV4_WIDTH - i)

            table = direct_index_table(
                f"N{i}", i, NEXT_HOP_BITS,
                key_selector=select, backing=self.arrays[i].load,
            )

            def act(state: dict, result, i=i) -> None:
                if not state.get("done") and state.get(f"hit_{i}") and result is not None:
                    state["hop"] = result
                    state["done"] = 1

            return Step(f"array_{i}", table=table,
                        reads=["addr", f"hit_{i}", "done", "hop"],
                        writes=["hop", "done"], action=act)

        def chunk_step() -> Step:
            # Membership lives in the *reader*, not the selector: the
            # backing answers None for un-chunked slots, so the compiled
            # plan can swap in a frozen chunk snapshot without any live
            # `in self.chunks` check leaking through the key selector.
            def select(s: dict):
                if not s.get(f"hit_{PIVOT_LEVEL}"):
                    return None
                return s["addr"]

            def load(address: int):
                chunk = self.chunks.get(address >> (IPV4_WIDTH - PIVOT_LEVEL))
                if chunk is None:
                    return None
                return chunk[address & (CHUNK_SIZE - 1)]

            # Pointer-addressed chunk store: entries x 8 bits of SRAM,
            # no stored keys (the chunk pointer is the address).
            table = exact_table(
                "N32-chunks", 0, len(self.chunks) * CHUNK_SIZE, NEXT_HOP_BITS,
                key_selector=select, backing=load,
            )

            def act(state: dict, result) -> None:
                if not state.get("done") and result is not None:
                    state["hop"] = result
                    state["done"] = 1

            return Step("chunk_24", table=table,
                        reads=["addr", f"hit_{PIVOT_LEVEL}", "done", "hop"],
                        writes=["hop", "done"], action=act)

        # RAM-model SAIL interleaves bitmap checks and array reads with
        # early exits; the resulting writer chain on `hop` is the "large
        # number of data dependencies" §3.1 observes.
        for i in range(PIVOT_LEVEL, 0, -1):
            prog.add_step(bitmap_step(i))
            if i == PIVOT_LEVEL:
                prog.add_step(chunk_step(), after=[f"bitmap_{i}"])
            prog.add_step(array_step(i), after=[f"bitmap_{i}"])
        prog.infer_dependencies()
        return prog

    def cram_extract_hop(self, state: dict) -> Optional[int]:
        hop = state.get("hop")
        return hop if hop is not None else self.default_hop

    def plan_backings(self):
        """Snapshot readers for the plan compiler: byte-packed bitmaps,
        plain dict views of the next-hop arrays, and a frozen chunk
        snapshot (so in-place deltas never leak into compiled plans)."""
        backings = {}
        for i in range(1, PIVOT_LEVEL + 1):
            backings[f"bitmap_{i}"] = self.bitmaps[i].plan_reader()
            backings[f"array_{i}"] = self.arrays[i].plan_reader()
        backings["chunk_24"] = self._chunk_reader()
        return backings

    def _chunk_reader(self):
        """A frozen reader over the current chunk store.

        A shallow dict copy freezes it: :meth:`_rebuild_chunk` always
        assigns a *new* hop list, never mutates one in place.
        """
        chunks = dict(self.chunks)
        shift = IPV4_WIDTH - PIVOT_LEVEL
        mask = CHUNK_SIZE - 1

        def load(address: int):
            chunk = chunks.get(address >> shift)
            if chunk is None:
                return None
            return chunk[address & mask]

        return load

    def plan_extract_factory(self):
        """Extraction frozen over the current default hop."""
        default = self.default_hop

        def extract(state: dict):
            hop = state.get("hop")
            return hop if hop is not None else default

        return extract

    def vector_extract_factory(self):
        default = self.default_hop

        def extract(lanes):
            vals = lanes.values("hop").copy()
            none = lanes.is_none("hop").copy()
            if default is not None:
                vals[none] = default
                none[:] = False
            return vals, none

        return extract

    # ------------------------------------------------------------------
    # Incremental commit pipeline: which plan steps a delta invalidates
    # ------------------------------------------------------------------
    def _delta_steps(self, delta):
        """Step names whose backings ``delta`` may have changed."""
        steps = set()
        for op in delta:
            length = op.prefix.length
            if length == 0:
                continue  # default hop: extraction refresh only
            if length >= PIVOT_LEVEL:
                # /24 and pivot-pushed routes interact through the
                # chunk store, so the whole 24-level trio refreshes.
                steps.update((f"bitmap_{PIVOT_LEVEL}",
                              f"array_{PIVOT_LEVEL}", "chunk_24"))
            else:
                steps.add(f"bitmap_{length}")
                steps.add(f"array_{length}")
        return steps

    def plan_patch(self, delta, plan):
        readers = {}
        for step in self._delta_steps(delta):
            if step == "chunk_24":
                readers[step] = self._chunk_reader()
            else:
                kind, level = step.rsplit("_", 1)
                if kind == "bitmap":
                    # Incremental re-freeze: replay the bitmap's write
                    # log into the previous compile's reader.
                    prev = plan.step_reader(step) if plan is not None \
                        else None
                    readers[step] = self.bitmaps[int(level)].plan_reader(prev)
                else:
                    readers[step] = self.arrays[int(level)].plan_reader()
        return readers

    def vector_patch(self, delta, vector_plan):
        specs = {}
        touched = self._delta_steps(delta)
        # chunk_24 and array_24 share one frozen chunk snapshot; they
        # regenerate together or not at all.
        if "chunk_24" in touched or f"array_{PIVOT_LEVEL}" in touched:
            specs.update(self._vector_chunk_specs())
            touched.discard("chunk_24")
            touched.discard(f"array_{PIVOT_LEVEL}")
        for step in touched:
            kind, level = step.rsplit("_", 1)
            if kind == "bitmap":
                prev = (vector_plan.step_view(step)
                        if vector_plan is not None else None)
                specs[step] = self._vector_bitmap_spec(int(level), prev)
            else:
                specs[step] = self._vector_array_spec(int(level))
        return specs

    # ------------------------------------------------------------------
    # Lane compiler (repro.core.vector): every step fully lowered
    # ------------------------------------------------------------------
    def vector_specs(self):
        specs = {}
        for i in range(1, PIVOT_LEVEL + 1):
            specs[f"bitmap_{i}"] = self._vector_bitmap_spec(i)
        specs.update(self._vector_chunk_specs())
        for i in range(1, PIVOT_LEVEL):
            specs[f"array_{i}"] = self._vector_array_spec(i)
        return specs

    def _vector_bitmap_spec(self, i, prev=None):
        from ..core.vector import VectorStepSpec

        shift = IPV4_WIDTH - i

        def select(lanes):
            return lanes.values("addr") >> shift, None

        def update(lanes, vals, found, active, i=i):
            lanes.assign(f"hit_{i}", vals)

        return VectorStepSpec(update, select=select,
                              reader=self.bitmaps[i].vector_reader(prev))

    def _vector_array_spec(self, i):
        from ..core.vector import VectorStepSpec

        shift = IPV4_WIDTH - i
        view = self.arrays[i].vector_reader()

        def update(lanes, vals, found, active, i=i, shift=shift, view=view):
            probe = lanes.truthy(f"hit_{i}") & ~lanes.truthy("done")
            hops, hit = view.gather(lanes.values("addr") >> shift, probe)
            lanes.assign_where("hop", hit, hops)
            lanes.assign_where("done", hit, 1)

        return VectorStepSpec(update)

    def _vector_chunk_specs(self):
        """The chunk_24 + array_24 spec pair over one frozen chunk view.

        They share the membership probe (array_24 must skip lanes the
        chunk store owns), so a delta that touches the chunk store
        regenerates both together — never one without the other.
        """
        from ..core.vector import VectorStepSpec

        # Pivot-pushed chunks: membership by sorted-slot probe, hops as
        # a (chunks x 256) matrix with a None mask.
        chunk_slots = np.array(sorted(self.chunks), dtype=np.int64)
        chunk_hops = np.zeros((max(1, len(chunk_slots)), CHUNK_SIZE),
                              dtype=np.int64)
        chunk_none = np.ones_like(chunk_hops, dtype=bool)
        for row, slot in enumerate(chunk_slots.tolist()):
            for off, hop in enumerate(self.chunks[slot]):
                if hop is not None:
                    chunk_hops[row, off] = hop
                    chunk_none[row, off] = False
        suffix_shift = IPV4_WIDTH - PIVOT_LEVEL

        def chunk_rows(lanes):
            """(row, member) for each lane's /24 slot in the chunk store."""
            slot = lanes.values("addr") >> suffix_shift
            if chunk_slots.size == 0:
                return (np.zeros(lanes.n, dtype=np.int64),
                        np.zeros(lanes.n, dtype=bool))
            row = np.minimum(np.searchsorted(chunk_slots, slot),
                             chunk_slots.size - 1)
            member = (lanes.truthy(f"hit_{PIVOT_LEVEL}")
                      & (chunk_slots[row] == slot))
            return row, member

        def chunk_update(lanes, vals, found, active):
            row, member = chunk_rows(lanes)
            offset = lanes.values("addr") & (CHUNK_SIZE - 1)
            take = (member & ~chunk_none[row, offset]
                    & ~lanes.truthy("done"))
            lanes.assign_where("hop", take, chunk_hops[row, offset])
            lanes.assign_where("done", take, 1)

        view = self.arrays[PIVOT_LEVEL].vector_reader()
        shift = IPV4_WIDTH - PIVOT_LEVEL

        def array_update(lanes, vals, found, active):
            probe = (lanes.truthy(f"hit_{PIVOT_LEVEL}")
                     & ~lanes.truthy("done"))
            _row, member = chunk_rows(lanes)
            probe &= ~member  # chunk lanes were handled above
            hops, hit = view.gather(lanes.values("addr") >> shift, probe)
            lanes.assign_where("hop", hit, hops)
            lanes.assign_where("done", hit, 1)

        return {"chunk_24": VectorStepSpec(chunk_update),
                f"array_{PIVOT_LEVEL}": VectorStepSpec(array_update)}

    def vector_extract_hop(self, lanes):
        vals = lanes.values("hop").copy()
        none = lanes.is_none("hop").copy()
        if self.default_hop is not None:
            vals[none] = self.default_hop
            none[:] = False
        return vals, none

    # ------------------------------------------------------------------
    # Chip layout
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        return sail_layout_from_counts(
            chunk_count=len(self.chunks), name=self.name
        )

    def idioms_applied(self) -> List[IdiomApplication]:
        return []  # SAIL is the pre-CRAM starting point


def sail_layout_from_counts(chunk_count: int, name: str = "SAIL") -> Layout:
    """SAIL's chip layout given the number of pivot-pushed chunks.

    Bitmaps and arrays are structural (their size is ``2**i``
    regardless of population); only the chunk store depends on the
    database, which is why §7.1 can scale SAIL from the length
    histogram alone.
    """
    bitmaps = [
        LogicalTable(f"B{i}", MemoryKind.SRAM, entries=1 << i, key_width=i,
                     data_width=1, direct_index=True, raw_bits=1 << i,
                     unaligned_key=True)
        for i in range(1, PIVOT_LEVEL + 1)
    ]
    arrays = [
        LogicalTable(f"N{i}", MemoryKind.SRAM, entries=1 << i, key_width=i,
                     data_width=NEXT_HOP_BITS, direct_index=True,
                     raw_bits=(1 << i) * NEXT_HOP_BITS, unaligned_key=True)
        for i in range(1, PIVOT_LEVEL + 1)
    ]
    phases = [
        Phase("bitmaps", bitmaps, dependent_alu_ops=1),
        Phase("resolve", [], dependent_alu_ops=2),
        Phase("next-hop arrays", arrays, dependent_alu_ops=1),
    ]
    if chunk_count:
        chunk_table = LogicalTable(
            "N32-chunks", MemoryKind.SRAM, entries=chunk_count * CHUNK_SIZE,
            key_width=0, data_width=NEXT_HOP_BITS,
            raw_bits=chunk_count * CHUNK_SIZE * NEXT_HOP_BITS,
        )
        phases.append(Phase("pivot-pushed chunks", [chunk_table], dependent_alu_ops=1))
    return Layout(name, phases)


def sail_layout_from_distribution(dist: LengthDistribution, name: str = "SAIL") -> Layout:
    """Analytic SAIL layout for the §7.1 scaling experiments.

    Upper-bounds chunks at one per prefix longer than the pivot (each
    long prefix pushes at most one /24 chunk; nesting only reduces the
    count).
    """
    return sail_layout_from_counts(dist.count_longer_than(PIVOT_LEVEL), name)
