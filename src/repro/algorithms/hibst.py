"""HI-BST (Shen et al. [65]): the IPv6 SRAM-only baseline (§6.5.1).

HI-BST performs IPv6 lookup with a hierarchical *balanced* search tree
that maps each prefix to a unique node — the most memory-efficient
IPv6 scheme to date [90].  Its weakness on RMT chips, which §7.2
quantifies, is depth: a balanced tree over ``n`` prefixes needs about
``log2(n)`` dependent probes, and every probe is a pipeline stage.

Reproduction notes (see DESIGN.md):

* The tree is stored *per level* (memory fan-out), each level one
  logical table; the per-level mapping is what yields the paper's 18
  ideal-RMT stages at 190k prefixes and the ~340k-prefix ceiling.
* Search works on the prefix start points ordered by (value, length).
  The predecessor of an address under this order either contains the
  address (then it is the LPM) or shares its longest containing
  ancestor with it; each node therefore carries its chain of covering
  ancestors — real-table nesting is shallow, and the node-size
  constant below (from [65]'s memory model) accounts for it.
* Updates rebalance by rebuilding (the paper's baseline comparison
  only exercises memory and stages, not update latency).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import exact_table
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from .base import UPDATE_REBUILD, LookupAlgorithm

NEXT_HOP_BITS = 8
POINTER_BITS = 20
#: Bits per tree node under [65]'s memory model: 64b key, 8b next hop,
#: two 20b children, 24b balance/ancestor metadata.
NODE_BITS = 64 + NEXT_HOP_BITS + 2 * POINTER_BITS + 24


class _Node:
    __slots__ = ("prefix", "hop", "ancestors", "left", "right")

    def __init__(self, prefix: Prefix, hop: int,
                 ancestors: List[Tuple[int, int]]):
        self.prefix = prefix
        self.hop = hop
        #: [(length, hop)] of FIB prefixes properly covering this one,
        #: ascending by length.
        self.ancestors = ancestors
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class HiBst(LookupAlgorithm):
    """Behavioural HI-BST over any address family (the paper uses IPv6)."""

    #: Updates rebalance by rebuilding the whole balanced tree.
    update_strategy = UPDATE_REBUILD

    def __init__(self, fib: Fib):
        self.width = fib.width
        self.name = "HI-BST"
        self._fib_snapshot = list(fib)
        self._build()

    def _build(self) -> None:
        self._vector_arrays = None  # linearized-level cache (lane compiler)
        entries = sorted(
            self._fib_snapshot, key=lambda kv: (kv[0].value, kv[0].length)
        )
        self.size = len(entries)
        nodes: List[_Node] = []
        # Ancestor chains via a stack sweep over (value, length) order:
        # a covering prefix always precedes its descendants.
        stack: List[Tuple[Prefix, int]] = []
        for prefix, hop in entries:
            while stack and not stack[-1][0].is_prefix_of(prefix):
                stack.pop()
            ancestors = [(p.length, h) for p, h in stack]
            nodes.append(_Node(prefix, hop, ancestors))
            stack.append((prefix, hop))

        #: Per-level storage: levels[d][i] mirrors the balanced tree.
        self.levels: List[List[_Node]] = []
        self.root_index: Optional[int] = None

        def build(lo: int, hi: int, depth: int) -> Optional[int]:
            if lo > hi:
                return None
            while len(self.levels) <= depth:
                self.levels.append([])
            mid = (lo + hi) // 2
            node = nodes[mid]
            left = build(lo, mid - 1, depth + 1)
            right = build(mid + 1, hi, depth + 1)
            node.left = left
            node.right = right
            index = len(self.levels[depth])
            self.levels[depth].append(node)
            return index

        self.root_index = build(0, len(nodes) - 1, 0)

    # ------------------------------------------------------------------
    # Updates: rebuild (the balanced structure is static here)
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        self._check_prefix(prefix)
        self._fib_snapshot = [
            (p, h) for p, h in self._fib_snapshot if p != prefix
        ] + [(prefix, next_hop)]
        self._build()

    def delete(self, prefix: Prefix) -> None:
        self._check_prefix(prefix)
        kept = [(p, h) for p, h in self._fib_snapshot if p != prefix]
        if len(kept) == len(self._fib_snapshot):
            raise KeyError(str(prefix))
        self._fib_snapshot = kept
        self._build()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _predecessor(self, address: int) -> Optional[_Node]:
        """Largest node with (value, length) <= (address, width)."""
        index, level = self.root_index, 0
        best: Optional[_Node] = None
        while index is not None:
            node = self.levels[level][index]
            if node.prefix.value <= address:
                best = node
                index = node.right
            else:
                index = node.left
            level += 1
        return best

    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        node = self._predecessor(address)
        if node is None:
            return None
        if node.prefix.matches(address):
            return node.hop
        # The LPM of `address` is the longest ancestor of the
        # predecessor that also covers `address`: its length is bounded
        # by the bits the two share.
        common = _common_bits(node.prefix.value, address, self.width)
        for length, hop in reversed(node.ancestors):
            if length <= common:
                return hop
        return None

    # ------------------------------------------------------------------
    # CRAM model: one step per tree level
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        prog = CramProgram(
            "HI-BST", registers=["addr", "ptr", "pred_level", "pred_index"]
        )
        previous: Optional[str] = None
        if self.root_index is None:
            prog.add_step(Step("empty", reads=["addr"], writes=["ptr"],
                               action=lambda s, r: None))
            return prog
        for depth, level_nodes in enumerate(self.levels):
            table = exact_table(
                f"level_{depth}", 0, len(level_nodes), NODE_BITS,
                key_selector=lambda s, depth=depth: (
                    self.root_index if depth == 0 else s.get("ptr")
                ),
                backing=lambda i, nodes=level_nodes: (i, nodes[i]),
            )

            def act(state: dict, result, depth=depth) -> None:
                if result is None:
                    state["ptr"] = None
                    return
                index, node = result
                if node.prefix.value <= state["addr"]:
                    state["pred_level"], state["pred_index"] = depth, index
                    state["ptr"] = node.right
                else:
                    state["ptr"] = node.left

            step = Step(f"level_{depth}", table=table,
                        reads=["addr", "ptr", "pred_level", "pred_index"],
                        writes=["ptr", "pred_level", "pred_index"], action=act)
            prog.add_step(step, after=[previous] if previous else [])
            previous = step.name
        return prog

    def cram_extract_hop(self, state: dict) -> Optional[int]:
        if state.get("pred_level") is None:
            return None
        node = self.levels[state["pred_level"]][state["pred_index"]]
        if node.prefix.matches(state["addr"]):
            return node.hop
        common = _common_bits(node.prefix.value, state["addr"], self.width)
        for length, hop in reversed(node.ancestors):
            if length <= common:
                return hop
        return None

    # ------------------------------------------------------------------
    # Vector lowering (the lane compiler)
    # ------------------------------------------------------------------
    def vector_specs(self):
        """Lower the balanced-tree walk to lane kernels.

        Each level is linearized into flat per-field arrays (prefix
        value, child indices) indexed by the ``ptr`` register; the
        predecessor descent becomes one fancy-indexed compare per
        level.  Node values are full address width, so widths beyond
        the int64 lane limit stay on the scalar bridge.
        """
        import numpy as np

        from ..core.vector import MAX_VECTOR_WIDTH, VectorStepSpec

        if self.width > MAX_VECTOR_WIDTH:
            return {}
        if self.root_index is None:
            return {"empty": VectorStepSpec(
                update=lambda lanes, _v, _f, _a: None)}

        specs = {}
        root = self.root_index
        for depth, level_nodes in enumerate(self.levels):
            values = np.array([n.prefix.value for n in level_nodes],
                              dtype=np.int64)
            left = np.array(
                [0 if n.left is None else n.left for n in level_nodes],
                dtype=np.int64)
            left_none = np.array([n.left is None for n in level_nodes],
                                 dtype=bool)
            right = np.array(
                [0 if n.right is None else n.right for n in level_nodes],
                dtype=np.int64)
            right_none = np.array([n.right is None for n in level_nodes],
                                  dtype=bool)

            def level_update(lanes, _vals, _found, _active, depth=depth,
                             values=values, left=left, left_none=left_none,
                             right=right, right_none=right_none):
                if depth == 0:
                    walking = np.ones(lanes.n, dtype=bool)
                    idx = np.full(lanes.n, root, dtype=np.int64)
                else:
                    walking = lanes.present("ptr")
                    idx = np.where(walking, lanes.values("ptr"), 0)
                le = walking & (values[idx] <= lanes.values("addr"))
                gt = walking & ~le
                lanes.assign_where("pred_level", le, depth)
                lanes.assign_where("pred_index", le, idx)
                ptr_vals = np.zeros(lanes.n, dtype=np.int64)
                ptr_none = np.ones(lanes.n, dtype=bool)
                np.copyto(ptr_vals, right[idx], where=le)
                np.copyto(ptr_none, right_none[idx], where=le)
                np.copyto(ptr_vals, left[idx], where=gt)
                np.copyto(ptr_none, left_none[idx], where=gt)
                lanes.assign("ptr", ptr_vals, none=ptr_none)

            specs[f"level_{depth}"] = VectorStepSpec(update=level_update)
        return specs

    def _vector_extract_arrays(self):
        """Flattened node + CSR ancestor arrays for vector extraction
        (cached; ``_build`` invalidates)."""
        import numpy as np

        if self._vector_arrays is None:
            offsets: List[int] = []
            total = 0
            for level_nodes in self.levels:
                offsets.append(total)
                total += len(level_nodes)
            value = np.zeros(total, dtype=np.int64)
            length = np.zeros(total, dtype=np.int64)
            hop = np.zeros(total, dtype=np.int64)
            anc_start = np.zeros(total + 1, dtype=np.int64)
            anc_len: List[int] = []
            anc_hop: List[int] = []
            gid = 0
            for level_nodes in self.levels:
                for node in level_nodes:
                    value[gid] = node.prefix.value
                    length[gid] = node.prefix.length
                    hop[gid] = node.hop
                    for alen, ahop in node.ancestors:  # ascending by length
                        anc_len.append(alen)
                        anc_hop.append(ahop)
                    gid += 1
                    anc_start[gid] = len(anc_len)
            self._vector_arrays = (
                np.array(offsets, dtype=np.int64), value, length, hop,
                anc_start, np.array(anc_len, dtype=np.int64),
                np.array(anc_hop, dtype=np.int64),
            )
        return self._vector_arrays

    def vector_extract_hop(self, lanes):
        import numpy as np

        n = lanes.n
        vals = np.zeros(n, dtype=np.int64)
        none = np.ones(n, dtype=bool)
        pred = lanes.present("pred_level")
        if self.root_index is None or not pred.any():
            return vals, none
        offsets, value, length, hop, anc_start, anc_len, anc_hop = (
            self._vector_extract_arrays())
        gid = np.where(
            pred,
            offsets[np.where(pred, lanes.values("pred_level"), 0)]
            + lanes.values("pred_index"), 0)
        addr = lanes.values("addr")
        shift = self.width - length[gid]
        matches = pred & ((addr >> shift) == (value[gid] >> shift))
        np.copyto(vals, hop[gid], where=matches)
        none &= ~matches
        # Non-matching predecessors resolve through the longest covering
        # ancestor whose length fits the shared leading bits: a bounded
        # per-lane binary search over the CSR ancestor chain.
        rest = pred & ~matches
        if rest.any() and anc_hop.size:
            common = self.width - _bit_length_vec(value[gid] ^ addr)
            lo = np.where(rest, anc_start[gid], 0)
            hi = np.where(rest, anc_start[gid + 1], 0)
            start = lo.copy()
            while True:
                cont = lo < hi
                if not cont.any():
                    break
                mid = (lo + hi) >> 1
                safe = np.where(cont, mid, 0)
                go = cont & (anc_len[safe] <= common)
                lo = np.where(go, mid + 1, lo)
                hi = np.where(cont & ~go, mid, hi)
            found = rest & (lo > start)
            safe = np.maximum(lo - 1, 0)
            np.copyto(vals, anc_hop[safe], where=found)
            none &= ~found
        vals[none] = 0
        return vals, none

    # ------------------------------------------------------------------
    # Chip layout
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        return hibst_layout_from_size(self.size, name=self.name)


def _common_bits(a: int, b: int, width: int) -> int:
    """Length of the shared leading bits of two addresses."""
    diff = a ^ b
    return width if diff == 0 else width - diff.bit_length()


def _bit_length_vec(x):
    """Per-element ``int.bit_length`` over a non-negative int64 array.

    A shift-halving reduction — exact, unlike a float ``log2`` whose
    rounding misclassifies values near powers of two.
    """
    import numpy as np

    x = x.copy()
    out = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = x >= (np.int64(1) << shift)
        out += np.where(big, shift, 0)
        x = np.where(big, x >> shift, x)
    return out + (x != 0)


def hibst_layout_from_size(n: int, name: str = "HI-BST") -> Layout:
    """Analytic HI-BST layout for ``n`` prefixes (§7.2 scaling).

    A balanced tree over ``n`` nodes has ``ceil(log2(n+1))`` levels;
    level ``d`` holds ``min(2**d, remaining)`` nodes and is one phase.
    """
    phases: List[Phase] = []
    remaining = n
    depth = 0
    while remaining > 0:
        level_nodes = min(1 << depth, remaining)
        remaining -= level_nodes
        table = LogicalTable(
            f"level_{depth}", MemoryKind.SRAM, entries=level_nodes,
            key_width=0, data_width=NODE_BITS,
        )
        # Compare-then-descend fits one ideal-RMT stage (two dependent
        # ALU ops), two Tofino-2 stages.
        phases.append(Phase(f"level {depth}", [table], dependent_alu_ops=2))
        depth += 1
    if not phases:
        phases.append(Phase("empty", [], dependent_alu_ops=1))
    return Layout(name, phases)
