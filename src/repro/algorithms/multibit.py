"""Multibit tries with controlled prefix expansion (Srinivasan & Varghese [70]).

The trie-based baseline (§5).  Each level consumes a fixed *stride* of
address bits; a node is a ``2**stride`` array of slots holding a next
hop (from prefixes expanded within the node) and/or a child pointer.
Strides trade lookup depth against expansion waste — the starting
point MASHUP improves by hybridizing nodes between TCAM and SRAM.

This module also owns the trie construction that MASHUP reuses: nodes
remember their un-expanded *segments* (the prefix fragments that ended
inside them), which is what the I1/I2 hybridization rule counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import exact_table
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from .base import UPDATE_IN_PLACE, LookupAlgorithm

NEXT_HOP_BITS = 8
POINTER_BITS = 20
#: SRAM slot: valid bit + next hop + child pointer.
SLOT_BITS = 1 + NEXT_HOP_BITS + POINTER_BITS


class TrieNode:
    """One multibit-trie node, stored sparsely.

    The hardware rendering of a direct-indexed node is a dense
    ``2**stride`` array — and that density is exactly what the
    accounting charges — but the *simulator* keeps only the raw
    segments and answers slot queries by probing lengths descending,
    so wide sparse nodes (e.g. 16-bit-stride IPv6 leaves) cost memory
    proportional to their population, not their span.
    """

    __slots__ = ("stride", "level", "children", "segments", "_lengths")

    def __init__(self, stride: int, level: int):
        self.stride = stride
        self.level = level
        self.children: Dict[int, "TrieNode"] = {}
        #: (segment bits, segment length) -> hop; the node's un-expanded
        #: contents, used by MASHUP's TCAM rendering.
        self.segments: Dict[Tuple[int, int], int] = {}
        self._lengths: Dict[int, int] = {}  # length -> segment count

    def set_segment(self, bits: int, length: int, hop: int) -> None:
        """Install a prefix fragment ending inside this node."""
        if not 1 <= length <= self.stride:
            raise ValueError(f"segment length {length} outside [1, {self.stride}]")
        if (bits, length) not in self.segments:
            self._lengths[length] = self._lengths.get(length, 0) + 1
        self.segments[(bits, length)] = hop

    def remove_segment(self, bits: int, length: int) -> None:
        if (bits, length) not in self.segments:
            raise KeyError((bits, length))
        del self.segments[(bits, length)]
        remaining = self._lengths[length] - 1
        if remaining:
            self._lengths[length] = remaining
        else:
            del self._lengths[length]

    def hop_at(self, slot: int) -> Optional[int]:
        """The expanded next hop of one slot: its longest covering segment."""
        for length in sorted(self._lengths, reverse=True):
            hop = self.segments.get((slot >> (self.stride - length), length))
            if hop is not None:
                return hop
        return None

    def expanded_slots(self) -> Dict[int, Optional[int]]:
        """slot -> hop for every slot covered by some segment.

        Processes segments by ascending length so longer (more
        specific) segments overwrite shorter ones — controlled prefix
        expansion within the node.
        """
        slots: Dict[int, Optional[int]] = {}
        for (bits, length), hop in sorted(
            self.segments.items(), key=lambda kv: kv[0][1]
        ):
            base = bits << (self.stride - length)
            for offset in range(1 << (self.stride - length)):
                slots[base | offset] = hop
        return slots

    def slot_hop_for_child(self, slot: int) -> Optional[int]:
        """The LPM *within this node* along a child's path."""
        return self.hop_at(slot)

    def tcam_items(self) -> int:
        """Entries a TCAM rendering needs: segments + pure child slots.

        A child whose slot coincides with a full-stride segment shares
        that entry (the entry carries both hop and pointer).
        """
        extra_children = sum(
            1 for slot in self.children if (slot, self.stride) not in self.segments
        )
        return len(self.segments) + extra_children

    def used_slots(self) -> int:
        slots = set(self.expanded_slots())
        slots.update(self.children)
        return len(slots)


class MultibitTrie(LookupAlgorithm):
    """A fixed-stride multibit trie with incremental updates."""

    update_strategy = UPDATE_IN_PLACE

    def __init__(self, fib: Fib, strides: Sequence[int]):
        if sum(strides) != fib.width:
            raise ValueError(
                f"strides {list(strides)} sum to {sum(strides)}, not {fib.width}"
            )
        if any(s <= 0 for s in strides):
            raise ValueError("strides must be positive")
        self.width = fib.width
        self.strides = list(strides)
        self.name = f"Multibit trie ({'-'.join(map(str, strides))})"
        self.level_base = [sum(strides[:i]) for i in range(len(strides))]
        self.root = TrieNode(strides[0], 0)
        self.default_hop: Optional[int] = None
        for prefix, hop in fib:
            self.insert(prefix, hop)

    # ------------------------------------------------------------------
    # Updates (standard multibit-trie algorithms, Appendix A.3.3)
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        self._check_prefix(prefix)
        if prefix.length == 0:
            self.default_hop = next_hop
            return
        node = self.root
        for level, stride in enumerate(self.strides):
            base = self.level_base[level]
            if prefix.length <= base + stride:
                node.set_segment(
                    prefix.slice(base, prefix.length - base),
                    prefix.length - base,
                    next_hop,
                )
                return
            slot = prefix.slice(base, stride)
            if slot not in node.children:
                node.children[slot] = TrieNode(self.strides[level + 1], level + 1)
            node = node.children[slot]
        raise AssertionError("prefix longer than the stride cover")

    def delete(self, prefix: Prefix) -> None:
        self._check_prefix(prefix)
        if prefix.length == 0:
            self.default_hop = None
            return
        path: List[Tuple[TrieNode, int]] = []
        node = self.root
        for level, stride in enumerate(self.strides):
            base = self.level_base[level]
            if prefix.length <= base + stride:
                node.remove_segment(
                    prefix.slice(base, prefix.length - base), prefix.length - base
                )
                break
            slot = prefix.slice(base, stride)
            if slot not in node.children:
                raise KeyError(str(prefix))
            path.append((node, slot))
            node = node.children[slot]
        # Prune empty nodes bottom-up.
        for parent, slot in reversed(path):
            child = parent.children[slot]
            if child.segments or child.children:
                break
            del parent.children[slot]

    # ------------------------------------------------------------------
    # Lookup (stride walk, tracking the best hop)
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        best = self.default_hop
        node: Optional[TrieNode] = self.root
        for level, stride in enumerate(self.strides):
            base = self.level_base[level]
            slot = (address >> (self.width - base - stride)) & ((1 << stride) - 1)
            hop = node.hop_at(slot)
            if hop is not None:
                best = hop
            node = node.children.get(slot)
            if node is None:
                break
        return best

    # ------------------------------------------------------------------
    # Introspection shared with MASHUP
    # ------------------------------------------------------------------
    def nodes_by_level(self) -> List[List[TrieNode]]:
        levels: List[List[TrieNode]] = [[] for _ in self.strides]
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            levels[node.level].append(node)
            frontier.extend(node.children.values())
        return levels

    # ------------------------------------------------------------------
    # CRAM model: one step per level
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        prog = CramProgram(
            "multibit", registers=["addr", "node", "best", "done"]
        )
        levels = self.nodes_by_level()
        node_ids: Dict[int, Tuple[int, int]] = {}
        for level_nodes in levels:
            for i, node in enumerate(level_nodes):
                node_ids[id(node)] = (node.level, i)

        previous: Optional[str] = None
        for level, stride in enumerate(self.strides):
            level_nodes = levels[level]
            entries = len(level_nodes) * (1 << stride)

            def backing(key: int, level=level, level_nodes=level_nodes, stride=stride):
                node_index, slot = key >> stride, key & ((1 << stride) - 1)
                node = level_nodes[node_index]
                child = node.children.get(slot)
                return (node.hop_at(slot), node_ids[id(child)][1] if child else None)

            def selector(s: dict, level=level, stride=stride):
                if s.get("done") or s.get("node") is None:
                    return None
                base = self.level_base[level]
                slot = (s["addr"] >> (self.width - base - stride)) & ((1 << stride) - 1)
                return (s["node"] << stride) | slot

            # Pointer-addressed: the key is the row address, no storage.
            table = exact_table(
                f"level_{level}", 0, entries, SLOT_BITS,
                key_selector=selector, backing=backing,
            )

            def act(state: dict, result) -> None:
                if result is None:
                    if state.get("node") is not None and not state.get("done"):
                        state["node"], state["done"] = None, 1
                    return
                hop, child = result
                if hop is not None:
                    state["best"] = hop
                state["node"] = child
                if child is None:
                    state["done"] = 1

            step = Step(f"level_{level}", table=table,
                        reads=["addr", "node", "best", "done"],
                        writes=["node", "best", "done"], action=act)
            prog.add_step(step, after=[previous] if previous else [])
            previous = step.name
        return prog

    def cram_initial_state(self) -> dict:
        return {"node": 0, "best": self.default_hop}

    def cram_extract_hop(self, state: dict):
        return state.get("best")

    # ------------------------------------------------------------------
    # Lane compiler (repro.core.vector): every level fully lowered
    # ------------------------------------------------------------------
    def vector_specs(self):
        from ..core.vector import VectorStepSpec

        levels = self.nodes_by_level()
        node_ids: Dict[int, Tuple[int, int]] = {}
        for level_nodes in levels:
            for i, node in enumerate(level_nodes):
                node_ids[id(node)] = (node.level, i)

        specs = {}
        for level, stride in enumerate(self.strides):
            level_nodes = levels[level]
            size = max(1, len(level_nodes)) << stride
            # Dense (node << stride) | slot arrays: expanded hops and
            # child pointers, each with a None mask.  Hops fill by
            # ascending segment length so longer segments overwrite —
            # controlled prefix expansion as numpy slice assignments.
            hop_v = np.zeros(size, dtype=np.int64)
            hop_n = np.ones(size, dtype=bool)
            child_v = np.zeros(size, dtype=np.int64)
            child_n = np.ones(size, dtype=bool)
            for node_index, node in enumerate(level_nodes):
                base = node_index << stride
                for (bits, length), hop in sorted(
                        node.segments.items(), key=lambda kv: kv[0][1]):
                    lo = base + (bits << (stride - length))
                    hi = lo + (1 << (stride - length))
                    hop_v[lo:hi] = hop
                    hop_n[lo:hi] = False
                for slot, child in node.children.items():
                    child_v[base + slot] = node_ids[id(child)][1]
                    child_n[base + slot] = False

            base_bits = self.level_base[level]
            shift = self.width - base_bits - stride
            mask = (1 << stride) - 1

            def update(lanes, vals, found, active, stride=stride,
                       shift=shift, mask=mask, hop_v=hop_v, hop_n=hop_n,
                       child_v=child_v, child_n=child_n):
                walking = ~lanes.truthy("done") & lanes.present("node")
                slot = (lanes.values("addr") >> shift) & mask
                key = np.where(walking,
                               (lanes.values("node") << stride) | slot, 0)
                lanes.assign_where("best", walking & ~hop_n[key], hop_v[key])
                lanes.assign_where("node", walking, child_v[key],
                                   none=child_n[key])
                lanes.assign_where("done", walking & child_n[key], 1)

            specs[f"level_{level}"] = VectorStepSpec(update)
        return specs

    def vector_extract_hop(self, lanes):
        return lanes.values("best"), lanes.is_none("best")

    def layout(self) -> Layout:
        phases = []
        for level, nodes in enumerate(self.nodes_by_level()):
            table = LogicalTable(
                f"level_{level}", MemoryKind.SRAM,
                entries=len(nodes) * (1 << self.strides[level]),
                key_width=0, data_width=SLOT_BITS,
            )
            phases.append(Phase(f"level {level}", [table], dependent_alu_ops=1))
        return Layout(self.name, phases)
