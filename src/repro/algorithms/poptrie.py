"""Poptrie (Asai & Ohara [7]): the compressed-trie software champion.

The paper *declines* to CRAM-ify Poptrie: "we do not consider
state-of-the-art compressed trie schemes like Poptrie [...] because in
the CRAM model, one can directly compress with TCAM without the extra
computational and storage costs of bitmap compression" (§2.3), and
rejects it as an SRAM baseline because "they require too many memory
accesses and stages" (§6.5.1).  Implementing it makes those judgements
measurable: Poptrie's SRAM footprint is indeed tiny, but every level
needs a bitmap extraction, a 64-bit popcount, and a base-plus-offset
add — a chain of dependent ALU work that multiplies pipeline stages on
RMT hardware, which is exactly the cost MASHUP's TCAM nodes avoid.

Structure (faithful to the original):

* *direct pointing*: a ``2**dp_bits`` root array jumps straight to a
  level-0 node or leaf;
* 6-bit stride internal nodes holding two 64-bit vectors — ``vector``
  marks slots with children, ``leafvec`` marks the starts of leaf
  runs — plus dense child/leaf base offsets;
* children and leaves live in packed arrays indexed by popcount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import exact_table
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from .base import LookupAlgorithm, UpdateUnsupported

STRIDE = 6
NEXT_HOP_BITS = 16  # poptrie stores 16-bit leaves
#: vector(64) + leafvec(64) + child base(32) + leaf base(32).
NODE_BITS = 64 + 64 + 32 + 32
DP_ENTRY_BITS = 32
#: Dependent ALU chain per level: extract 6 bits, mask+popcount, add base.
LEVEL_ALU_OPS = 3


@dataclass
class _Node:
    vector: int = 0
    leafvec: int = 0
    child_base: int = 0
    leaf_base: int = 0


class Poptrie(LookupAlgorithm):
    """Behavioural Poptrie with direct pointing."""

    def __init__(self, fib: Fib, dp_bits: int = 16):
        self.width = fib.width
        if not 1 <= dp_bits < self.width:
            raise ValueError(f"dp_bits {dp_bits} outside [1, {self.width})")
        self.dp_bits = dp_bits
        self.name = f"Poptrie (dp={dp_bits})"
        self._fib = fib

        # Level boundaries: dp_bits, then 6-bit strides with a ragged
        # final stride reaching the address width.
        self._boundaries = list(range(dp_bits, self.width, STRIDE))

        # Which blocks have FIB prefixes strictly longer than the block.
        self._extends: Set[Tuple[int, int]] = set()
        for prefix, _hop in fib:
            for boundary in self._boundaries:
                if prefix.length > boundary:
                    self._extends.add((boundary, prefix.bits >> (prefix.length - boundary)))

        #: Per level: packed node and leaf arrays (level 0 is just
        #: below the direct-pointing table).
        self.levels: List[List[_Node]] = []
        self.leaf_arrays: List[List[int]] = []
        #: Direct-pointing table: ('node', index) | ('leaf', hop+1 | 0).
        self.dp_table: List[Tuple[str, int]] = []
        for block in range(1 << dp_bits):
            if (dp_bits, block) in self._extends:
                index = self._build_node(block, dp_bits, level=0)
                self.dp_table.append(("node", index))
            else:
                hop = fib.lookup(block << (self.width - dp_bits))
                self.dp_table.append(("leaf", 0 if hop is None else hop + 1))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _stride_at(self, depth: int) -> int:
        """6 bits per level, ragged at the bottom of the address."""
        return min(STRIDE, self.width - depth)

    def _build_node(self, block: int, depth: int, level: int) -> int:
        while len(self.levels) <= level:
            self.levels.append([])
            self.leaf_arrays.append([])
        node = _Node()
        nodes = self.levels[level]
        leaves = self.leaf_arrays[level]
        index = len(nodes)
        nodes.append(node)

        stride = self._stride_at(depth)
        child_blocks = []
        pending_leaves: List[Tuple[int, int]] = []  # (slot, encoded hop)
        previous_leaf: Optional[int] = None
        for slot in range(1 << stride):
            child_block = (block << stride) | slot
            child_depth = depth + stride
            if (child_depth, child_block) in self._extends:
                node.vector |= 1 << slot
                child_blocks.append(child_block)
                continue
            hop = self._fib.lookup(child_block << (self.width - child_depth))
            encoded = 0 if hop is None else hop + 1
            if previous_leaf is None or encoded != previous_leaf:
                node.leafvec |= 1 << slot
                pending_leaves.append((slot, encoded))
            previous_leaf = encoded

        node.leaf_base = len(leaves)
        leaves.extend(encoded for _slot, encoded in pending_leaves)
        # Children are built after this node so the packed child array
        # is contiguous: record the base, then recurse in slot order.
        node.child_base = len(nodes)  # placeholder; fixed below
        child_indexes = [
            self._build_node(cb, depth + stride, level + 1) for cb in child_blocks
        ]
        node.child_base = child_indexes[0] if child_indexes else 0
        # Contiguity invariant: recursion appends children depth-first,
        # so sibling order == packed order at the next level.
        for offset, child_index in enumerate(child_indexes):
            assert child_index == node.child_base + offset
        return index

    # ------------------------------------------------------------------
    # Updates: unsupported — the packed node/leaf arrays and popcount
    # bases shift under any mutation; rebuild from the FIB instead.
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        raise UpdateUnsupported(
            f"{self.name}: packed popcount arrays have no in-place insert; "
            "rebuild from the FIB"
        )

    def delete(self, prefix: Prefix) -> None:
        raise UpdateUnsupported(
            f"{self.name}: packed popcount arrays have no in-place delete; "
            "rebuild from the FIB"
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        kind, value = self.dp_table[address >> (self.width - self.dp_bits)]
        if kind == "leaf":
            return value - 1 if value else None
        index, level, depth = value, 0, self.dp_bits
        while True:
            node = self.levels[level][index]
            stride = self._stride_at(depth)
            slot = (address >> (self.width - depth - stride)) & ((1 << stride) - 1)
            below = (1 << (slot + 1)) - 1
            if (node.vector >> slot) & 1:
                index = node.child_base + bin(node.vector & below).count("1") - 1
                level += 1
                depth += stride
                continue
            run = bin(node.leafvec & below).count("1")
            encoded = self.leaf_arrays[level][node.leaf_base + run - 1]
            return encoded - 1 if encoded else None

    # ------------------------------------------------------------------
    # CRAM model
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        prog = CramProgram(
            "Poptrie",
            registers=["addr", "ptr", "leaf_ref", "hop"],
        )
        dp = exact_table(
            "dp", self.dp_bits, 1 << self.dp_bits, DP_ENTRY_BITS,
            key_selector=lambda s: s["addr"] >> (self.width - self.dp_bits),
            backing=lambda i: self.dp_table[i],
        )

        def dp_act(state: dict, result) -> None:
            kind, value = result
            if kind == "leaf":
                state["hop"] = value - 1 if value else None
            else:
                state["ptr"] = value

        prog.add_step(Step("dp", table=dp, reads=["addr"],
                           writes=["ptr", "hop"], action=dp_act))

        previous = "dp"
        for level in range(len(self.levels)):
            depth = self.dp_bits + level * STRIDE

            def selector(s: dict, level=level):
                return None if s.get("ptr") is None else s["ptr"]

            def backing(i: int, level=level):
                return self.levels[level][i]

            def act(state: dict, result, level=level, depth=depth) -> None:
                state["ptr"] = None
                if result is None:
                    return
                stride = self._stride_at(depth)
                slot = (state["addr"] >> (self.width - depth - stride)) & (
                    (1 << stride) - 1
                )
                below = (1 << (slot + 1)) - 1
                if (result.vector >> slot) & 1:
                    state["ptr"] = (
                        result.child_base + bin(result.vector & below).count("1") - 1
                    )
                else:
                    run = bin(result.leafvec & below).count("1")
                    state["leaf_ref"] = (level, result.leaf_base + run - 1)

            table = exact_table(
                f"nodes_L{level}", 0, len(self.levels[level]), NODE_BITS,
                key_selector=selector, backing=backing,
            )
            step = Step(f"nodes_L{level}", table=table,
                        reads=["addr", "ptr", "leaf_ref"],
                        writes=["ptr", "leaf_ref"], action=act)
            prog.add_step(step, after=[previous])
            previous = step.name

        leaf_spec = exact_table(
            "leaves", 0, sum(len(l) for l in self.leaf_arrays), NEXT_HOP_BITS,
            key_selector=lambda s: s.get("leaf_ref"),
            backing=lambda ref: self.leaf_arrays[ref[0]][ref[1]],
        )

        def leaf_act(state: dict, result) -> None:
            if result is not None:
                state["hop"] = result - 1 if result else None

        prog.add_step(Step("leaves", table=leaf_spec,
                           reads=["leaf_ref", "hop"], writes=["hop"],
                           action=leaf_act), after=[previous])
        return prog

    # ------------------------------------------------------------------
    # Lane compiler (repro.core.vector): every step fully lowered
    # ------------------------------------------------------------------
    def vector_specs(self):
        from ..core.vector import VectorStepSpec, popcount64

        specs = {}

        # Direct-pointing table as kind/value columns (kind 0 = leaf).
        dp_kind = np.array([k == "node" for k, _v in self.dp_table],
                           dtype=bool)
        dp_val = np.array([v for _k, v in self.dp_table], dtype=np.int64)
        dp_shift = self.width - self.dp_bits

        def dp_update(lanes, vals, found, active):
            slot = lanes.values("addr") >> dp_shift
            is_node = dp_kind[slot]
            value = dp_val[slot]
            routed = ~is_node & (value != 0)
            lanes.assign("hop", np.where(routed, value - 1, 0), none=~routed)
            lanes.assign("ptr", np.where(is_node, value, 0), none=~is_node)

        specs["dp"] = VectorStepSpec(dp_update)

        # The per-level leaf arrays concatenate into one flat store; a
        # lane's leaf_ref becomes level offset + leaf_base + run - 1 —
        # an int, so the SoA register file never sees the scalar
        # model's (level, index) tuples.
        leaf_offsets = []
        offset = 0
        for leaves in self.leaf_arrays:
            leaf_offsets.append(offset)
            offset += len(leaves)
        all_leaves = np.array(
            [e for leaves in self.leaf_arrays for e in leaves] or [0],
            dtype=np.int64)
        full = np.uint64(0xFFFFFFFFFFFFFFFF)

        def level_spec(level):
            nodes = self.levels[level]
            vector = np.array([n.vector for n in nodes] or [0],
                              dtype=np.uint64)
            leafvec = np.array([n.leafvec for n in nodes] or [0],
                               dtype=np.uint64)
            child_base = np.array([n.child_base for n in nodes] or [0],
                                  dtype=np.int64)
            leaf_base = np.array([n.leaf_base for n in nodes] or [0],
                                 dtype=np.int64)
            depth = self.dp_bits + level * STRIDE
            stride = self._stride_at(depth)
            shift = self.width - depth - stride
            mask = (1 << stride) - 1
            level_offset = leaf_offsets[level]

            def update(lanes, vals, found, active):
                walking = lanes.present("ptr")
                ptr = np.where(walking, lanes.values("ptr"), 0)
                slot = ((lanes.values("addr") >> shift) & mask).astype(
                    np.uint64)
                # (1 << (slot+1)) - 1 without the slot=63 shift overflow.
                below = full >> (np.uint64(63) - slot)
                vec = vector[ptr]
                has_child = ((vec >> slot) & np.uint64(1)).astype(bool)
                descend = walking & has_child
                child = child_base[ptr] + popcount64(vec & below) - 1
                run = popcount64(leafvec[ptr] & below)
                leaf_ref = level_offset + leaf_base[ptr] + run - 1
                lanes.assign("ptr", np.where(descend, child, 0),
                             none=~descend)
                lanes.assign_where("leaf_ref", walking & ~has_child,
                                   leaf_ref)

            return VectorStepSpec(update)

        for level in range(len(self.levels)):
            specs[f"nodes_L{level}"] = level_spec(level)

        def leaf_update(lanes, vals, found, active):
            referenced = lanes.present("leaf_ref")
            encoded = all_leaves[
                np.where(referenced, lanes.values("leaf_ref"), 0)]
            lanes.assign_where("hop", referenced, encoded - 1,
                               none=encoded == 0)

        specs["leaves"] = VectorStepSpec(leaf_update)
        return specs

    # ------------------------------------------------------------------
    # Chip layout
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        phases = [Phase(
            "direct pointing",
            [LogicalTable("dp", MemoryKind.SRAM, entries=1 << self.dp_bits,
                          key_width=self.dp_bits, data_width=DP_ENTRY_BITS,
                          direct_index=True)],
            dependent_alu_ops=1,
        )]
        for level, nodes in enumerate(self.levels):
            phases.append(Phase(
                f"level {level}",
                [LogicalTable(f"nodes_L{level}", MemoryKind.SRAM,
                              entries=len(nodes), key_width=0,
                              data_width=NODE_BITS)],
                # The bitmap-compression tax: extract, popcount, add —
                # a dependent chain every level, every packet.
                dependent_alu_ops=LEVEL_ALU_OPS,
            ))
        total_leaves = sum(len(l) for l in self.leaf_arrays)
        phases.append(Phase(
            "leaves",
            [LogicalTable("leaves", MemoryKind.SRAM, entries=total_leaves,
                          key_width=0, data_width=NEXT_HOP_BITS)],
            dependent_alu_ops=1,
        ))
        return Layout(self.name, phases)

    def total_nodes(self) -> int:
        return sum(len(level) for level in self.levels)

    def total_leaves(self) -> int:
        return sum(len(level) for level in self.leaf_arrays)

    def sram_bits(self) -> int:
        """Software footprint: dp + nodes + packed leaves."""
        return ((1 << self.dp_bits) * DP_ENTRY_BITS
                + self.total_nodes() * NODE_BITS
                + self.total_leaves() * NEXT_HOP_BITS)
