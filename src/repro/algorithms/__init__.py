"""IP lookup algorithms: the paper's contributions and all baselines."""

from .base import (
    UPDATE_IN_PLACE,
    UPDATE_REBUILD,
    UPDATE_UNSUPPORTED,
    LookupAlgorithm,
    UpdateUnsupported,
)
from .bsic import Bsic, BstForest, bsic_layout_from_counts
from .dxr import Dxr
from .hibst import HiBst, hibst_layout_from_size
from .logical_tcam import LogicalTcam, logical_tcam_capacity, logical_tcam_layout
from .mashup import Mashup, default_strides
from .multibit import MultibitTrie
from .poptrie import Poptrie
from .resail import (
    Resail,
    bit_mark,
    resail_layout_from_counts,
    resail_layout_from_distribution,
    unmark,
)
from .sail import Sail, sail_layout_from_counts, sail_layout_from_distribution
from .vrf import VrfRouter, tag_prefix

__all__ = [
    "LookupAlgorithm",
    "UpdateUnsupported",
    "UPDATE_IN_PLACE",
    "UPDATE_REBUILD",
    "UPDATE_UNSUPPORTED",
    "Bsic",
    "BstForest",
    "bsic_layout_from_counts",
    "Dxr",
    "HiBst",
    "hibst_layout_from_size",
    "LogicalTcam",
    "logical_tcam_capacity",
    "logical_tcam_layout",
    "Mashup",
    "default_strides",
    "MultibitTrie",
    "Poptrie",
    "Resail",
    "bit_mark",
    "resail_layout_from_counts",
    "resail_layout_from_distribution",
    "unmark",
    "Sail",
    "sail_layout_from_counts",
    "sail_layout_from_distribution",
    "VrfRouter",
    "tag_prefix",
]
