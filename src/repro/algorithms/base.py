"""Common interface for all IP-lookup algorithms.

Every algorithm in this package — the paper's three contributions
(RESAIL, BSIC, MASHUP) and the baselines (SAIL, DXR, multibit trie,
HI-BST, logical TCAM) — implements :class:`LookupAlgorithm`:

* :meth:`~LookupAlgorithm.lookup` — the behavioural longest-prefix
  match, tested against the reference :class:`~repro.prefix.trie.Fib`;
* :meth:`~LookupAlgorithm.cram_program` — the algorithm as an
  executable CRAM model program, from which
  :meth:`~LookupAlgorithm.cram_metrics` derives the §6.4 numbers;
* :meth:`~LookupAlgorithm.layout` — the chip-independent table layout
  that the ideal-RMT and Tofino-2 mappers consume (§6.2);
* :meth:`~LookupAlgorithm.insert` / :meth:`~LookupAlgorithm.delete` —
  incremental updates where the paper describes them (Appendix A.3).
"""

from __future__ import annotations

import abc
import copy
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    import numpy as np

from ..chip.layout import Layout
from ..core.idioms import IdiomApplication
from ..core.metrics import CramMetrics, measure
from ..core.program import CramProgram
from ..prefix.prefix import Prefix


class UpdateUnsupported(NotImplementedError):
    """The algorithm does not support this incremental update.

    The managed runtime (:class:`repro.control.ManagedFib`) treats this
    as the signal to fall back to a full rebuild from its oracle FIB;
    algorithms must raise exactly this type — never a bare
    ``NotImplementedError`` and never a silently wrong structure.
    """


#: The three update disciplines of Appendix A.3.
UPDATE_IN_PLACE = "in_place"      # true incremental updates (RESAIL, MASHUP)
UPDATE_REBUILD = "rebuild"        # insert/delete work but rebuild internally (BSIC)
UPDATE_UNSUPPORTED = "unsupported"  # insert/delete raise UpdateUnsupported


class LookupAlgorithm(abc.ABC):
    """Base class for IP lookup algorithms."""

    #: Human-readable name, e.g. ``"RESAIL (min_bmp=13)"``.
    name: str
    #: Address width (32 for IPv4, 64 for the IPv6 global-routing view).
    width: int
    #: How the scheme takes route updates (Appendix A.3): one of
    #: :data:`UPDATE_IN_PLACE`, :data:`UPDATE_REBUILD`,
    #: :data:`UPDATE_UNSUPPORTED`.  The managed runtime routes whole
    #: batches through a single rebuild for the latter two.
    update_strategy: str = UPDATE_UNSUPPORTED

    @abc.abstractmethod
    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match next hop for ``address`` (None = miss)."""

    @abc.abstractmethod
    def cram_program(self) -> CramProgram:
        """The algorithm as a CRAM model program."""

    @abc.abstractmethod
    def layout(self) -> Layout:
        """The chip-independent table layout for the chip mappers."""

    def cram_metrics(self) -> CramMetrics:
        """The §6.4 CRAM metrics (TCAM bits, SRAM bits, steps)."""
        return measure(self.cram_program())

    def idioms_applied(self) -> List[IdiomApplication]:
        """Which optimization idioms this algorithm embodies."""
        return []

    # ------------------------------------------------------------------
    # Incremental updates (Appendix A.3); default: unsupported.
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        raise UpdateUnsupported(
            f"{self.name} does not support insert; rebuild from the FIB "
            "(ManagedFib does this automatically)"
        )

    def delete(self, prefix: Prefix) -> None:
        raise UpdateUnsupported(
            f"{self.name} does not support delete; rebuild from the FIB "
            "(ManagedFib does this automatically)"
        )

    @property
    def supports_updates(self) -> bool:
        """True if :meth:`insert`/:meth:`delete` are usable at all."""
        return self.update_strategy != UPDATE_UNSUPPORTED

    # ------------------------------------------------------------------
    # Delta builds (incremental commit pipeline)
    # ------------------------------------------------------------------
    #: True if :meth:`apply_delta` mutates the live structure in place
    #: instead of requiring a rebuild.  Algorithms that set this must
    #: guarantee every ``apply_delta_op`` either applies fully or
    #: raises (so the managed runtime can undo via inverse ops), and
    #: that their compiled plans read *frozen* snapshots — an in-place
    #: mutation must never be visible through an already-compiled plan.
    supports_delta: bool = False

    def apply_delta_op(self, op: "DeltaOp") -> None:
        """Apply one delta op to the live structure.

        The default dispatches to :meth:`insert`/:meth:`delete`
        (treating a withdraw of an absent prefix as a no-op), which is
        correct for any in-place-updatable algorithm; schemes with a
        cheaper or stricter path override.  Raise
        :class:`UpdateUnsupported` to make the runtime undo the
        partial delta and fall back to a planned rebuild.
        """
        from ..control.churn import ANNOUNCE

        if op.action == ANNOUNCE:
            self.insert(op.prefix, op.next_hop)
        elif op.prev_hop is not None:
            self.delete(op.prefix)

    def apply_delta(self, delta: "FibDelta") -> None:
        """Apply a whole committed delta (batch hooks included)."""
        self.begin_update_batch()
        try:
            for op in delta:
                self.apply_delta_op(op)
        finally:
            self.end_update_batch()

    def plan_patch(self, delta: "FibDelta", plan) -> Optional[Dict[str, Callable]]:
        """Frozen readers for the plan steps ``delta`` invalidates.

        ``None`` (the default) means "not patchable — recompile"; an
        empty dict means the delta touches no table the compiled plan
        reads (extraction state may still be refreshed).  Keys must be
        step names the plan knows, values the replacement readers
        (same contract as :meth:`plan_backings`).
        """
        return None

    def vector_patch(self, delta: "FibDelta",
                     vector_plan) -> Optional[Dict[str, "VectorStepSpec"]]:
        """Fresh lowering specs for the kernels ``delta`` invalidates.

        Same contract as :meth:`plan_patch` but for the lane compiler:
        ``None`` means recompile, a dict maps step names to new
        :class:`~repro.core.vector.VectorStepSpec` instances.
        """
        return None

    def plan_extract_factory(self) -> Optional[Callable]:
        """A *frozen* replacement for :meth:`cram_extract_hop`.

        Algorithms whose extraction reads live mutable state (e.g.
        SAIL's ``default_hop``) return a closure over a snapshot of
        that state; the plan compiler re-evaluates the factory at
        compile and patch time, so in-place deltas never leak through
        a compiled plan's extraction.  ``None`` keeps the bound method.
        """
        return None

    def vector_extract_factory(self) -> Optional[Callable]:
        """Frozen replacement for :meth:`vector_extract_hop` (see
        :meth:`plan_extract_factory`)."""
        return None

    # ------------------------------------------------------------------
    # Transactional hooks (used by repro.control.runtime.ManagedFib)
    # ------------------------------------------------------------------
    def snapshot(self) -> "LookupAlgorithm":
        """A control-plane snapshot for transactional rollback.

        The default deep copy is correct for every behavioural
        simulator in this package (they hold only plain containers);
        algorithms with cheaper copy-on-write state may override.
        """
        return copy.deepcopy(self)

    def begin_update_batch(self) -> None:
        """Called before a batch of insert/delete calls.

        Algorithms that re-derive expensive structures per update
        (e.g. MASHUP's hybridization) may defer that work until
        :meth:`end_update_batch`.
        """

    def end_update_batch(self) -> None:
        """Called after a successful batch of insert/delete calls."""

    # ------------------------------------------------------------------
    # Artifact hooks (used by repro.artifact for mmap warm starts)
    # ------------------------------------------------------------------
    def state_export(self) -> Optional[Tuple[dict, Dict[str, "np.ndarray"]]]:
        """The built structure as ``(meta, arrays)`` for persistence.

        ``meta`` must be JSON-serializable; ``arrays`` maps section
        names to NumPy arrays whose bytes, together with ``meta``,
        fully determine the structure — ``state_import`` must rebuild
        an algorithm whose every lookup agrees with this one.  Both
        sides must be deterministic (same state, same bytes), which is
        what pins the artifact golden-format test.

        The default ``None`` opts out: the artifact then stores only
        the FIB and a load rebuilds through the scheme's factory —
        still correct, just a cold build instead of a warm start.
        """
        return None

    @classmethod
    def state_import(cls, meta: dict,
                     arrays: Dict[str, "np.ndarray"]) -> "LookupAlgorithm":
        """Rebuild a built algorithm from :meth:`state_export` output.

        ``arrays`` are typically copy-on-write views into an mmapped
        snapshot: implementations may adopt them zero-copy (mutations
        dirty private pages, never the file), but must not assume they
        are writable file-backed storage.
        """
        raise NotImplementedError(
            f"{cls.__name__} does not support artifact state import")

    def adopt_views(self, views: Dict[str, "np.ndarray"]) -> None:
        """Accept persisted vector-table views after a state import.

        ``views`` maps step name → the view object a previous
        ``VectorPlan`` compile was frozen against (reconstructed
        zero-copy over an mmapped artifact).  Implementations may
        stash them as the ``prev`` snapshots their spec builders hand
        to ``vector_reader(prev)``, so the first warm compile replays
        an empty log tail instead of re-flattening every table.  The
        default ignores them — adoption is an optimisation, never a
        correctness requirement.
        """

    # ------------------------------------------------------------------
    # Executing the CRAM program (model-vs-native equivalence checks)
    # ------------------------------------------------------------------
    def cram_initial_state(self) -> dict:
        """Extra parser-provided registers beyond ``addr``."""
        return {}

    def cram_extract_hop(self, state: dict) -> Optional[int]:
        """Read the final next hop out of the CRAM machine state."""
        return state.get("hop")

    def cram_lookup(self, address: int, tracer=None) -> Optional[int]:
        """Run one lookup through the CRAM interpreter.

        Must agree with :meth:`lookup` for every address — the tests
        enforce it.  This is what makes the CRAM model in this package
        a machine rather than a spreadsheet.

        ``tracer`` (a :class:`repro.obs.Tracer`) observes every wave,
        step, and table access; traced and untraced runs return the
        same next hop.
        """
        from ..core.interpreter import run

        program = self.cram_program()
        state = run(program, {"addr": address, **self.cram_initial_state()},
                    tracer)
        return self.cram_extract_hop(state)

    # ------------------------------------------------------------------
    # Compiled plans (repro.core.plan / repro.engine)
    # ------------------------------------------------------------------
    def plan_backings(self) -> Dict[str, Callable]:
        """Uninstrumented table readers for the plan compiler.

        Keyed by *step name*; each value replaces that step's table
        backing in the compiled plan (see
        :meth:`repro.core.plan.LookupPlan`).  Algorithms whose CRAM
        programs bind instrumented bound methods (``Bitmap.test``,
        ``DirectIndexTable.load``, …) override this to hand the
        planner their memory simulators' ``plan_reader()`` snapshot
        views instead.  The default exposes nothing; the compiler then
        falls back to each table's live backing.
        """
        return {}

    def compile_plan(self):
        """This algorithm as a compiled :class:`~repro.core.plan.LookupPlan`."""
        from ..core.plan import LookupPlan

        return LookupPlan(self)

    # ------------------------------------------------------------------
    # Lane compiler (repro.core.vector)
    # ------------------------------------------------------------------
    def vector_specs(self) -> Dict[str, "VectorStepSpec"]:
        """Per-step lowering specs for the lane compiler.

        Keyed by *step name* (unknown names raise ``VectorError``, as
        ``plan_backings`` does for the plan compiler); each value is a
        :class:`~repro.core.vector.VectorStepSpec` describing the
        step's selector/action as array kernels.  Steps without a spec
        run under the per-lane scalar bridge — correct, just not fast.
        The default lowers nothing, so every algorithm compiles
        mixed-mode out of the box.
        """
        return {}

    def vector_extract_hop(self, lanes):
        """Array form of :meth:`cram_extract_hop`.

        Returns ``(vals, none)`` int64/bool arrays over the batch.
        Algorithms that override :meth:`cram_extract_hop` must also
        override this to count as fully lowered; the base
        implementation is a placeholder the lane compiler detects (by
        identity) and never calls.
        """
        raise NotImplementedError  # pragma: no cover - sentinel, never called

    def compile_vector_plan(self, plan=None, fuse=True):
        """This algorithm lowered to a :class:`~repro.core.vector.VectorPlan`.

        ``fuse=False`` disables the fusion pass — each lowered step
        dispatches as its own kernel (the debugging escape hatch).
        """
        from ..core.vector import VectorPlan

        return VectorPlan(self, plan=plan, fuse=fuse)

    # ------------------------------------------------------------------
    def lookup_batch(self, addresses) -> List[Optional[int]]:
        """Convenience vector form of :meth:`lookup`."""
        lookup = self.lookup
        return [lookup(a) for a in addresses]

    def _check_address(self, address: int) -> None:
        if not 0 <= address < (1 << self.width):
            raise ValueError(
                f"address {address:#x} outside the {self.width}-bit space"
            )

    def _check_prefix(self, prefix: Prefix) -> None:
        if prefix.width != self.width:
            raise ValueError(
                f"prefix width {prefix.width} does not match algorithm width {self.width}"
            )
