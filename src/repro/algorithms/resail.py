"""RESAIL: rethinking SAIL through the CRAM lens (§3).

RESAIL keeps SAIL's per-length bitmaps but applies three idioms:

* **I6 look-aside TCAM** — prefixes longer than the pivot level (24)
  move into a small TCAM searched in parallel, eliminating SAIL's
  pivot pushing and its worst-case 256x expansion;
* **I3 compress with SRAM** — the 32 MB of directly-indexed next-hop
  arrays collapse into a single d-left hash table; *bit marking*
  (append a 1, left-shift to a fixed 25-bit width) gives every prefix
  of length ``min_bmp..24`` a unique fixed-width hash key, so one
  table serves all lengths (§3.2, Table 2);
* **I7 step reduction** — all bitmap lookups and the look-aside TCAM
  probe are data-independent and execute in one step; the hash lookup
  is the second and final step.

``min_bmp`` trades parallelism against SRAM: bitmaps below it are
folded upward by controlled prefix expansion (flipping only 0 bits, so
longer originals win).  The paper picks ``min_bmp=13`` for AS65000
because almost no IPv4 prefixes are shorter than 13 bits (P2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.idioms import Idiom, IdiomApplication
from ..core.program import CramProgram
from ..core.step import Step
from ..core.table import direct_index_table, exact_table, ternary_table
from ..memory.dleft import DLeftHashTable, dleft_cells
from ..memory.sram import Bitmap
from ..memory.tcam import TcamTable
from ..prefix.distribution import LengthDistribution
from ..prefix.prefix import IPV4_WIDTH, Prefix
from ..prefix.trie import BinaryTrie, Fib
from .base import UPDATE_IN_PLACE, LookupAlgorithm

PIVOT_LEVEL = 24
NEXT_HOP_BITS = 8
#: Bit-marked hash keys are pivot+1 bits wide (§3.2).
HASH_KEY_BITS = PIVOT_LEVEL + 1
DEFAULT_MIN_BMP = 13


def bit_mark(bits: int, length: int, pivot: int = PIVOT_LEVEL) -> int:
    """The §3.2 bit-marking trick: append a 1, left-shift to width pivot+1.

    >>> format(bit_mark(0b011, 3, pivot=6), '07b')   # paper's Table 2
    '0111000'
    """
    if not 0 <= length <= pivot:
        raise ValueError(f"length {length} outside [0, {pivot}]")
    return ((bits << 1) | 1) << (pivot - length)


def unmark(key: int, pivot: int = PIVOT_LEVEL) -> Tuple[int, int]:
    """Invert :func:`bit_mark`: scan from the right for the first 1."""
    if key <= 0:
        raise ValueError("not a marked key")
    shift = (key & -key).bit_length() - 1
    return key >> (shift + 1), pivot - shift


class Resail(LookupAlgorithm):
    """Behavioural RESAIL with incremental updates (Appendix A.3.1)."""

    update_strategy = UPDATE_IN_PLACE
    supports_delta = True

    def __init__(self, fib: Fib, min_bmp: int = DEFAULT_MIN_BMP,
                 hash_capacity: Optional[int] = None):
        if fib.width != IPV4_WIDTH:
            raise ValueError("RESAIL is an IPv4 scheme")
        if not 0 <= min_bmp <= PIVOT_LEVEL:
            raise ValueError(f"min_bmp {min_bmp} outside [0, {PIVOT_LEVEL}]")
        self.width = IPV4_WIDTH
        self.min_bmp = min_bmp
        self.name = f"RESAIL (min_bmp={min_bmp})"

        self.look_aside = TcamTable(IPV4_WIDTH, name="look-aside")
        self.bitmaps: Dict[int, Bitmap] = {
            i: Bitmap(i, name=f"B{i}") for i in range(min_bmp, PIVOT_LEVEL + 1)
        }
        if hash_capacity is None:
            hash_capacity = max(64, self._estimate_hash_entries(fib))
        # auto_grow lets long update sequences exceed the build-time
        # estimate without degrading into the overflow area.
        self.hash_table: DLeftHashTable[int] = DLeftHashTable(
            HASH_KEY_BITS, NEXT_HOP_BITS, capacity=hash_capacity,
            name="next-hops", auto_grow=True,
        )
        #: Prefixes shorter than min_bmp, kept for expansion maintenance.
        self._shorts = BinaryTrie(IPV4_WIDTH)
        #: For each expanded slot of B_min_bmp: the originating length.
        self._slot_origin: Dict[int, int] = {}
        #: Imported vector views (artifact warm starts); spec builders
        #: hand them to ``vector_reader(prev=...)`` as re-freeze bases.
        self._artifact_views: Dict[str, object] = {}

        for prefix, hop in fib:
            self.insert(prefix, hop)

    def _estimate_hash_entries(self, fib: Fib) -> int:
        count = 0
        for prefix, _hop in fib:
            if prefix.length > PIVOT_LEVEL:
                continue
            if prefix.length >= self.min_bmp:
                count += 1
            else:
                count += 1 << (self.min_bmp - prefix.length)
        return count

    # ------------------------------------------------------------------
    # Updates (Appendix A.3.1)
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, next_hop: int) -> None:
        self._check_prefix(prefix)
        if prefix.length > PIVOT_LEVEL:
            self.look_aside.insert_prefix(prefix, next_hop)
            return
        if prefix.length >= self.min_bmp:
            self.bitmaps[prefix.length].set(prefix.bits)
            self.hash_table.insert(bit_mark(prefix.bits, prefix.length), next_hop)
            if prefix.length == self.min_bmp:
                # A real min_bmp prefix displaces any expansion here.
                self._slot_origin[prefix.bits] = self.min_bmp
            return
        # Short prefix: fold into B_min_bmp by controlled expansion,
        # flipping only slots owned by shorter (or no) originals.
        self._shorts.insert(prefix, next_hop)
        for expanded in prefix.expansions(self.min_bmp):
            self._claim_slot(expanded.bits, prefix.length, next_hop)

    def delete(self, prefix: Prefix) -> None:
        self._check_prefix(prefix)
        if prefix.length > PIVOT_LEVEL:
            self.look_aside.delete_prefix(prefix)
            return
        if prefix.length >= self.min_bmp:
            key = bit_mark(prefix.bits, prefix.length)
            if self.hash_table.lookup(key) is None:
                raise KeyError(str(prefix))
            self.hash_table.delete(key)
            self.bitmaps[prefix.length].set(prefix.bits, False)
            if prefix.length == self.min_bmp:
                del self._slot_origin[prefix.bits]
                self._refill_slot(prefix.bits)
            return
        self._shorts.delete(prefix)
        for expanded in prefix.expansions(self.min_bmp):
            if self._slot_origin.get(expanded.bits) == prefix.length:
                del self._slot_origin[expanded.bits]
                self.hash_table.delete(bit_mark(expanded.bits, self.min_bmp))
                self.bitmaps[self.min_bmp].set(expanded.bits, False)
                self._refill_slot(expanded.bits)

    def _claim_slot(self, slot: int, origin_length: int, next_hop: int) -> None:
        """Expansion slot ownership: longer originals win (§3.2).

        An equal-length claim comes from the *same* prefix (a slot has one
        ancestor per length), i.e. a next-hop modify — it must fall through
        and overwrite the stored hop.
        """
        current = self._slot_origin.get(slot)
        if current is not None and current > origin_length:
            return
        self._slot_origin[slot] = origin_length
        self.bitmaps[self.min_bmp].set(slot)
        self.hash_table.insert(bit_mark(slot, self.min_bmp), next_hop)

    def _refill_slot(self, slot: int) -> None:
        """After a deletion, the next-longest short prefix reclaims a slot."""
        address = slot << (IPV4_WIDTH - self.min_bmp)
        covering = self._shorts.lookup_prefix(address)
        if covering is None:
            return
        hop = self._shorts.lookup(address)
        self._claim_slot(slot, covering.length, hop)

    # ------------------------------------------------------------------
    # Artifact state (repro.artifact warm starts)
    # ------------------------------------------------------------------
    def state_export(self):
        """Flatten the bitmaps, hash entries, look-aside rows and the
        expansion bookkeeping.  Importing replays none of the §3.2
        controlled prefix expansion — the expanded slots are already in
        the bitmap/hash content."""
        arrays = {}
        for i in range(self.min_bmp, PIVOT_LEVEL + 1):
            arrays[f"bitmap_{i:02d}"] = self.bitmaps[i]._bits.view(np.uint8)
        arrays["tcam"] = np.array(
            [(e.value, e.mask, e.priority, e.data)
             for e in self.look_aside._entries],
            dtype=np.int64).reshape(-1, 4)
        # The d-left table exports its *physical* cell placement
        # (subtable, bucket, key, hop; subtable -1 = overflow area) so
        # the import adopts cells directly instead of re-running the
        # d-left placement hash per key — the dominant cold-build loop
        # a warm start exists to skip.  Placement is deterministic for
        # a given insert history, so the export stays byte-stable.
        table = self.hash_table
        cells = [(sub, b, key, hop)
                 for sub, subtable in enumerate(table._buckets)
                 for b, bucket in enumerate(subtable)
                 for key, hop in bucket]
        cells.extend((-1, 0, key, hop) for key, hop in table._overflow)
        arrays["hash_cells"] = np.array(cells, dtype=np.int64).reshape(-1, 4)
        arrays["shorts"] = np.array(
            sorted((p.bits, p.length, h) for p, h in self._shorts.items()),
            dtype=np.int64).reshape(-1, 3)
        origins = sorted(self._slot_origin.items())
        arrays["slot_origin_slots"] = np.array([s for s, _ in origins],
                                               dtype=np.int64)
        arrays["slot_origin_lens"] = np.array([l for _, l in origins],
                                              dtype=np.int64)
        return {"min_bmp": self.min_bmp,
                "hash_capacity": self.hash_table.capacity}, arrays

    @classmethod
    def state_import(cls, meta, arrays) -> "Resail":
        obj = cls.__new__(cls)
        obj.width = IPV4_WIDTH
        obj.min_bmp = int(meta["min_bmp"])
        obj.name = f"RESAIL (min_bmp={obj.min_bmp})"
        obj.look_aside = TcamTable(IPV4_WIDTH, name="look-aside")
        for value, mask, priority, data in arrays["tcam"]:
            obj.look_aside.insert(int(value), int(mask), int(priority),
                                  int(data))
        obj.bitmaps = {
            i: Bitmap.from_bits(i, arrays[f"bitmap_{i:02d}"], name=f"B{i}")
            for i in range(obj.min_bmp, PIVOT_LEVEL + 1)}
        table = DLeftHashTable(
            HASH_KEY_BITS, NEXT_HOP_BITS,
            capacity=int(meta["hash_capacity"]),
            name="next-hops", auto_grow=True)
        cells = arrays["hash_cells"]
        buckets, nbuckets = table._buckets, table.buckets_per_subtable
        for sub, b, key, hop in zip(cells[:, 0].tolist(),
                                    cells[:, 1].tolist(),
                                    cells[:, 2].tolist(),
                                    cells[:, 3].tolist()):
            if sub < 0:
                table._overflow.append((key, hop))
            elif sub < table.d and b < nbuckets:
                buckets[sub][b].append((key, hop))
            else:
                raise ValueError(
                    f"hash cell ({sub}, {b}) outside the table's "
                    f"{table.d}x{nbuckets} provisioning")
        table._count = int(cells.shape[0])
        obj.hash_table = table
        obj._shorts = BinaryTrie(IPV4_WIDTH)
        for bits, length, hop in arrays["shorts"]:
            obj._shorts.insert(
                Prefix.from_bits(int(bits), int(length), IPV4_WIDTH),
                int(hop))
        obj._slot_origin = {
            int(s): int(l) for s, l in zip(arrays["slot_origin_slots"],
                                           arrays["slot_origin_lens"])}
        obj._artifact_views = {}
        # Arm the freeze logs so adopted views (version-synced to the
        # fresh, empty log) re-freeze via an empty replay instead of a
        # full rebuild on the first vector compile.
        obj.hash_table._log = []
        for bitmap in obj.bitmaps.values():
            bitmap._log = []
        return obj

    def adopt_views(self, views) -> None:
        """Stash imported vector views as warm re-freeze bases.

        The imported backings carry fresh (empty) write logs, and the
        views were saved against exactly this content, so syncing each
        view's version to the backing's current freeze version makes
        the next ``vector_reader(prev=view)`` a no-op replay over the
        mmapped buffers."""
        for step, view in views.items():
            if step == "hash":
                view.version = self.hash_table.freeze_version
            elif step.startswith("bitmap_"):
                level = int(step[len("bitmap_"):])
                if level in self.bitmaps:
                    view.version = self.bitmaps[level].freeze_version
            else:
                continue  # look-aside TCAM views rebuild cheaply
            self._artifact_views[step] = view

    # ------------------------------------------------------------------
    # Lookup (Algorithm 1)
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        self._check_address(address)
        hop = self.look_aside.search(address)
        if hop is not None:
            return hop
        for i in range(PIVOT_LEVEL, self.min_bmp - 1, -1):
            index = address >> (IPV4_WIDTH - i)
            if self.bitmaps[i].test(index):
                return self.hash_table.lookup(bit_mark(index, i))
        return None

    # ------------------------------------------------------------------
    # CRAM model (Figure 5b: two steps)
    # ------------------------------------------------------------------
    def cram_program(self) -> CramProgram:
        registers = ["addr", "laside_hop", "hop"] + [
            f"key_{i}" for i in range(self.min_bmp, PIVOT_LEVEL + 1)
        ]
        prog = CramProgram("RESAIL", registers=registers)

        laside = ternary_table(
            "look-aside", IPV4_WIDTH, len(self.look_aside), NEXT_HOP_BITS,
            key_selector=lambda s: s["addr"], backing=self.look_aside,
        )
        prog.add_step(Step("look-aside", table=laside, reads=["addr"],
                           writes=["laside_hop"],
                           action=lambda s, r: s.__setitem__("laside_hop", r)))

        bitmap_steps = ["look-aside"]
        for i in range(self.min_bmp, PIVOT_LEVEL + 1):
            table = direct_index_table(
                f"B{i}", i, 1,
                key_selector=lambda s, i=i: s["addr"] >> (IPV4_WIDTH - i),
                backing=self.bitmaps[i].test, default=False,
            )

            def act(state: dict, result, i=i) -> None:
                state[f"key_{i}"] = (
                    bit_mark(state["addr"] >> (IPV4_WIDTH - i), i) if result else None
                )

            prog.add_step(Step(f"bitmap_{i}", table=table, reads=["addr"],
                               writes=[f"key_{i}"], action=act))
            bitmap_steps.append(f"bitmap_{i}")

        def hash_key(state: dict) -> Optional[int]:
            if state.get("laside_hop") is not None:
                return None
            for i in range(PIVOT_LEVEL, self.min_bmp - 1, -1):
                key = state.get(f"key_{i}")
                if key is not None:
                    return key
            return None

        hash_spec = exact_table(
            "next-hop hash", HASH_KEY_BITS, self.hash_table.allocated_cells,
            NEXT_HOP_BITS, key_selector=hash_key, backing=self.hash_table.lookup,
        )

        def resolve(state: dict, result) -> None:
            state["hop"] = (
                state["laside_hop"] if state["laside_hop"] is not None else result
            )

        prog.add_step(
            Step("hash", table=hash_spec,
                 reads=["laside_hop"] + [f"key_{i}" for i in
                                         range(self.min_bmp, PIVOT_LEVEL + 1)],
                 writes=["hop"], action=resolve),
            after=bitmap_steps,
        )
        return prog

    def plan_backings(self):
        """Snapshot readers for the plan compiler, one per CRAM step:
        the frozen look-aside TCAM index, byte-packed bitmaps, and the
        d-left table flattened to a single hash probe."""
        backings = {"look-aside": self.look_aside.plan_reader(),
                    "hash": self.hash_table.plan_reader()}
        for i in range(self.min_bmp, PIVOT_LEVEL + 1):
            backings[f"bitmap_{i}"] = self.bitmaps[i].plan_reader()
        return backings

    # ------------------------------------------------------------------
    # Incremental commit pipeline: which plan steps a delta invalidates
    # ------------------------------------------------------------------
    def _delta_steps(self, delta):
        steps = set()
        for op in delta:
            length = op.prefix.length
            if length > PIVOT_LEVEL:
                steps.add("look-aside")
            elif length >= self.min_bmp:
                steps.add("hash")
                steps.add(f"bitmap_{length}")
                if length == self.min_bmp:
                    # _refill_slot can flip B_min_bmp on deletions.
                    steps.add(f"bitmap_{self.min_bmp}")
            else:
                # Short prefixes fold into B_min_bmp by expansion.
                steps.add("hash")
                steps.add(f"bitmap_{self.min_bmp}")
        return steps

    def plan_patch(self, delta, plan):
        # Handing each step's previous reader back re-freezes it from
        # the backing's write log — O(delta), not O(table).
        readers = {}
        for step in self._delta_steps(delta):
            prev = plan.step_reader(step) if plan is not None else None
            if step == "look-aside":
                readers[step] = self.look_aside.plan_reader()
            elif step == "hash":
                readers[step] = self.hash_table.plan_reader(prev)
            else:
                level = int(step.rsplit("_", 1)[1])
                readers[step] = self.bitmaps[level].plan_reader(prev)
        return readers

    def vector_patch(self, delta, vector_plan):
        specs = {}
        for step in self._delta_steps(delta):
            prev = (vector_plan.step_view(step)
                    if vector_plan is not None else None)
            if step == "look-aside":
                specs[step] = self._vector_laside_spec()
            elif step == "hash":
                specs[step] = self._vector_hash_spec(prev)
            else:
                specs[step] = self._vector_bitmap_spec(
                    int(step.rsplit("_", 1)[1]), prev)
        return specs

    # ------------------------------------------------------------------
    # Lane compiler (repro.core.vector): every step fully lowered
    # ------------------------------------------------------------------
    def vector_specs(self):
        specs = {"look-aside": self._vector_laside_spec(),
                 "hash": self._vector_hash_spec()}
        for i in range(self.min_bmp, PIVOT_LEVEL + 1):
            specs[f"bitmap_{i}"] = self._vector_bitmap_spec(i)
        return specs

    def _vector_laside_spec(self):
        from ..core.vector import VectorStepSpec

        # Look-aside TCAM: one broadcast masked compare for the batch.
        # (The step's backing is the TcamTable itself, so the compiler
        # could resolve the view — passing it keeps the freeze explicit.)
        def laside_update(lanes, vals, found, active):
            lanes.assign("laside_hop", vals, none=~found)

        return VectorStepSpec(
            laside_update,
            select=lambda lanes: (lanes.values("addr"), None),
            reader=self.look_aside.vector_reader(),
        )

    def _vector_bitmap_spec(self, i, prev=None):
        from ..core.vector import VectorStepSpec

        shift = IPV4_WIDTH - i
        mark_shift = PIVOT_LEVEL - i

        def update(lanes, vals, found, active, i=i):
            # Bit marking, vectorized: append a 1, shift to width 25.
            index = lanes.values("addr") >> shift
            marked = ((index << 1) | 1) << mark_shift
            hit = vals != 0
            lanes.assign(f"key_{i}", np.where(hit, marked, 0), none=~hit)

        if prev is None:
            prev = self._artifact_views.get(f"bitmap_{i}")
        return VectorStepSpec(
            update,
            select=lambda lanes, shift=shift: (
                lanes.values("addr") >> shift, None),
            reader=self.bitmaps[i].vector_reader(prev),
        )

    def _vector_hash_spec(self, prev=None):
        from ..core.vector import VectorStepSpec

        # Final step: coalesce the longest marked key (priority 24 down
        # to min_bmp), probe the flattened d-left view, resolve against
        # the look-aside hop.
        if prev is None:
            prev = self._artifact_views.get("hash")
        hash_view = self.hash_table.vector_reader(prev)

        def hash_update(lanes, vals, found, active):
            keys = np.zeros(lanes.n, dtype=np.int64)
            have = np.zeros(lanes.n, dtype=bool)
            for i in range(PIVOT_LEVEL, self.min_bmp - 1, -1):
                key_present = lanes.present(f"key_{i}")
                np.copyto(keys, lanes.values(f"key_{i}"),
                          where=key_present & ~have)
                have |= key_present
            laside = lanes.present("laside_hop")
            hops, hit = hash_view.gather(keys, have & ~laside)
            lanes.assign("hop",
                         np.where(laside, lanes.values("laside_hop"), hops),
                         none=~laside & ~hit)

        # No select (the step coalesces its own keys), but recording
        # the view as the spec's reader lets the compiled plan hand it
        # back here for an incremental re-freeze on the next patch.
        return VectorStepSpec(hash_update, reader=hash_view)

    # ------------------------------------------------------------------
    # Chip layout
    # ------------------------------------------------------------------
    def layout(self) -> Layout:
        return resail_layout_from_counts(
            long_prefixes=len(self.look_aside),
            hash_entries=len(self.hash_table),
            min_bmp=self.min_bmp,
            name=self.name,
        )

    def idioms_applied(self) -> List[IdiomApplication]:
        return [
            IdiomApplication(Idiom.LOOK_ASIDE_TCAM, "prefixes > /24",
                             "no pivot pushing; tiny parallel TCAM"),
            IdiomApplication(Idiom.COMPRESS_WITH_SRAM, "next-hop arrays",
                             "32 MB of direct arrays -> one d-left hash table"),
            IdiomApplication(Idiom.STEP_REDUCTION, "bitmap lookups",
                             "all bitmaps + TCAM probed in one step"),
        ]


def resail_layout_from_counts(
    long_prefixes: int,
    hash_entries: int,
    min_bmp: int = DEFAULT_MIN_BMP,
    name: Optional[str] = None,
) -> Layout:
    """RESAIL's chip layout from entry counts (used analytically in §7.1)."""
    bitmaps = [
        LogicalTable(f"B{i}", MemoryKind.SRAM, entries=1 << i, key_width=i,
                     data_width=1, direct_index=True, raw_bits=1 << i,
                     unaligned_key=True)
        for i in range(min_bmp, PIVOT_LEVEL + 1)
    ]
    look_aside = LogicalTable(
        "look-aside", MemoryKind.TCAM, entries=long_prefixes,
        key_width=IPV4_WIDTH, data_width=NEXT_HOP_BITS,
    )
    hash_table = LogicalTable(
        "next-hop hash", MemoryKind.SRAM, entries=dleft_cells(hash_entries),
        key_width=HASH_KEY_BITS, data_width=NEXT_HOP_BITS, unaligned_key=True,
    )
    return Layout(
        name or f"RESAIL (min_bmp={min_bmp})",
        [
            Phase("bitmaps + look-aside TCAM", bitmaps + [look_aside],
                  dependent_alu_ops=1),
            Phase("bit marking", [], dependent_alu_ops=2),
            Phase("next-hop hash", [hash_table], dependent_alu_ops=1),
        ],
    )


def resail_layout_from_distribution(
    dist: LengthDistribution,
    min_bmp: int = DEFAULT_MIN_BMP,
    name: Optional[str] = None,
) -> Layout:
    """Analytic RESAIL layout for §7.1's length-histogram scaling."""
    long_prefixes = dist.count_longer_than(PIVOT_LEVEL)
    hash_entries = sum(dist.count(i) for i in range(min_bmp, PIVOT_LEVEL + 1))
    for length in range(min_bmp):
        hash_entries += dist.count(length) * (1 << (min_bmp - length))
    return resail_layout_from_counts(long_prefixes, hash_entries, min_bmp, name)
