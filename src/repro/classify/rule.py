"""Packet-classification rules (paper §2.5).

A classifier rule matches the classic 5-tuple — source/destination
prefixes, protocol (exact or any), and source/destination port ranges
— and carries a priority and an action.  The highest-priority (lowest
number) matching rule decides the packet's fate.

Port ranges are the classification-specific twist for TCAM storage: a
ternary row cannot express ``[lo, hi]`` directly, so each range is
decomposed into the minimal set of covering prefixes
(:func:`range_to_prefixes`) and a rule costs the *product* of its two
ranges' prefix counts in TCAM rows — the expansion that §2.5's idiom
balancing targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..prefix.prefix import Prefix

PORT_BITS = 16
PROTO_BITS = 8

#: The full port range, matching anything.
ANY_PORTS = (0, (1 << PORT_BITS) - 1)


def range_to_prefixes(lo: int, hi: int, width: int = PORT_BITS) -> List[Prefix]:
    """Minimal prefix cover of the integer range ``[lo, hi]``.

    The classic greedy decomposition: repeatedly take the largest
    aligned power-of-two block starting at ``lo``.  A ``[lo, hi]``
    range over ``w`` bits needs at most ``2w - 2`` prefixes.

    >>> [str(p) for p in range_to_prefixes(1, 6, width=3)]
    ['0b001/3@3', '0b01/2@3', '0b10/2@3', '0b110/3@3']
    """
    if not 0 <= lo <= hi < (1 << width):
        raise ValueError(f"range [{lo}, {hi}] outside {width} bits")
    out: List[Prefix] = []
    position = lo
    while position <= hi:
        # Largest block aligned at `position` that stays within [.., hi].
        max_align = (position & -position).bit_length() - 1 if position else width
        while max_align > 0 and position + (1 << max_align) - 1 > hi:
            max_align -= 1
        size_bits = max_align
        out.append(Prefix.from_bits(position >> size_bits, width - size_bits, width))
        position += 1 << size_bits
    return out


@dataclass(frozen=True)
class PacketHeader:
    """The 5-tuple a classifier inspects."""

    src_addr: int
    dst_addr: int
    protocol: int
    src_port: int
    dst_port: int


@dataclass(frozen=True)
class Rule:
    """One classifier rule.  Lower ``priority`` wins."""

    priority: int
    src: Prefix
    dst: Prefix
    protocol: Optional[int]  # None = any
    src_ports: Tuple[int, int] = ANY_PORTS
    dst_ports: Tuple[int, int] = ANY_PORTS
    action: int = 0  # e.g. 0 = deny, 1 = permit, or a QoS class

    def __post_init__(self) -> None:
        for lo, hi in (self.src_ports, self.dst_ports):
            if not 0 <= lo <= hi < (1 << PORT_BITS):
                raise ValueError(f"bad port range [{lo}, {hi}]")
        if self.protocol is not None and not 0 <= self.protocol < (1 << PROTO_BITS):
            raise ValueError(f"bad protocol {self.protocol}")

    def matches(self, packet: PacketHeader) -> bool:
        return (
            self.src.matches(packet.src_addr)
            and self.dst.matches(packet.dst_addr)
            and (self.protocol is None or self.protocol == packet.protocol)
            and self.src_ports[0] <= packet.src_port <= self.src_ports[1]
            and self.dst_ports[0] <= packet.dst_port <= self.dst_ports[1]
        )

    def tcam_rows(self) -> int:
        """TCAM rows after port-range decomposition (the I1 cost)."""
        return len(range_to_prefixes(*self.src_ports)) * len(
            range_to_prefixes(*self.dst_ports)
        )

    @property
    def key_bits(self) -> int:
        """Ternary key width: both addresses, protocol, both ports."""
        return self.src.width + self.dst.width + PROTO_BITS + 2 * PORT_BITS


class Classifier:
    """A priority-ordered rule list with a linear-scan reference match."""

    def __init__(self, rules: List[Rule]):
        self.rules = sorted(rules, key=lambda r: r.priority)
        priorities = [r.priority for r in self.rules]
        if len(set(priorities)) != len(priorities):
            raise ValueError("rule priorities must be unique")

    def __len__(self) -> int:
        return len(self.rules)

    def classify(self, packet: PacketHeader) -> Optional[int]:
        """Reference semantics: first (highest-priority) match wins."""
        for rule in self.rules:
            if rule.matches(packet):
                return rule.action
        return None

    def total_tcam_rows(self) -> int:
        return sum(rule.tcam_rows() for rule in self.rules)
