"""Flat TCAM packet classifier — the single-resource baseline (§2.5).

Every rule is expanded into ternary rows (port ranges decomposed into
prefix covers, the source/destination/protocol fields wildcarded as
declared) and loaded into one priority TCAM.  Fast, simple, and — like
the logical-TCAM IP baseline — extravagant: a rule with two
expansion-heavy port ranges can cost hundreds of rows.
"""

from __future__ import annotations

from typing import List, Optional

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..memory.tcam import TcamTable
from ..prefix.prefix import Prefix
from .rule import PORT_BITS, PROTO_BITS, PacketHeader, Rule, range_to_prefixes

ACTION_BITS = 8


class TcamClassifier:
    """All rules in one ternary table, highest priority first."""

    def __init__(self, rules: List[Rule]):
        if not rules:
            raise ValueError("empty classifier")
        widths = {r.src.width for r in rules} | {r.dst.width for r in rules}
        if len(widths) != 1:
            raise ValueError("mixed address widths in one classifier")
        self.addr_width = widths.pop()
        self.key_width = 2 * self.addr_width + PROTO_BITS + 2 * PORT_BITS
        self.rules = sorted(rules, key=lambda r: r.priority)
        self.table: TcamTable[int] = TcamTable(self.key_width, name="acl")
        self.rows = 0
        for rule in self.rules:
            self._install(rule)

    def _field_vm(self, prefix: Prefix) -> tuple:
        host = prefix.width - prefix.length
        return prefix.value, (((1 << prefix.length) - 1) << host) if prefix.length else 0

    def _install(self, rule: Rule) -> None:
        src_v, src_m = self._field_vm(rule.src)
        dst_v, dst_m = self._field_vm(rule.dst)
        if rule.protocol is None:
            proto_v, proto_m = 0, 0
        else:
            proto_v, proto_m = rule.protocol, (1 << PROTO_BITS) - 1
        for sp in range_to_prefixes(*rule.src_ports):
            sp_v, sp_m = self._field_vm(sp)
            for dp in range_to_prefixes(*rule.dst_ports):
                dp_v, dp_m = self._field_vm(dp)
                value = self._pack(src_v, dst_v, proto_v, sp_v, dp_v)
                mask = self._pack(src_m, dst_m, proto_m, sp_m, dp_m)
                self.table.insert(value, mask, priority=rule.priority,
                                  data=rule.action)
                self.rows += 1

    def _pack(self, src: int, dst: int, proto: int, sport: int, dport: int) -> int:
        key = src
        key = (key << self.addr_width) | dst
        key = (key << PROTO_BITS) | proto
        key = (key << PORT_BITS) | sport
        key = (key << PORT_BITS) | dport
        return key

    def classify(self, packet: PacketHeader) -> Optional[int]:
        key = self._pack(packet.src_addr, packet.dst_addr, packet.protocol,
                         packet.src_port, packet.dst_port)
        return self.table.search(key)

    def layout(self) -> Layout:
        table = LogicalTable(
            "acl", MemoryKind.TCAM, entries=self.rows,
            key_width=self.key_width, data_width=ACTION_BITS,
        )
        return Layout("TCAM classifier", [Phase("match", [table])])
