"""Decision-tree classifier with CRAM-coalesced leaves (§2.5).

The MASHUP recipe applied to packet classification:

* **I4 strategic cutting** — cut the rule set on destination-address
  bits, stride by stride, until leaves hold at most ``binth`` rules
  (rules too wild to push past a cut stay at the internal node);
* **I5 table coalescing** — all rule lists at one tree depth merge
  into a single tagged ternary table whose key drops the destination
  bits the path already consumed;
* **I1 compress with TCAM** — the rules stay ternary.  The SRAM
  alternative (expanding every field exactly) is computed analytically
  and is astronomically worse, confirming §2.6's observation that
  near-random keys (ports!) defeat the compression idioms.

Compared to the flat TCAM classifier the tree keeps the same *row*
count (port expansion is inherent) but narrows rows by the consumed
destination bits and — the operational win — bounds each table's size,
letting a big ACL spread across pipeline stages instead of demanding
one monolithic TCAM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..chip.layout import Layout, LogicalTable, MemoryKind, Phase
from ..core.idioms import tag_width
from ..memory.tcam import TcamTable
from ..prefix.prefix import Prefix
from .rule import PORT_BITS, PROTO_BITS, PacketHeader, Rule, range_to_prefixes
from .tcam_classifier import ACTION_BITS

#: Stop cutting when a node holds this many rules or fewer.
DEFAULT_BINTH = 16
POINTER_BITS = 16


class _Node:
    __slots__ = ("depth_bits", "rules", "children", "stride")

    def __init__(self, depth_bits: int):
        self.depth_bits = depth_bits  # dst bits consumed so far
        self.rules: List[Rule] = []
        self.children: Dict[int, "_Node"] = {}
        self.stride = 0


class TreeClassifier:
    """A destination-cut decision tree with per-depth leaf TCAMs."""

    def __init__(self, rules: List[Rule], stride: int = 4,
                 binth: int = DEFAULT_BINTH, max_depth_bits: int = 24):
        if not rules:
            raise ValueError("empty classifier")
        if stride < 1:
            raise ValueError("stride must be positive")
        self.addr_width = rules[0].dst.width
        self.stride = stride
        self.binth = binth
        self.max_depth_bits = min(max_depth_bits, self.addr_width)
        self.rules = sorted(rules, key=lambda r: r.priority)
        self.root = _Node(0)
        self.root.rules = list(self.rules)
        self._split(self.root)
        self._build_leaf_tables()

    # ------------------------------------------------------------------
    # Tree construction (I4)
    # ------------------------------------------------------------------
    def _split(self, node: _Node) -> None:
        if len(node.rules) <= self.binth:
            return
        if node.depth_bits + self.stride > self.max_depth_bits:
            return
        node.stride = self.stride
        spill: List[Rule] = []
        buckets: Dict[int, List[Rule]] = {}
        for rule in node.rules:
            if rule.dst.length < node.depth_bits + self.stride:
                spill.append(rule)
                continue
            slot = rule.dst.slice(node.depth_bits, self.stride)
            buckets.setdefault(slot, []).append(rule)
        if not buckets:
            node.stride = 0
            return
        node.rules = spill
        for slot, bucket in buckets.items():
            child = _Node(node.depth_bits + self.stride)
            child.rules = bucket
            node.children[slot] = child
            self._split(child)

    def _nodes_by_depth(self) -> Dict[int, List[_Node]]:
        levels: Dict[int, List[_Node]] = {}
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            levels.setdefault(node.depth_bits, []).append(node)
            frontier.extend(node.children.values())
        return dict(sorted(levels.items()))

    # ------------------------------------------------------------------
    # Leaf rendering (I5 per depth, I1 rows)
    # ------------------------------------------------------------------
    def _residual_width(self, depth_bits: int) -> int:
        return (self.addr_width  # src, in full
                + (self.addr_width - depth_bits)  # dst below the cut
                + PROTO_BITS + 2 * PORT_BITS)

    def _build_leaf_tables(self) -> None:
        self.leaf_tables: Dict[int, TcamTable] = {}
        self.leaf_tag_bits: Dict[int, int] = {}
        self._leaf_tags: Dict[int, int] = {}
        self.leaf_rows = 0
        for depth_bits, nodes in self._nodes_by_depth().items():
            holders = [n for n in nodes if n.rules]
            if not holders:
                continue
            tag_bits = tag_width(len(holders))
            key_width = tag_bits + self._residual_width(depth_bits)
            table: TcamTable[int] = TcamTable(key_width, name=f"leaf_d{depth_bits}")
            self.leaf_tables[depth_bits] = table
            self.leaf_tag_bits[depth_bits] = tag_bits
            for tag, node in enumerate(holders):
                self._leaf_tags[id(node)] = tag
                for rule in node.rules:
                    self._install(table, depth_bits, tag_bits, tag, rule)

    def _field_vm(self, prefix: Prefix) -> Tuple[int, int]:
        host = prefix.width - prefix.length
        mask = (((1 << prefix.length) - 1) << host) if prefix.length else 0
        return prefix.value, mask

    def _install(self, table: TcamTable, depth_bits: int, tag_bits: int,
                 tag: int, rule: Rule) -> None:
        src_v, src_m = self._field_vm(rule.src)
        dst_v, dst_m = self._field_vm(rule.dst)
        residual_dst = self.addr_width - depth_bits
        dst_keep = (1 << residual_dst) - 1
        dst_v &= dst_keep
        dst_m &= dst_keep
        if rule.protocol is None:
            proto_v, proto_m = 0, 0
        else:
            proto_v, proto_m = rule.protocol, (1 << PROTO_BITS) - 1
        residual = self._residual_width(depth_bits)
        tag_mask = ((1 << tag_bits) - 1) << residual
        for sp in range_to_prefixes(*rule.src_ports):
            sp_v, sp_m = self._field_vm(sp)
            for dp in range_to_prefixes(*rule.dst_ports):
                dp_v, dp_m = self._field_vm(dp)
                value = self._pack(depth_bits, src_v, dst_v, proto_v, sp_v, dp_v)
                mask = self._pack(depth_bits, src_m, dst_m, proto_m, sp_m, dp_m)
                table.insert((tag << residual) | value, tag_mask | mask,
                             priority=rule.priority, data=rule.action)
                self.leaf_rows += 1

    def _pack(self, depth_bits: int, src: int, dst: int, proto: int,
              sport: int, dport: int) -> int:
        key = src
        key = (key << (self.addr_width - depth_bits)) | dst
        key = (key << PROTO_BITS) | proto
        key = (key << PORT_BITS) | sport
        key = (key << PORT_BITS) | dport
        return key

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, packet: PacketHeader) -> Optional[int]:
        """Walk the cut path; match each level's rules; best priority wins.

        Semantics are identical to the flat linear scan, which the
        tests verify packet for packet.
        """
        best: Optional[Tuple[int, int]] = None
        node: Optional[_Node] = self.root
        while node is not None:
            if node.rules:
                depth_bits = node.depth_bits
                residual_dst = packet.dst_addr & ((1 << (self.addr_width - depth_bits)) - 1)
                key = self._pack(depth_bits, packet.src_addr, residual_dst,
                                 packet.protocol, packet.src_port,
                                 packet.dst_port)
                tag = self._leaf_tags[id(node)]
                entry = self.leaf_tables[depth_bits].search_entry(
                    (tag << self._residual_width(depth_bits)) | key
                )
                if entry is not None and (best is None or entry.priority < best[0]):
                    best = (entry.priority, entry.data)
            if node.stride == 0:
                break
            shift = self.addr_width - node.depth_bits - node.stride
            slot = (packet.dst_addr >> shift) & ((1 << node.stride) - 1)
            node = node.children.get(slot)
        return best[1] if best else None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def depth(self) -> int:
        def walk(node: _Node) -> int:
            if not node.children:
                return 1
            return 1 + max(walk(c) for c in node.children.values())

        return walk(self.root)

    def tcam_bits(self) -> int:
        """Total leaf-TCAM key bits (CRAM accounting)."""
        return sum(t.tcam_bits() for t in self.leaf_tables.values())

    def exact_expansion_rows(self) -> int:
        """What an SRAM (exact-match) rendering would cost in rows.

        Every wildcarded bit doubles the row count; port ranges
        multiply by their size.  This is the §2.6 point: pseudo-random
        fields make SRAM expansion astronomically infeasible.
        """
        total = 0
        for rule in self.rules:
            rows = 1
            rows <<= (rule.src.width - rule.src.length)
            rows <<= (rule.dst.width - rule.dst.length)
            if rule.protocol is None:
                rows <<= PROTO_BITS
            rows *= rule.src_ports[1] - rule.src_ports[0] + 1
            rows *= rule.dst_ports[1] - rule.dst_ports[0] + 1
            total += rows
        return total

    def layout(self) -> Layout:
        phases: List[Phase] = []
        for depth_bits, nodes in self._nodes_by_depth().items():
            tables: List[LogicalTable] = []
            cut_entries = sum(1 << n.stride for n in nodes if n.stride)
            if cut_entries:
                tables.append(LogicalTable(
                    f"cut_d{depth_bits}", MemoryKind.SRAM,
                    entries=cut_entries, key_width=0,
                    data_width=POINTER_BITS + 1,
                ))
            table = self.leaf_tables.get(depth_bits)
            if table is not None:
                tables.append(LogicalTable(
                    f"leaf_d{depth_bits}", MemoryKind.TCAM,
                    entries=len(table), key_width=table.key_width,
                    data_width=ACTION_BITS,
                ))
            if tables:
                phases.append(Phase(f"depth {depth_bits}", tables,
                                    dependent_alu_ops=1))
        return Layout("Tree classifier", phases)
