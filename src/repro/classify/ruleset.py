"""Synthetic classifier generation (ClassBench-flavoured).

Real ACLs have structure the idioms exploit: rules cluster under a
bounded set of destination aggregates (an enterprise protects its own
prefixes), protocols concentrate on TCP/UDP, and port ranges come from
a small vocabulary (exact well-known ports, ephemeral ranges, any).
The generator reproduces those properties deterministically.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..prefix.prefix import IPV4_WIDTH, Prefix
from .rule import ANY_PORTS, PacketHeader, Rule

#: The port-range vocabulary with rough ClassBench weights.
_PORT_CHOICES: List[Tuple[Tuple[int, int], float]] = [
    (ANY_PORTS, 0.45),
    ((80, 80), 0.12),
    ((443, 443), 0.12),
    ((53, 53), 0.06),
    ((22, 22), 0.05),
    ((0, 1023), 0.08),  # well-known block (prefix-friendly)
    ((1024, 65535), 0.08),  # ephemeral block (prefix-friendly)
    ((1024, 5000), 0.04),  # legacy ephemeral (expansion-heavy)
]

_PROTOCOLS: List[Tuple[Optional[int], float]] = [
    (6, 0.55),  # TCP
    (17, 0.25),  # UDP
    (None, 0.15),  # any
    (1, 0.05),  # ICMP
]


def _weighted(rng, choices):
    weights = np.array([w for _c, w in choices])
    index = rng.choice(len(choices), p=weights / weights.sum())
    return choices[int(index)][0]


def synthesize_classifier(
    rules: int,
    seed: int = 7,
    dst_aggregates: Optional[int] = None,
    width: int = IPV4_WIDTH,
) -> List[Rule]:
    """Generate ``rules`` classifier rules with realistic clustering.

    Destination prefixes concentrate under ``dst_aggregates`` /16
    aggregates (default ``max(4, rules // 24)``), sources are broad
    (often wildcards), ports/protocols follow the vocabulary above.
    """
    if rules < 1:
        raise ValueError("need at least one rule")
    rng = np.random.default_rng(seed)
    aggregates = dst_aggregates or max(4, rules // 24)
    agg_values = rng.choice(1 << 16, size=aggregates, replace=False)

    out: List[Rule] = []
    for priority in range(rules):
        # Destination: usually a /24..32 under an aggregate, sometimes
        # the aggregate itself or a wildcard.
        roll = rng.random()
        if roll < 0.75:
            agg = int(rng.choice(agg_values))
            dst_len = int(rng.choice([24, 24, 26, 28, 32]))
            suffix = int(rng.integers(0, 1 << (dst_len - 16)))
            dst = Prefix.from_bits((agg << (dst_len - 16)) | suffix, dst_len, width)
        elif roll < 0.92:
            agg = int(rng.choice(agg_values))
            dst = Prefix.from_bits(agg, 16, width)
        else:
            dst = Prefix.default(width)

        # Source: wildcard-heavy.
        roll = rng.random()
        if roll < 0.55:
            src = Prefix.default(width)
        else:
            src_len = int(rng.choice([8, 16, 24]))
            src = Prefix.from_bits(int(rng.integers(0, 1 << src_len)), src_len, width)

        out.append(Rule(
            priority=priority,
            src=src,
            dst=dst,
            protocol=_weighted(rng, _PROTOCOLS),
            src_ports=ANY_PORTS if rng.random() < 0.8 else _weighted(rng, _PORT_CHOICES),
            dst_ports=_weighted(rng, _PORT_CHOICES),
            action=int(rng.integers(0, 8)),
        ))
    return out


def classifier_workload(
    rules: List[Rule], count: int, seed: int = 8, hit_fraction: float = 0.8
) -> List[PacketHeader]:
    """Packets drawn under the rules (hits) mixed with random noise."""
    rng = np.random.default_rng(seed)
    packets: List[PacketHeader] = []
    for _ in range(count):
        if rules and rng.random() < hit_fraction:
            rule = rules[int(rng.integers(0, len(rules)))]
            src = rule.src.value | int(
                rng.integers(0, 1 << (rule.src.width - rule.src.length))
            ) if rule.src.length < rule.src.width else rule.src.value
            dst = rule.dst.value | int(
                rng.integers(0, 1 << (rule.dst.width - rule.dst.length))
            ) if rule.dst.length < rule.dst.width else rule.dst.value
            proto = rule.protocol if rule.protocol is not None else int(rng.integers(0, 256))
            sport = int(rng.integers(rule.src_ports[0], rule.src_ports[1] + 1))
            dport = int(rng.integers(rule.dst_ports[0], rule.dst_ports[1] + 1))
        else:
            src = int(rng.integers(0, 1 << 32))
            dst = int(rng.integers(0, 1 << 32))
            proto = int(rng.integers(0, 256))
            sport = int(rng.integers(0, 1 << 16))
            dport = int(rng.integers(0, 1 << 16))
        packets.append(PacketHeader(src, dst, proto, sport, dport))
    return packets
