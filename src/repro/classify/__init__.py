"""Packet classification through the CRAM lens (paper §2.5).

An extension application: the idioms that built MASHUP — strategic
cutting (I4), table coalescing (I5), TCAM compression (I1) — applied
to 5-tuple access-control classification, with a flat-TCAM baseline.
"""

from .rule import (
    ANY_PORTS,
    Classifier,
    PacketHeader,
    Rule,
    range_to_prefixes,
)
from .ruleset import classifier_workload, synthesize_classifier
from .tcam_classifier import TcamClassifier
from .tree_classifier import TreeClassifier

__all__ = [
    "ANY_PORTS",
    "Classifier",
    "PacketHeader",
    "Rule",
    "range_to_prefixes",
    "classifier_workload",
    "synthesize_classifier",
    "TcamClassifier",
    "TreeClassifier",
]
