"""Capacity headroom analysis — the paper's "next decade" claim, formalized.

The abstract promises RESAIL's 2.25M-prefix Tofino-2 capacity is
"likely sufficient for the next decade".  This module combines the §7
feasibility frontiers with the Figure 1 growth models to compute, for
any algorithm/chip pair, the year its capacity runs out — and
therefore whether the decade claim holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..datasets.growth import (
    BASE_YEAR,
    IPV4_2023,
    IPV6_2023,
    IPV4_DOUBLING_YEARS,
    IPV6_DOUBLING_YEARS,
)


@dataclass(frozen=True)
class HeadroomReport:
    """When a capacity runs out under a growth model."""

    scheme: str
    family: str
    capacity: int
    exhaustion_year: Optional[float]  # None = already exceeded
    years_of_headroom: float

    @property
    def lasts_a_decade(self) -> bool:
        return self.years_of_headroom >= 10.0

    def describe(self) -> str:
        if self.exhaustion_year is None:
            return (f"{self.scheme} ({self.family}): capacity {self.capacity:,} "
                    "is already below today's table")
        return (f"{self.scheme} ({self.family}): capacity {self.capacity:,} "
                f"lasts until ~{self.exhaustion_year:.0f} "
                f"({self.years_of_headroom:.1f} years of headroom)")


def _exhaustion(capacity: int, base: int, doubling_years: float) -> Optional[float]:
    if capacity <= base:
        return None
    return BASE_YEAR + doubling_years * math.log2(capacity / base)


def ipv4_headroom(scheme: str, capacity: int) -> HeadroomReport:
    """Headroom under the doubling-per-decade IPv4 trend (O1)."""
    year = _exhaustion(capacity, IPV4_2023, IPV4_DOUBLING_YEARS)
    return HeadroomReport(
        scheme, "IPv4", capacity, year,
        0.0 if year is None else year - BASE_YEAR,
    )


def ipv6_headroom(scheme: str, capacity: int,
                  model: str = "doubling") -> HeadroomReport:
    """Headroom under the IPv6 trend (O2): exponential or linear."""
    if model == "doubling":
        year = _exhaustion(capacity, IPV6_2023, IPV6_DOUBLING_YEARS)
    elif model == "linear":
        if capacity <= IPV6_2023:
            year = None
        else:
            from ..datasets.growth import IPV6_LINEAR_SLOPE

            year = BASE_YEAR + (capacity - IPV6_2023) / IPV6_LINEAR_SLOPE
    else:
        raise ValueError(f"unknown IPv6 growth model {model!r}")
    return HeadroomReport(
        scheme, f"IPv6/{model}", capacity, year,
        0.0 if year is None else year - BASE_YEAR,
    )


def decade_claim_holds(ipv4_capacity: int, ipv6_capacity: int,
                       ipv6_model: str = "linear") -> bool:
    """The abstract's combined claim for a dual-stack deployment.

    The paper argues IPv4 doubling-per-decade and an IPv6 *slowdown to
    linear* (O2's conservative branch) — under those models both
    capacities must survive 10 years.
    """
    v4 = ipv4_headroom("", ipv4_capacity)
    v6 = ipv6_headroom("", ipv6_capacity, model=ipv6_model)
    return v4.lasts_a_decade and v6.lasts_a_decade