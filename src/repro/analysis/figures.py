"""ASCII rendering of the paper's figures.

The benchmark harness emits the Figure 9/10/13 *data* as tables; this
module renders the same series as terminal line charts so a reader can
eyeball the shapes the paper plots — linear scaling curves, feasibility
cut-offs, the k-sweep's interior optimum — without leaving the shell.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

#: Marker characters cycled across series.
_MARKS = "ox+*#@"


def render_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot named (x, y) series on one ASCII grid.

    Points are scaled into a ``width x height`` character grid with the
    origin bottom-left; each series uses its own marker; a legend maps
    markers back to names.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    lines = [title]
    if y_label:
        lines.append(f"[y: {y_label}]  max {y_hi:,.0f}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_line = f"[x: {x_label}]  " if x_label else ""
    lines.append(f"{x_line}{x_lo:,.0f} .. {x_hi:,.0f}   (y min {y_lo:,.0f})")
    for index, name in enumerate(series):
        lines.append(f"  {_MARKS[index % len(_MARKS)]} = {name}")
    return "\n".join(lines)


def render_scaling_figure(
    title: str,
    scaling_series,
    x_label: str = "database size (prefixes)",
    y_label: str = "SRAM pages",
) -> str:
    """Render a Figure-9/10-style dict of ScalingPoint lists."""
    series = {
        name: [(p.size, p.sram_pages) for p in points]
        for name, points in scaling_series.items()
    }
    return render_chart(title, series, x_label=x_label, y_label=y_label)