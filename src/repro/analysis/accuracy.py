"""CRAM model predictive accuracy (paper §8, Tables 10 and 11).

The three models form a hierarchy of increasing detail: CRAM (raw bits
and steps, fractional blocks/pages), ideal RMT (whole blocks/pages and
stages), Tofino-2 (P4-level overheads).  This module lines an
algorithm up across all three and computes the step-up factors the
paper discusses (e.g. RESAIL's x1.35 SRAM and x1.78 stages from ideal
RMT to Tofino-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..algorithms.base import LookupAlgorithm
from ..chip.ideal_rmt import map_to_ideal_rmt
from ..chip.tofino2 import map_to_tofino2


@dataclass(frozen=True)
class ModelRow:
    """One row of Table 10/11."""

    model: str
    tcam_blocks: float
    sram_pages: float
    steps: float  # steps for CRAM, stages for the chip models


@dataclass(frozen=True)
class AccuracyReport:
    """An algorithm across the model hierarchy."""

    name: str
    rows: List[ModelRow]

    def row(self, model: str) -> ModelRow:
        for row in self.rows:
            if row.model == model:
                return row
        raise KeyError(model)

    def factor(self, quantity: str, frm: str, to: str) -> float:
        """Multiplicative step-up of ``quantity`` between two models."""
        a = getattr(self.row(frm), quantity)
        b = getattr(self.row(to), quantity)
        if a == 0:
            return float("inf") if b else 1.0
        return b / a


def accuracy_report(algorithm: LookupAlgorithm) -> AccuracyReport:
    """Tables 10/11 for one algorithm."""
    metrics = algorithm.cram_metrics()
    layout = algorithm.layout()
    ideal = map_to_ideal_rmt(layout)
    tofino = map_to_tofino2(layout)
    return AccuracyReport(
        algorithm.name,
        [
            ModelRow("CRAM", round(metrics.tcam_blocks, 2),
                     round(metrics.sram_pages, 2), metrics.steps),
            ModelRow("Ideal RMT", ideal.tcam_blocks, ideal.sram_pages, ideal.stages),
            ModelRow("Tofino-2", tofino.tcam_blocks, tofino.sram_pages, tofino.stages),
        ],
    )
