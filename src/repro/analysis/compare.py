"""Before/after-implementation comparisons (paper §6.4, §6.5).

The paper's methodology: compute CRAM metrics for every candidate,
pick winners *before* implementation (prioritizing TCAM, the scarce
resource), then validate against the full chip mappings.  This module
automates both steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..algorithms.base import LookupAlgorithm
from ..chip.mapping import ChipMapping
from ..chip.ideal_rmt import map_to_ideal_rmt
from ..chip.tofino2 import map_to_tofino2
from ..core.metrics import CramMetrics

#: Tofino-2 has ~19x more SRAM than TCAM (§6.4), so TCAM dominates the
#: §6.4 selection rule.
SRAM_PER_TCAM_RATIO = 19


@dataclass(frozen=True)
class CandidateReport:
    """One algorithm's metrics across the three models (§8's hierarchy)."""

    name: str
    cram: CramMetrics
    ideal_rmt: ChipMapping
    tofino2: ChipMapping


def evaluate(algorithm: LookupAlgorithm) -> CandidateReport:
    """Run one algorithm through all three models."""
    layout = algorithm.layout()
    return CandidateReport(
        name=algorithm.name,
        cram=algorithm.cram_metrics(),
        ideal_rmt=map_to_ideal_rmt(layout),
        tofino2=map_to_tofino2(layout),
    )


def select_best(
    candidates: Sequence[Tuple[str, CramMetrics]],
) -> Tuple[str, str]:
    """The §6.4 selection rule, returning (winner, rationale).

    TCAM is weighted by its relative scarcity and 3x area cost; steps
    break near-ties.  This reproduces the paper's choices: RESAIL for
    IPv4 (beats MASHUP because MASHUP needs 100x its TCAM for only a
    1.4x SRAM saving) and BSIC for IPv6 (16x less TCAM than MASHUP for
    ~4x more SRAM and steps).
    """
    if not candidates:
        raise ValueError("no candidates")

    def cost(metrics: CramMetrics) -> float:
        return metrics.tcam_bits * SRAM_PER_TCAM_RATIO + metrics.sram_bits

    ranked = sorted(candidates, key=lambda kv: cost(kv[1]))
    winner, metrics = ranked[0]
    if len(ranked) == 1:
        return winner, "only candidate"
    runner, runner_metrics = ranked[1]
    tcam_ratio = _ratio(runner_metrics.tcam_bits, metrics.tcam_bits)
    sram_ratio = _ratio(metrics.sram_bits, runner_metrics.sram_bits)
    if tcam_ratio >= 1:
        edge = f"{winner} needs {tcam_ratio:.0f}x less TCAM than {runner}"
        price = (f"at a {sram_ratio:.1f}x SRAM premium" if sram_ratio > 1
                 else "and no SRAM premium")
    elif sram_ratio > 0:
        edge = (f"{winner} trades more TCAM than {runner} for "
                f"{1 / sram_ratio:.1f}x less SRAM")
        price = "which wins on total weighted cost"
    else:
        edge = f"{winner} has the lower TCAM-weighted total cost than {runner}"
        price = ""
    rationale = (
        f"{edge} {price}; TCAM is ~{SRAM_PER_TCAM_RATIO}x scarcer on Tofino-2"
    ).replace("  ", " ")
    return winner, rationale


def _ratio(a: float, b: float) -> float:
    if b == 0:
        return float("inf") if a else 1.0
    return a / b
