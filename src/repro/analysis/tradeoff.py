"""Latency-memory trade-off analysis (paper Figure 13, Appendix A.6).

For BSIC the only tuning parameter is ``k``.  The plain CRAM model
predicts that growing ``k`` reduces steps (shallower BSTs); on a real
RMT chip, however, the initial TCAM's *stages* grow with its blocks,
so stages are minimized at an interior optimum — k=24 for AS131072.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..algorithms.bsic import Bsic
from ..chip.ideal_rmt import map_to_ideal_rmt
from ..prefix.trie import Fib


@dataclass(frozen=True)
class TradeoffPoint:
    """One k-sweep sample: CRAM steps vs ideal-RMT stages and memory."""

    k: int
    cram_steps: int
    stages: int
    tcam_blocks: int
    sram_pages: int
    initial_entries: int


def bsic_k_sweep(fib: Fib, ks: Sequence[int]) -> List[TradeoffPoint]:
    """Build BSIC at each ``k`` and map it to the ideal RMT chip."""
    points: List[TradeoffPoint] = []
    for k in ks:
        bsic = Bsic(fib, k=k)
        mapping = map_to_ideal_rmt(bsic.layout())
        points.append(
            TradeoffPoint(
                k=k,
                cram_steps=bsic.cram_metrics().steps,
                stages=mapping.stages,
                tcam_blocks=mapping.tcam_blocks,
                sram_pages=mapping.sram_pages,
                initial_entries=len(bsic.initial),
            )
        )
    return points


def optimal_k(points: Sequence[TradeoffPoint]) -> int:
    """The k minimizing stages (memory breaks ties, as in the paper)."""
    if not points:
        raise ValueError("empty sweep")
    return min(points, key=lambda p: (p.stages, p.sram_pages + p.tcam_blocks)).k
