"""Evaluation harness: comparisons, scaling, trade-offs, accuracy, reports."""

from .accuracy import AccuracyReport, ModelRow, accuracy_report
from .capacity import (
    HeadroomReport,
    decade_claim_holds,
    ipv4_headroom,
    ipv6_headroom,
)
from .compare import CandidateReport, evaluate, select_best
from .figures import render_chart, render_scaling_figure
from .report import (
    Comparison,
    Table,
    chip_mapping_table,
    cram_metrics_table,
    render_comparisons,
)
from .scaling import (
    ScalingPoint,
    hibst_max_feasible,
    ipv4_max_feasible,
    ipv4_scaling_series,
    ipv6_max_feasible,
    ipv6_scaling_series,
    sail_max_feasible,
)
from .tradeoff import TradeoffPoint, bsic_k_sweep, optimal_k

__all__ = [
    "HeadroomReport",
    "decade_claim_holds",
    "ipv4_headroom",
    "ipv6_headroom",
    "render_chart",
    "render_scaling_figure",
    "AccuracyReport",
    "ModelRow",
    "accuracy_report",
    "CandidateReport",
    "evaluate",
    "select_best",
    "Comparison",
    "Table",
    "chip_mapping_table",
    "cram_metrics_table",
    "render_comparisons",
    "ScalingPoint",
    "hibst_max_feasible",
    "ipv4_max_feasible",
    "ipv4_scaling_series",
    "ipv6_max_feasible",
    "ipv6_scaling_series",
    "sail_max_feasible",
    "TradeoffPoint",
    "bsic_k_sweep",
    "optimal_k",
]
