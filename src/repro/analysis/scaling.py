"""Scalability analysis (paper §7, Figures 9 and 10).

IPv4 (§7.1): RESAIL's and SAIL's resources depend only on the
prefix-length histogram, so the sweep scales the AS65000 histogram by
a constant factor and maps the analytic layouts.

IPv6 (§7.2): multiverse scaling replicates AS131072 into the unused
leading-bit universes; every BSIC table population grows by exactly
the universe factor (the copies are disjoint and identically
structured), so the sweep scales a measured base layout.  HI-BST
scales analytically from its node count.

Feasibility frontiers are located by bisection on the scale factor;
a configuration is feasible when its mapping fits the chip envelope
(using recirculation where the chip supports it, as the paper does
for BSIC on Tofino-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..chip.ideal_rmt import map_to_ideal_rmt
from ..chip.layout import Layout
from ..chip.mapping import ChipMapping
from ..chip.tofino2 import map_to_tofino2
from ..datasets.bgp import ipv4_length_distribution
from ..algorithms.hibst import hibst_layout_from_size
from ..algorithms.resail import resail_layout_from_distribution
from ..algorithms.sail import sail_layout_from_distribution

Mapper = Callable[[Layout], ChipMapping]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a Figure 9/10 curve."""

    size: int
    tcam_blocks: int
    sram_pages: int
    stages: int
    feasible: bool


def _point(size: int, mapping: ChipMapping) -> ScalingPoint:
    return ScalingPoint(
        size, mapping.tcam_blocks, mapping.sram_pages, mapping.stages,
        mapping.feasible,
    )


# ---------------------------------------------------------------------------
# IPv4 (Figure 9)
# ---------------------------------------------------------------------------


def ipv4_scaling_series(
    scales: Sequence[float],
    min_bmp: int = 13,
) -> Dict[str, List[ScalingPoint]]:
    """RESAIL (ideal + Tofino-2) and SAIL (ideal) curves."""
    series: Dict[str, List[ScalingPoint]] = {
        "RESAIL / Ideal RMT": [],
        "RESAIL / Tofino-2": [],
        "SAIL / Ideal RMT": [],
    }
    for scale in scales:
        dist = ipv4_length_distribution(scale)
        size = dist.total
        resail = resail_layout_from_distribution(dist, min_bmp)
        sail = sail_layout_from_distribution(dist)
        series["RESAIL / Ideal RMT"].append(_point(size, map_to_ideal_rmt(resail)))
        series["RESAIL / Tofino-2"].append(_point(size, map_to_tofino2(resail)))
        series["SAIL / Ideal RMT"].append(_point(size, map_to_ideal_rmt(sail)))
    return series


def ipv4_max_feasible(
    mapper: Mapper,
    min_bmp: int = 13,
    hi_scale: float = 16.0,
    tolerance: float = 0.005,
) -> int:
    """Largest feasible IPv4 database size by bisection on the scale."""

    def feasible(scale: float) -> bool:
        dist = ipv4_length_distribution(scale)
        return mapper(resail_layout_from_distribution(dist, min_bmp)).feasible

    return _bisect_size(
        feasible,
        size_of=lambda s: ipv4_length_distribution(s).total,
        hi=hi_scale,
        tolerance=tolerance,
    )


def sail_max_feasible(mapper: Mapper, hi_scale: float = 16.0) -> int:
    """Largest feasible SAIL database (0 when even tiny tables overflow)."""

    def feasible(scale: float) -> bool:
        dist = ipv4_length_distribution(scale)
        return mapper(sail_layout_from_distribution(dist)).feasible

    if not feasible(1e-3):
        return 0
    return _bisect_size(
        feasible,
        size_of=lambda s: ipv4_length_distribution(s).total,
        hi=hi_scale,
    )


# ---------------------------------------------------------------------------
# IPv6 (Figure 10)
# ---------------------------------------------------------------------------


def ipv6_scaling_series(
    bsic_base_layout: Layout,
    base_size: int,
    factors: Sequence[float],
) -> Dict[str, List[ScalingPoint]]:
    """BSIC (ideal + Tofino-2) and HI-BST (ideal) multiverse curves."""
    series: Dict[str, List[ScalingPoint]] = {
        "BSIC / Ideal RMT": [],
        "BSIC / Tofino-2": [],
        "HI-BST / Ideal RMT": [],
    }
    for factor in factors:
        size = round(base_size * factor)
        bsic = bsic_base_layout.scaled(factor)
        hibst = hibst_layout_from_size(size)
        series["BSIC / Ideal RMT"].append(_point(size, map_to_ideal_rmt(bsic)))
        series["BSIC / Tofino-2"].append(_point(size, map_to_tofino2(bsic)))
        series["HI-BST / Ideal RMT"].append(_point(size, map_to_ideal_rmt(hibst)))
    return series


def ipv6_max_feasible(
    bsic_base_layout: Layout,
    base_size: int,
    mapper: Mapper,
    hi_factor: float = 8.0,
) -> int:
    """Largest feasible IPv6 database under multiverse scaling."""

    def feasible(factor: float) -> bool:
        return mapper(bsic_base_layout.scaled(factor)).feasible

    return _bisect_size(
        feasible, size_of=lambda f: round(base_size * f), hi=hi_factor
    )


def hibst_max_feasible(mapper: Mapper, hi_size: int = 4_000_000) -> int:
    """Largest feasible HI-BST database size."""

    def feasible(size: float) -> bool:
        return mapper(hibst_layout_from_size(round(size))).feasible

    return _bisect_size(feasible, size_of=round, hi=float(hi_size))


# ---------------------------------------------------------------------------
# Bisection plumbing
# ---------------------------------------------------------------------------


def _bisect_size(
    feasible: Callable[[float], bool],
    size_of: Callable[[float], int],
    hi: float,
    lo: float = 0.0,
    tolerance: float = 0.005,
    max_iterations: int = 64,
) -> int:
    """Largest ``size_of(x)`` with ``feasible(x)``, x in (lo, hi]."""
    if feasible(hi):
        return size_of(hi)
    best = 0.0
    for _ in range(max_iterations):
        if hi - lo <= tolerance * max(1.0, hi):
            break
        mid = (lo + hi) / 2
        if feasible(mid):
            best = mid
            lo = mid
        else:
            hi = mid
    return size_of(best) if best else 0
