"""Paper-style table rendering and paper-vs-measured records.

Every benchmark regenerates one table or figure and renders it through
this module so the output format matches the paper's presentation
(e.g. "3.13 KB", "556 pages", "-" for unused resources) and so
EXPERIMENTS.md can be assembled from uniform records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from ..core.units import format_bits

Cell = Union[str, int, float, None]


def _render_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class Table:
    """A paper-style table: title, headers, rows of cells."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        rendered = [[_render_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in rendered:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def cram_metrics_table(title: str, entries) -> Table:
    """Table 4/5 format: scheme, TCAM bits, SRAM bits, steps.

    ``entries`` is a sequence of (name, CramMetrics).
    """
    table = Table(title, ["Scheme", "TCAM Bits", "SRAM Bits", "Steps"])
    for name, metrics in entries:
        table.add_row(
            name,
            format_bits(metrics.tcam_bits),
            format_bits(metrics.sram_bits),
            metrics.steps,
        )
    return table


def chip_mapping_table(title: str, entries) -> Table:
    """Table 6/7/8/9 format: scheme, TCAM blocks, SRAM pages, stages.

    ``entries`` is a sequence of (name, ChipMapping-or-None tuple rows):
    each row may also be a plain (name, blocks, pages, stages, chip)
    tuple for pseudo-rows like the pipe limit.
    """
    table = Table(
        title, ["Scheme", "TCAM Blocks", "SRAM Pages", "Stages", "Target Chip"]
    )
    for row in entries:
        if len(row) == 2:
            name, mapping = row
            stages = mapping.stages
            note = " (recirc.)" if mapping.recirculated else ""
            table.add_row(
                name,
                mapping.tcam_blocks or None,
                mapping.sram_pages or None,
                f"{stages}{note}",
                mapping.chip.name,
            )
        else:
            table.add_row(*row)
    return table


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point for EXPERIMENTS.md."""

    experiment: str
    quantity: str
    paper: Cell
    measured: Cell
    note: str = ""

    def render(self) -> str:
        return (
            f"{self.experiment}: {self.quantity}: paper={_render_cell(self.paper)} "
            f"measured={_render_cell(self.measured)}"
            + (f" ({self.note})" if self.note else "")
        )


def render_comparisons(comparisons: Sequence[Comparison]) -> str:
    return "\n".join(c.render() for c in comparisons)
