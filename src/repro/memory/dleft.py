"""d-left hash table (Broder & Mitzenmacher [10]).

RESAIL compresses SAIL's 32 MB of directly-indexed next-hop arrays into
a single d-left hash table (idiom I3).  d-left splits the table into
``d`` equal sub-tables; an inserted key hashes to one bucket in each
sub-table and is placed in the least-loaded of the ``d`` candidates
(leftmost on ties).  This keeps bucket occupancy tight enough that the
table runs at an 80% fill ratio — the paper's "25% memory penalty" —
with a vanishing overflow probability.

Memory is accounted as allocated cells (not live entries), because a
hardware hash table must provision its worst case:
``cells * (key_width + data_width)`` SRAM bits.
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

from ..obs.accounting import AccessStats
from .sram import FREEZE_LOG_CAP

V = TypeVar("V")


class _FrozenDict(dict):
    """A flat snapshot dict stamped with the write-log version it is
    synced to (see :meth:`DLeftHashTable.plan_reader`)."""

    __slots__ = ("version",)

#: The paper's provisioning rule: 25% more cells than entries.
DLEFT_OVERHEAD = 0.25

# Odd multipliers for Fibonacci-style hashing, one per sub-table, so
# the d candidate buckets are independent but fully deterministic.
_MIXERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x85EBCA6B27D4EB4F,
    0xFF51AFD7ED558CCD,
)


class DLeftHashTable(Generic[V]):
    """A d-left hash table with fixed provisioning.

    ``capacity`` is the number of *entries* the table is provisioned
    for; ``overhead`` extra cells are allocated on top (default the
    paper's 25%).  Inserting beyond a completely full candidate set
    spills to a (counted) overflow area — tests assert this stays empty
    at the design load.
    """

    def __init__(
        self,
        key_width: int,
        data_width: int,
        capacity: int,
        d: int = 4,
        bucket_cells: int = 8,
        overhead: float = DLEFT_OVERHEAD,
        name: str = "dleft",
        auto_grow: bool = False,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 1 <= d <= len(_MIXERS):
            raise ValueError(f"d must be in [1, {len(_MIXERS)}]")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.key_width = key_width
        self.data_width = data_width
        self.capacity = capacity
        self.d = d
        self.bucket_cells = bucket_cells
        self.overhead = overhead
        self.name = name
        self.stats = AccessStats(name)
        #: When True the table doubles its provisioning once the live
        #: entry count reaches the design capacity — the software
        #: control plane's answer to a growing FIB (a hardware table
        #: would be re-provisioned at the next maintenance window).
        self.auto_grow = auto_grow

        total_cells = max(d * bucket_cells, int(capacity * (1 + overhead)))
        per_subtable = -(-total_cells // d)  # ceil
        self.buckets_per_subtable = max(1, -(-per_subtable // bucket_cells))
        # Bucket store: buckets[sub][idx] is a list of (key, data) cells.
        self._buckets: List[List[List[Tuple[int, V]]]] = [
            [[] for _ in range(self.buckets_per_subtable)] for _ in range(d)
        ]
        self._overflow: List[Tuple[int, V]] = []
        self._count = 0
        # Incremental-freeze write log (see Bitmap): armed by the first
        # snapshot reader; ``(key, data)`` records an insert/overwrite,
        # ``(key, None)`` a delete.  A flat snapshot handed back as
        # ``prev`` catches up by replaying the tail instead of
        # re-flattening every bucket.
        self._log: Optional[List[Tuple[int, Optional[V]]]] = None
        self._log_base = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def freeze_version(self) -> int:
        return self._log_base + (len(self._log) if self._log is not None
                                 else 0)

    def _record(self, key: int, data: Optional[V]) -> None:
        log = self._log
        if log is None:
            return
        log.append((key, data))
        if len(log) > FREEZE_LOG_CAP:
            drop = len(log) // 2
            del log[:drop]
            self._log_base += drop

    @property
    def allocated_cells(self) -> int:
        return self.d * self.buckets_per_subtable * self.bucket_cells

    @property
    def overflow_count(self) -> int:
        return len(self._overflow)

    @property
    def load_factor(self) -> float:
        return self._count / self.allocated_cells

    def _bucket_index(self, key: int, subtable: int) -> int:
        mixed = (key + subtable + 1) * _MIXERS[subtable] & 0xFFFFFFFFFFFFFFFF
        return (mixed >> 17) % self.buckets_per_subtable

    # ------------------------------------------------------------------
    def insert(self, key: int, data: V) -> None:
        """Insert or overwrite; places new keys d-left style."""
        if not 0 <= key < (1 << self.key_width):
            raise ValueError(f"key {key:#x} exceeds key width {self.key_width}")
        self.stats.writes += 1
        self._record(key, data)
        candidates = [
            self._buckets[sub][self._bucket_index(key, sub)] for sub in range(self.d)
        ]
        for bucket in candidates:
            for i, (existing, _data) in enumerate(bucket):
                if existing == key:
                    bucket[i] = (key, data)
                    return
        for i, (existing, _data) in enumerate(self._overflow):
            if existing == key:
                self._overflow[i] = (key, data)
                return
        target = min(candidates, key=len)  # leftmost minimum: d-left rule
        if len(target) < self.bucket_cells:
            target.append((key, data))
        else:
            self._overflow.append((key, data))
        self._count += 1
        if self.auto_grow and self._count >= self.capacity:
            self._grow()

    def _grow(self) -> None:
        """Double the provisioning and rehash every entry."""
        entries = [
            cell
            for subtable in self._buckets
            for bucket in subtable
            for cell in bucket
        ] + list(self._overflow)
        self.capacity *= 2
        total_cells = max(self.d * self.bucket_cells,
                          int(self.capacity * (1 + self.overhead)))
        per_subtable = -(-total_cells // self.d)
        self.buckets_per_subtable = max(1, -(-per_subtable // self.bucket_cells))
        self._buckets = [
            [[] for _ in range(self.buckets_per_subtable)] for _ in range(self.d)
        ]
        self._overflow = []
        self._count = 0
        if self._log is not None:
            # A rehash moves every entry: no log tail can describe it.
            # Jump the base past every outstanding snapshot's version so
            # they all take the full re-flatten path on their next
            # freeze.
            self._log_base = self.freeze_version + 1
            self._log = []
        for key, data in entries:
            self.insert(key, data)

    def _flatten(self) -> dict:
        flat = {}
        for subtable in self._buckets:
            for bucket in subtable:
                for key, data in bucket:
                    flat[key] = data
        for key, data in self._overflow:
            flat[key] = data
        return flat

    def _log_tail(self, synced) -> Optional[List[Tuple[int, Optional[V]]]]:
        """Log entries past ``synced``, or None when the snapshot is
        too old (predates the log, a trim, or a rehash)."""
        if self._log is None or synced is None or synced < self._log_base:
            return None
        return self._log[synced - self._log_base:]

    def plan_reader(self, prev=None):
        """Uninstrumented snapshot reader for compiled lookup plans.

        Flattens the d sub-tables and the overflow area into one plain
        dict (keys are unique across cells, so order does not matter):
        a compiled plan then pays one hash probe instead of walking d
        candidate buckets with accounting on each.  ``prev`` (the
        previous compile's reader) is re-frozen incrementally by
        replaying the write log into its dict — O(delta), not
        O(entries).
        """
        flat = getattr(prev, "__self__", None)
        if isinstance(flat, _FrozenDict):
            tail = self._log_tail(flat.version)
            if tail is not None:
                for key, data in tail:
                    if data is None:
                        flat.pop(key, None)
                    else:
                        flat[key] = data
                flat.version = self.freeze_version
                return prev
        if self._log is None:
            self._log = []
        flat = _FrozenDict(self._flatten())
        flat.version = self.freeze_version
        return flat.get

    def vector_reader(self, prev=None):
        """Batch-gather snapshot view for the lane compiler.

        Flattens the sub-tables like :meth:`plan_reader`, then builds a
        sorted-key probe view (d-left key spaces are far too wide to
        densify).  ``None`` when stored data is not int-like.  ``prev``
        re-freezes the previous compile's view by patching its sorted
        arrays with the write log's net effect.
        """
        from ..core.vector import SparseMapView, map_view, patch_sparse_view

        if isinstance(prev, SparseMapView):
            tail = self._log_tail(prev.version)
            if tail is not None:
                updates = dict(tail)
                if all(value is None or isinstance(value, (bool, int))
                       for value in updates.values()):
                    patch_sparse_view(prev, updates)
                    prev.version = self.freeze_version
                    return prev
        if self._log is None:
            self._log = []
        view = map_view(self._flatten())
        if view is not None:
            view.version = self.freeze_version
        return view

    def lookup(self, key: int) -> Optional[V]:
        """Exact-match lookup across the d candidate buckets."""
        stats = self.stats
        stats.reads += 1
        for sub in range(self.d):
            bucket = self._buckets[sub][self._bucket_index(key, sub)]
            for existing, data in bucket:
                if existing == key:
                    stats.hits += 1
                    if stats.hit_tally is not None:
                        stats.hit_tally[key] += 1
                    return data
        for existing, data in self._overflow:
            if existing == key:
                stats.hits += 1
                if stats.hit_tally is not None:
                    stats.hit_tally[key] += 1
                return data
        stats.misses += 1
        return None

    def delete(self, key: int) -> None:
        """Remove ``key``; raises ``KeyError`` if absent."""
        for sub in range(self.d):
            bucket = self._buckets[sub][self._bucket_index(key, sub)]
            for i, (existing, _data) in enumerate(bucket):
                if existing == key:
                    del bucket[i]
                    self._count -= 1
                    self.stats.writes += 1
                    self._record(key, None)
                    return
        for i, (existing, _data) in enumerate(self._overflow):
            if existing == key:
                del self._overflow[i]
                self._count -= 1
                self.stats.writes += 1
                self._record(key, None)
                return
        raise KeyError(key)

    # ------------------------------------------------------------------
    def sram_bits(self) -> int:
        """Provisioned footprint: every allocated cell stores key+data."""
        return self.allocated_cells * (self.key_width + self.data_width)


def dleft_cells(entries: int, overhead: float = DLEFT_OVERHEAD) -> int:
    """Analytic cell provisioning for ``entries`` at the given overhead."""
    return int(entries * (1 + overhead))
