"""Hardware memory substrate: TCAM, SRAM table shapes, d-left hashing."""

from .dleft import DLEFT_OVERHEAD, DLeftHashTable, dleft_cells
from .sram import Bitmap, DirectIndexTable, ExactMatchTable
from .tcam import TcamEntry, TcamTable, prefix_mask

__all__ = [
    "DLEFT_OVERHEAD",
    "DLeftHashTable",
    "dleft_cells",
    "Bitmap",
    "DirectIndexTable",
    "ExactMatchTable",
    "TcamEntry",
    "TcamTable",
    "prefix_mask",
]
