"""Behavioural SRAM table simulators.

Two shapes of SRAM table appear in the paper's algorithms:

* :class:`DirectIndexTable` — an exact-match table with ``2**key_width``
  entries, where the key *is* the index and therefore needs no storage
  (the CRAM model's special case, §2.1).  SAIL's bitmaps and next-hop
  arrays and DXR's initial lookup table are direct-indexed.
* :class:`ExactMatchTable` — a hash-style exact-match table that stores
  keys explicitly.  BSIC's BST-level tables and MASHUP's coalesced SRAM
  nodes are exact-match tables.

Bitmaps get a dedicated :class:`Bitmap` built on numpy so that the
2**24-bit SAIL/RESAIL bitmaps are cheap to hold and to populate.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

import numpy as np

from ..core.vector import BitmapView, map_view
from ..obs.accounting import AccessStats

V = TypeVar("V")

#: Incremental-freeze write logs are halved once they pass this many
#: entries; snapshot views older than the trimmed tail fall back to a
#: full re-copy on their next freeze.
FREEZE_LOG_CAP = 1 << 15


class DirectIndexTable(Generic[V]):
    """SRAM table indexed directly by a ``key_width``-bit key.

    CRAM accounting: keys cost nothing (``n == 2**k`` exact match);
    data costs ``2**key_width * data_width`` SRAM bits whether or not a
    slot is populated — that is precisely the waste idioms I1/I3 exist
    to remove.
    """

    def __init__(self, key_width: int, data_width: int, name: str = "direct"):
        if key_width < 0:
            raise ValueError("key width must be non-negative")
        self.key_width = key_width
        self.data_width = data_width
        self.name = name
        self.stats = AccessStats(name)
        self._slots: Dict[int, V] = {}

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def capacity(self) -> int:
        return 1 << self.key_width

    def store(self, index: int, data: V) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} outside table of 2^{self.key_width}")
        self._slots[index] = data
        self.stats.writes += 1

    def clear_slot(self, index: int) -> None:
        self._slots.pop(index, None)
        self.stats.writes += 1

    def load(self, index: int) -> Optional[V]:
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} outside table of 2^{self.key_width}")
        result = self._slots.get(index)
        stats = self.stats
        stats.reads += 1
        if result is None:
            stats.misses += 1
        else:
            stats.hits += 1
            if stats.hit_tally is not None:
                stats.hit_tally[index] += 1
        return result

    def items(self) -> Iterator[Tuple[int, V]]:
        return iter(sorted(self._slots.items()))

    def plan_reader(self):
        """An uninstrumented snapshot reader for compiled lookup plans.

        Returns a plain ``dict.get`` over a copy of the slots: no
        bounds check, no :class:`AccessStats` accounting, and no view
        of later mutations — plans recompile after updates.
        """
        return dict(self._slots).get

    def vector_reader(self):
        """A batch-gather snapshot view for the lane compiler.

        Dense index → value arrays when the key space is small enough,
        a sorted-key probe view otherwise; ``None`` when the stored
        values are not int-like (the plan then bridges to scalar).
        Frozen like :meth:`plan_reader` — recompile after updates.
        """
        return map_view(self._slots, capacity=self.capacity)

    def sram_bits(self) -> int:
        """Full directly-indexed footprint, populated or not."""
        return self.capacity * self.data_width


class ExactMatchTable(Generic[V]):
    """SRAM exact-match table with explicitly stored keys.

    CRAM accounting: ``entries * key_width`` SRAM bits for keys plus
    ``entries * data_width`` for data.  The behavioural side is a dict —
    RMT ASICs price hashed and direct SRAM lookups identically (idiom
    I3), so no collision machinery is modelled here; use
    :class:`repro.memory.dleft.DLeftHashTable` when the 25% d-left
    overhead must be accounted.
    """

    def __init__(self, key_width: int, data_width: int, name: str = "exact"):
        self.key_width = key_width
        self.data_width = data_width
        self.name = name
        self.stats = AccessStats(name)
        self._slots: Dict[int, V] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def store(self, key: int, data: V) -> None:
        if not 0 <= key < (1 << self.key_width):
            raise ValueError(f"key {key:#x} exceeds key width {self.key_width}")
        self._slots[key] = data
        self.stats.writes += 1

    def delete(self, key: int) -> None:
        del self._slots[key]
        self.stats.writes += 1

    def load(self, key: int) -> Optional[V]:
        result = self._slots.get(key)
        stats = self.stats
        stats.reads += 1
        if result is None:
            stats.misses += 1
        else:
            stats.hits += 1
            if stats.hit_tally is not None:
                stats.hit_tally[key] += 1
        return result

    def items(self) -> Iterator[Tuple[int, V]]:
        return iter(sorted(self._slots.items()))

    def plan_reader(self):
        """Uninstrumented snapshot reader (see :meth:`DirectIndexTable.plan_reader`)."""
        return dict(self._slots).get

    def vector_reader(self):
        """Batch-gather snapshot view (see :meth:`DirectIndexTable.vector_reader`)."""
        return map_view(self._slots, capacity=1 << self.key_width)

    def sram_bits(self) -> int:
        return len(self._slots) * (self.key_width + self.data_width)


class Bitmap:
    """A directly-indexed 1-bit-per-slot SRAM table (SAIL's ``B_i``)."""

    def __init__(self, index_width: int, name: str = "bitmap"):
        if index_width < 0:
            raise ValueError("index width must be non-negative")
        self.index_width = index_width
        self.name = name
        self.stats = AccessStats(name)
        self._bits = np.zeros(1 << index_width, dtype=bool)
        # Incremental-freeze write log: armed by the first snapshot
        # reader, then every write lands here too.  A frozen view
        # carries the log version it is synced to; handed back on the
        # next freeze, it catches up by replaying just the log tail
        # instead of re-copying all 2**index_width slots.
        self._log: Optional[list] = None
        self._log_base = 0

    @classmethod
    def from_bits(cls, index_width: int, bits: np.ndarray,
                  name: str = "bitmap") -> "Bitmap":
        """Adopt an existing bit buffer instead of allocating zeros.

        ``bits`` may be ``bool`` or ``uint8`` (0/1) of size
        ``2**index_width``; uint8 buffers are adopted as a zero-copy
        view — this is the artifact warm-start path, where the buffer
        is a copy-on-write slice of an mmapped snapshot.
        """
        arr = np.asarray(bits)
        if arr.size != 1 << index_width:
            raise ValueError(
                f"bit buffer has {arr.size} slots, expected "
                f"{1 << index_width}")
        obj = cls.__new__(cls)
        obj.index_width = index_width
        obj.name = name
        obj.stats = AccessStats(name)
        if arr.dtype == np.uint8:
            obj._bits = arr.view(np.bool_)
        elif arr.dtype == np.bool_:
            obj._bits = arr
        else:
            obj._bits = arr.astype(bool)
        obj._log = None
        obj._log_base = 0
        return obj

    def __len__(self) -> int:
        return int(self._bits.sum())

    @property
    def capacity(self) -> int:
        return 1 << self.index_width

    @property
    def freeze_version(self) -> int:
        return self._log_base + (len(self._log) if self._log is not None
                                 else 0)

    def _record(self, index: int, value: int) -> None:
        log = self._log
        if log is None:
            return
        log.append((index, value))
        if len(log) > FREEZE_LOG_CAP:
            drop = len(log) // 2
            del log[:drop]
            self._log_base += drop

    def set(self, index: int, value: bool = True) -> None:
        self._bits[index] = value
        self.stats.writes += 1
        if self._log is not None:
            self._record(int(index), 1 if value else 0)

    def test(self, index: int) -> bool:
        result = bool(self._bits[index])
        stats = self.stats
        stats.reads += 1
        if result:
            stats.hits += 1
            if stats.hit_tally is not None:
                stats.hit_tally[index] += 1
        else:
            stats.misses += 1
        return result

    def set_many(self, indices) -> None:
        index_array = np.asarray(list(indices), dtype=np.int64)
        self._bits[index_array] = True
        self.stats.writes += len(index_array)
        if self._log is not None:
            for index in index_array.tolist():
                self._record(index, 1)

    def _replay(self, synced: int, apply) -> bool:
        """Replay the log tail past ``synced`` into an old snapshot via
        ``apply(index, value)``; False when the view predates the log
        (or the trimmed tail) and must be rebuilt from scratch."""
        if self._log is None or synced is None or synced < self._log_base:
            return False
        for index, value in self._log[synced - self._log_base:]:
            apply(index, value)
        return True

    def plan_reader(self, prev=None):
        """Uninstrumented snapshot reader over a flat byte copy.

        One byte per slot: indexing a ``bytearray`` is a plain C-speed
        int load, far cheaper than a numpy scalar read, and the copy
        freezes the bitmap for the lifetime of the compiled plan.
        Passing the previous compile's reader as ``prev`` re-freezes it
        incrementally: the write log since its version is replayed into
        its buffer — O(delta), not O(capacity).
        """
        packed_prev = getattr(prev, "packed", None)
        if packed_prev is not None and self._replay(
                getattr(prev, "freeze_version", None),
                packed_prev.__setitem__):
            prev.freeze_version = self.freeze_version
            return prev
        if self._log is None:
            self._log = []
        packed = bytearray(self._bits.tobytes())

        def reader(index, _packed=packed):
            return _packed[index] != 0

        reader.packed = packed
        reader.freeze_version = self.freeze_version
        return reader

    def vector_reader(self, prev=None):
        """Batch-gather snapshot view: one ``uint8`` per slot.

        The copy freezes the bitmap like :meth:`plan_reader`; the lane
        compiler gathers whole index vectors from it in one fancy-index.
        ``prev`` re-freezes the previous compile's view incrementally,
        like :meth:`plan_reader`.
        """
        if isinstance(prev, BitmapView) and self._replay(
                prev.version, prev.packed.__setitem__):
            prev.version = self.freeze_version
            return prev
        if self._log is None:
            self._log = []
        return BitmapView(self._bits.astype(np.uint8), self.freeze_version)

    def sram_bits(self) -> int:
        """One bit per slot, populated or not."""
        return self.capacity
