"""Behavioural ternary CAM (TCAM) simulator.

A TCAM stores (value, mask, priority) entries and, for a search key,
returns the associated data of the highest-priority entry whose masked
value equals the masked key — in one "clock cycle" (one CRAM step).

This simulator is used two ways:

* *Behaviourally*, to execute lookups when testing the algorithms
  end-to-end (the look-aside TCAM in RESAIL, the initial table in
  BSIC, TCAM nodes in MASHUP, and the logical-TCAM baseline).
* *Analytically*, to account memory exactly as the CRAM model does
  (§2.1): ``entries * key_width`` TCAM bits for the match keys (only
  the value component) and ``entries * data_width`` SRAM bits for the
  associated data.

Priority convention: **lower priority number wins**, matching physical
TCAMs where the lowest-address matching row is returned.  For
longest-prefix-match tables use :meth:`TcamTable.insert_prefix`, which
assigns priorities so longer prefixes win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

import numpy as np

from ..core.vector import (MATRIX_ROW_LIMIT, MAX_VECTOR_WIDTH, SparseMapView,
                           TcamGroupView, TcamMatrixView)
from ..obs.accounting import AccessStats
from ..prefix.prefix import Prefix

V = TypeVar("V")


@dataclass(frozen=True)
class TcamEntry(Generic[V]):
    """One ternary row: key ``value`` under ``mask``, with ``priority``."""

    value: int
    mask: int
    priority: int
    data: V

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)


class TcamTable(Generic[V]):
    """A priority ternary match table over ``key_width``-bit keys."""

    def __init__(self, key_width: int, name: str = "tcam"):
        if key_width <= 0:
            raise ValueError("key width must be positive")
        self.key_width = key_width
        self.name = name
        #: Access accounting: searches count as reads, insert/delete as
        #: writes; per-(value, mask) hit tallies when tracking is on.
        self.stats = AccessStats(name)
        self._entries: List[TcamEntry[V]] = []
        # Search index: entries grouped by (priority, mask); within a
        # group the masked value is an exact key.  Physical TCAMs match
        # all rows in parallel; this index gives the simulator
        # O(#distinct masks) searches instead of O(rows) while
        # preserving lowest-priority-wins semantics.
        self._groups: Dict[Tuple[int, int], Dict[int, TcamEntry[V]]] = {}
        self._group_order: List[Tuple[int, int]] = []
        self._index_fresh = True

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, value: int, mask: int, priority: int, data: V) -> None:
        """Insert a raw ternary entry."""
        limit = 1 << self.key_width
        if not (0 <= value < limit and 0 <= mask < limit):
            raise ValueError("value/mask exceed key width")
        if (value & ~mask) & (limit - 1):
            raise ValueError("value has set bits outside the mask")
        self._entries.append(TcamEntry(value, mask, priority, data))
        self.stats.writes += 1
        self._index_fresh = False

    def insert_prefix(self, prefix: Prefix, data: V) -> None:
        """Insert a prefix with LPM priority (longer prefix wins).

        The prefix must be at most ``key_width`` bits wide; it matches
        the *top* bits of the key, with the remainder wildcarded, just
        as prefixes are loaded into a physical TCAM.  Re-inserting a
        prefix already in the table *replaces* its data — writing a
        TCAM row overwrites it — rather than leaving a duplicate row
        whose stale data would shadow the update.
        """
        if prefix.width > self.key_width:
            raise ValueError(
                f"prefix width {prefix.width} exceeds key width {self.key_width}"
            )
        shift = self.key_width - prefix.width
        host_bits = prefix.width - prefix.length
        mask = (((1 << prefix.length) - 1) << host_bits) << shift
        value = prefix.value << shift
        try:
            self.delete(value, mask)
        except KeyError:
            pass
        self.insert(value, mask, priority=self.key_width - prefix.length, data=data)

    def delete(self, value: int, mask: int) -> None:
        """Remove the entry with exactly this value/mask; KeyError if absent."""
        for i, entry in enumerate(self._entries):
            if entry.value == value and entry.mask == mask:
                del self._entries[i]
                self.stats.writes += 1
                self._index_fresh = False
                return
        raise KeyError(f"({value:#x}, {mask:#x})")

    def delete_prefix(self, prefix: Prefix) -> None:
        shift = self.key_width - prefix.width
        host_bits = prefix.width - prefix.length
        mask = (((1 << prefix.length) - 1) << host_bits) << shift
        self.delete(prefix.value << shift, mask)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, key: int) -> Optional[V]:
        """Highest-priority match for ``key``, or ``None`` on miss."""
        entry = self.search_entry(key)
        return entry.data if entry is not None else None

    def search_entry(self, key: int) -> Optional[TcamEntry[V]]:
        if not self._index_fresh:
            self._rebuild_index()
        stats = self.stats
        stats.reads += 1
        for group_key in self._group_order:
            _priority, mask = group_key
            entry = self._groups[group_key].get(key & mask)
            if entry is not None:
                stats.hits += 1
                if stats.hit_tally is not None:
                    stats.hit_tally[(entry.value, entry.mask)] += 1
                return entry
        stats.misses += 1
        return None

    def plan_reader(self):
        """Uninstrumented snapshot search for compiled lookup plans.

        Freezes the (priority, mask) group index: the returned closure
        walks the same lowest-priority-first groups as :meth:`search`
        but skips freshness checks and access accounting.
        """
        if not self._index_fresh:
            self._rebuild_index()
        groups = {key: dict(group) for key, group in self._groups.items()}
        order = list(self._group_order)

        def search(key: int):
            for group_key in order:
                entry = groups[group_key].get(key & group_key[1])
                if entry is not None:
                    return entry.data
            return None

        return search

    def vector_reader(self, encode=None):
        """Batch-search snapshot view for the lane compiler.

        Small tables become one :class:`TcamMatrixView`: rows flattened
        in frozen group order — lowest ``(priority, mask)`` first, the
        winning order — answered by a broadcast masked compare plus
        first-match ``argmax``.  At most one row per group can match a
        key (the masked value is exact within a group), so within-group
        row order is immaterial.  Beyond :data:`MATRIX_ROW_LIMIT` rows
        the matrix intermediates blow up (O(lanes x rows)), so the view
        switches to a :class:`TcamGroupView`: one sorted-key probe per
        group, walked in the same winning order.

        ``encode`` maps each entry's data to its int64 lane encoding
        (return ``None`` to declare the data un-encodable); without it,
        only int-like data is accepted.  Returns ``None`` — bridging
        the step — when any data cannot be encoded or the keys are too
        wide for int64 lanes.  Mutations after the snapshot are
        invisible, exactly like :meth:`plan_reader`.
        """
        if self.key_width > MAX_VECTOR_WIDTH:
            return None
        if not self._index_fresh:
            self._rebuild_index()
        groups: List[Tuple[int, List[Tuple[int, int]]]] = []
        total = 0
        for group_key in self._group_order:
            _priority, mask = group_key
            items: List[Tuple[int, int]] = []
            for masked_value, entry in self._groups[group_key].items():
                if encode is not None:
                    coded = encode(entry.data)
                    if coded is None:
                        return None
                elif isinstance(entry.data, (bool, int, np.integer)):
                    coded = entry.data
                else:
                    return None
                items.append((masked_value, int(coded)))
                total += 1
            groups.append((mask, items))
        if total <= MATRIX_ROW_LIMIT:
            values: List[int] = []
            masks: List[int] = []
            data: List[int] = []
            for mask, items in groups:
                for masked_value, coded in items:
                    values.append(masked_value)
                    masks.append(mask)
                    data.append(coded)
            return TcamMatrixView(
                np.array(values, dtype=np.int64),
                np.array(masks, dtype=np.int64),
                np.array(data, dtype=np.int64),
            )
        probes: List[Tuple[int, SparseMapView]] = []
        for mask, items in groups:
            items.sort()
            probes.append((mask, SparseMapView(
                np.array([k for k, _v in items], dtype=np.int64),
                np.array([v for _k, v in items], dtype=np.int64),
            )))
        return TcamGroupView(probes)

    def _rebuild_index(self) -> None:
        self._groups = {}
        for entry in self._entries:
            group = self._groups.setdefault((entry.priority, entry.mask), {})
            # First writer wins within a group: insertion order breaks
            # priority ties, the usual software-managed TCAM convention.
            group.setdefault(entry.value & entry.mask, entry)
        self._group_order = sorted(self._groups)
        self._index_fresh = True

    # ------------------------------------------------------------------
    # CRAM accounting (§2.1)
    # ------------------------------------------------------------------
    def tcam_bits(self) -> int:
        """Match-key bits: entries x key width (value component only)."""
        return len(self._entries) * self.key_width

    def sram_bits(self, data_width: int) -> int:
        """Associated-data bits at the given encoded data width."""
        return len(self._entries) * data_width

    def entries(self) -> List[TcamEntry[V]]:
        return list(self._entries)


def prefix_mask(length: int, width: int) -> int:
    """The ``width``-bit mask selecting the top ``length`` bits."""
    if not 0 <= length <= width:
        raise ValueError(f"length {length} outside [0, {width}]")
    return ((1 << length) - 1) << (width - length)
