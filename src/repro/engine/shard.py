"""Multi-VRF sharding: N independent plans behind a dispatcher.

Two dispatch disciplines, matching how routers actually scale out:

* :class:`VrfShardedEngine` — **VRF-hash**.  VRFs are partitioned
  across N shards (``vrf_id % shards``); each shard coalesces its
  VRFs into one tag-widened FIB (idiom I5, exactly as
  :class:`repro.algorithms.vrf.VrfRouter` does) and serves it through
  its own independent :class:`~repro.engine.BatchEngine` — its own
  compiled plan, its own cache, its own counters.  A lookup touches
  exactly one shard.
* :class:`RoundRobinEngine` — **round-robin**.  N replica engines
  over the *same* structure model cores pulling batches off a shared
  queue: each batch goes to the next replica in turn, so plans (and
  caches) scale with cores while answers stay identical everywhere.

Both dispatchers share one :class:`~repro.obs.MetricsRegistry` across
their shards; per-shard traffic is visible as the ``engine`` label on
``repro_engine_lookups_total`` (shards are named ``<name>-s<i>``) plus
the dispatcher's own ``repro_engine_shard_dispatch_total``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import MetricsRegistry
from ..prefix.trie import Fib
from .engine import BatchEngine

__all__ = ["VrfShardedEngine", "RoundRobinEngine"]


class VrfShardedEngine:
    """VRF-hash sharding: each VRF's traffic hits one coalesced shard."""

    def __init__(
        self,
        width: int,
        factory: Callable[[Fib], object],
        *,
        shards: int = 2,
        max_vrfs: int = 16,
        cache_size: int = 0,
        registry: Optional[MetricsRegistry] = None,
        name: str = "vrf-engine",
        backend: str = "plan",
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        if max_vrfs < 1:
            raise ValueError("need at least one VRF")
        self.width = width
        self.shards = shards
        self.max_vrfs = max_vrfs
        self.tag_bits = max(1, math.ceil(math.log2(max_vrfs)))
        self.name = name
        self.registry = registry or MetricsRegistry()
        self._factory = factory
        self._cache_size = cache_size
        self._backend = backend
        self._vrfs: Dict[int, Fib] = {}
        # Per shard: the coalesced tag-widened FIB and its engine
        # (None until the shard has a VRF).
        self._fibs: List[Fib] = [
            Fib(self.tag_bits + width) for _ in range(shards)
        ]
        self._engines: List[Optional[BatchEngine]] = [None] * shards
        self._dispatch = self.registry.counter(
            "repro_engine_shard_dispatch_total",
            "Lookups routed to each shard by the VRF-hash dispatcher.")

    # ------------------------------------------------------------------
    # VRF management
    # ------------------------------------------------------------------
    def shard_of(self, vrf_id: int) -> int:
        return vrf_id % self.shards

    def add_vrf(self, vrf_id: int, fib: Fib) -> None:
        """Install (or replace) a VRF's table and rebuild its shard."""
        from ..algorithms.vrf import tag_prefix

        if fib.width != self.width:
            raise ValueError(
                f"VRF table width {fib.width} does not match engine width "
                f"{self.width}"
            )
        if not 0 <= vrf_id < self.max_vrfs:
            raise ValueError(f"VRF id {vrf_id} outside [0, {self.max_vrfs})")
        shard = self.shard_of(vrf_id)
        combined = self._fibs[shard]
        if vrf_id in self._vrfs:
            for prefix, _hop in self._vrfs[vrf_id]:
                combined.delete(tag_prefix(prefix, vrf_id, self.tag_bits))
        self._vrfs[vrf_id] = fib
        for prefix, hop in fib:
            combined.insert(tag_prefix(prefix, vrf_id, self.tag_bits), hop)
        self._rebuild_shard(shard)

    def _rebuild_shard(self, shard: int) -> None:
        engine = self._engines[shard]
        if engine is None:
            self._engines[shard] = BatchEngine(
                self._factory(self._fibs[shard]),
                cache_size=self._cache_size,
                registry=self.registry,
                name=f"{self.name}-s{shard}",
                backend=self._backend,
            )
        else:
            # Unknown extent (a whole VRF changed): full invalidation.
            engine.refresh(self._factory(self._fibs[shard]), touched=None)

    def vrf_ids(self) -> List[int]:
        return sorted(self._vrfs)

    def shard_engines(self) -> List[Optional[BatchEngine]]:
        return list(self._engines)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _engine_for(self, vrf_id: int) -> Tuple[BatchEngine, int]:
        if vrf_id not in self._vrfs:
            raise KeyError(f"unknown VRF {vrf_id}")
        shard = self.shard_of(vrf_id)
        return self._engines[shard], shard

    def lookup(self, vrf_id: int, address: int) -> Optional[int]:
        engine, shard = self._engine_for(vrf_id)
        self._dispatch.inc(1, shard=shard)
        return engine.lookup((vrf_id << self.width) | address)

    def lookup_batch(
        self, requests: Sequence[Tuple[int, int]]
    ) -> List[Optional[int]]:
        """Serve ``(vrf_id, address)`` requests, preserving order.

        Requests are grouped per shard so each shard serves one real
        batch (one counter bump, one histogram sample), then results
        are scattered back into request order.
        """
        groups: Dict[int, List[int]] = {}
        slots: Dict[int, List[int]] = {}
        for i, (vrf_id, address) in enumerate(requests):
            if vrf_id not in self._vrfs:
                raise KeyError(f"unknown VRF {vrf_id}")
            shard = self.shard_of(vrf_id)
            groups.setdefault(shard, []).append(
                (vrf_id << self.width) | address)
            slots.setdefault(shard, []).append(i)
        results: List[Optional[int]] = [None] * len(requests)
        for shard in sorted(groups):
            self._dispatch.inc(len(groups[shard]), shard=shard)
            hops = self._engines[shard].lookup_batch(groups[shard])
            for i, hop in zip(slots[shard], hops):
                results[i] = hop
        return results


class RoundRobinEngine:
    """N replica plans over one structure; batches dispatch in turn."""

    def __init__(
        self,
        algo,
        *,
        replicas: int = 2,
        cache_size: int = 0,
        registry: Optional[MetricsRegistry] = None,
        name: str = "rr-engine",
        backend: str = "plan",
    ):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.name = name
        self.registry = registry or MetricsRegistry()
        self._engines = [
            BatchEngine(algo, cache_size=cache_size, registry=self.registry,
                        name=f"{name}-s{i}", backend=backend)
            for i in range(replicas)
        ]
        self._next = 0
        self._dispatch = self.registry.counter(
            "repro_engine_shard_dispatch_total",
            "Lookups routed to each replica by the round-robin dispatcher.")

    @property
    def replicas(self) -> int:
        return len(self._engines)

    def shard_engines(self) -> List[BatchEngine]:
        return list(self._engines)

    def _take(self) -> Tuple[BatchEngine, int]:
        shard = self._next
        self._next = (shard + 1) % len(self._engines)
        return self._engines[shard], shard

    def lookup(self, address: int) -> Optional[int]:
        engine, shard = self._take()
        self._dispatch.inc(1, shard=shard)
        return engine.lookup(address)

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        engine, shard = self._take()
        self._dispatch.inc(len(addresses), shard=shard)
        return engine.lookup_batch(addresses)

    def refresh(self, algo=None, touched=None) -> None:
        """Propagate a structure change to every replica."""
        for engine in self._engines:
            engine.refresh(algo, touched)

    def on_commit(self, outcome: str, algo, touched) -> None:
        """Commit listener fan-out (see :meth:`BatchEngine.on_commit`)."""
        for engine in self._engines:
            engine.on_commit(outcome, algo, touched)
