"""repro.engine — the batch dataplane.

Compiled lookup plans (:mod:`repro.core.plan`) served through
:class:`BatchEngine` (plan + skew-aware :class:`FibCache` + metrics),
with multi-VRF sharding via :class:`VrfShardedEngine` (VRF-hash) and
:class:`RoundRobinEngine` (replicated round-robin).  See
``docs/engine.md``.
"""

from ..core.plan import LookupPlan, PlanError, compile_plan
from ..core.vector import VectorError, VectorPlan, compile_vector_plan
from .cache import FibCache
from .engine import ENGINE_BACKENDS, ENGINE_BATCH_BUCKETS, BatchEngine
from .shard import RoundRobinEngine, VrfShardedEngine

__all__ = [
    "LookupPlan",
    "PlanError",
    "compile_plan",
    "VectorError",
    "VectorPlan",
    "compile_vector_plan",
    "FibCache",
    "ENGINE_BACKENDS",
    "ENGINE_BATCH_BUCKETS",
    "BatchEngine",
    "RoundRobinEngine",
    "VrfShardedEngine",
]
