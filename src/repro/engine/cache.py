"""Skew-aware exact-match FIB cache.

The CRAM paper motivates FIB caching with traffic skew: a small number
of prefixes carries most traffic, so an exact-match cache in front of
the lookup structure absorbs the hot addresses at one hash probe each.
:class:`FibCache` is that cache:

* **LRU/LFU hybrid eviction.**  Entries live in recency order; on
  overflow the *least frequently used among the least recently used*
  is evicted (a bounded sample from the LRU end, lowest hit count
  first).  Pure LRU thrashes under scans; pure LFU never forgets; the
  hybrid keeps the skewed head resident while still ageing out cold
  entries deterministically.
* **Observability-native.**  The cache owns a
  :class:`repro.obs.AccessStats` (``collect_access_stats`` finds it
  like any other table), so cache hit rates and per-address hit
  tallies flow through the same accounting as TCAM/SRAM accesses —
  and :meth:`seed` closes the loop by warming the cache from exactly
  those tallies.
* **Prefix invalidation.**  A route update only changes answers for
  addresses covered by the touched prefixes; :meth:`invalidate` drops
  precisely those entries.  :class:`repro.engine.BatchEngine` wires
  this into :class:`repro.control.ManagedFib` commits.

Negative answers (``None`` next hop — a FIB miss) are cached too: a
miss costs the full lookup walk, so hot non-routable addresses benefit
most.  ``probe`` therefore returns a ``(hit, hop)`` pair rather than
overloading ``None``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..obs.accounting import AccessStats
from ..prefix.prefix import Prefix

__all__ = ["FibCache"]


class FibCache:
    """Exact-match address -> next-hop cache with hybrid eviction."""

    def __init__(self, capacity: int, name: str = "fib-cache",
                 sample: int = 8):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        if sample <= 0:
            raise ValueError("eviction sample must be positive")
        self.capacity = capacity
        self.name = name
        self.sample = sample
        #: Probes count as reads, insertions/invalidations as writes;
        #: per-address hit tallies when tracking is enabled.
        self.stats = AccessStats(name)
        # address -> [hop, hit_count], maintained in recency order
        # (least recently used first).
        self._entries: "OrderedDict[int, List]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: int) -> bool:
        return address in self._entries

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def probe(self, address: int) -> Tuple[bool, Optional[int]]:
        """``(hit, hop)`` — ``hop`` is meaningful only when ``hit``."""
        stats = self.stats
        stats.reads += 1
        entry = self._entries.get(address)
        if entry is None:
            stats.misses += 1
            return False, None
        stats.hits += 1
        if stats.hit_tally is not None:
            stats.hit_tally[address] += 1
        entry[1] += 1
        self._entries.move_to_end(address)
        return True, entry[0]

    def put(self, address: int, hop: Optional[int], weight: int = 1) -> None:
        """Install (or refresh) an entry; evicts on overflow."""
        entries = self._entries
        self.stats.writes += 1
        entry = entries.get(address)
        if entry is not None:
            entry[0] = hop
            entries.move_to_end(address)
            return
        if len(entries) >= self.capacity:
            self._evict()
        entries[address] = [hop, weight]

    def _evict(self) -> None:
        """Drop the least-used entry among the ``sample`` oldest."""
        victim = None
        victim_count = None
        for i, (address, (_hop, count)) in enumerate(self._entries.items()):
            if victim is None or count < victim_count:
                victim, victim_count = address, count
            if i + 1 >= self.sample:
                break
        del self._entries[victim]
        self.stats.writes += 1

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def invalidate(self, prefixes: Iterable[Prefix]) -> int:
        """Drop every entry covered by any of ``prefixes``.

        This is the commit-time contract with the managed runtime: a
        landed batch can only change answers for addresses under its
        touched prefixes, so everything else stays cached.
        """
        prefixes = list(prefixes)
        if not prefixes:
            return 0
        doomed = [
            address for address in self._entries
            if any(prefix.matches(address) for prefix in prefixes)
        ]
        for address in doomed:
            del self._entries[address]
        self.stats.writes += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.writes += dropped
        return dropped

    def seed(self, tally, resolve: Callable[[int], Optional[int]],
             limit: Optional[int] = None) -> int:
        """Warm the cache from an :class:`AccessStats` hit tally.

        ``tally`` maps addresses to hit counts (e.g. this cache's own
        ``stats.hit_tally`` from a previous run, or an engine's
        per-address tally); the hottest ``limit`` addresses (count
        descending, address ascending for determinism) are resolved
        through ``resolve`` and installed with their observed counts,
        so the eviction hybrid starts with the measured skew.
        """
        if limit is None:
            limit = self.capacity
        ranked = sorted(tally.items(), key=lambda kv: (-kv[1], kv[0]))
        seeded = 0
        for address, count in ranked[:limit]:
            self.put(address, resolve(address), weight=count)
            seeded += 1
        return seeded

    def items(self) -> Iterator[Tuple[int, Optional[int]]]:
        """Cached ``(address, hop)`` pairs, LRU first (for tests)."""
        return ((address, entry[0]) for address, entry in self._entries.items())

    def hit_rate(self) -> float:
        return float(self.stats.hit_rate)
