"""The batch dataplane engine: compiled plan + cache + telemetry.

:class:`BatchEngine` is the serving layer over one lookup structure:

* packets run through a compiled :class:`~repro.core.plan.LookupPlan`
  (one flat step array, no per-packet interpretation) — or, with
  ``backend="vector"``/``"auto"``, through its lane-compiled
  :class:`~repro.core.vector.VectorPlan`, where each step executes
  once per batch as a NumPy kernel (``auto`` picks the vector plan
  exactly when every step lowered);
* an optional :class:`~repro.engine.cache.FibCache` answers hot
  addresses before the plan runs at all;
* every lookup, batch, cache hit/miss, invalidation, and plan
  recompile is counted in a :class:`~repro.obs.MetricsRegistry`.

The engine stays correct under churn by *subscribing to commits*:
:meth:`over_managed` registers a commit listener on a
:class:`~repro.control.ManagedFib`, and every landed batch (applied or
rebuilt) triggers :meth:`refresh` — rebind to the newly committed
structure, recompile the plan, and invalidate exactly the cache
entries covered by the batch's touched prefixes.  Rolled-back batches
leave the committed structure untouched, so no listener fires and the
cache stays valid by construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.plan import LookupPlan, PlanError, compile_plan
from ..core.vector import VectorError, VectorPlan, compile_vector_plan
from ..obs import MetricsRegistry
from ..prefix.prefix import Prefix
from .cache import FibCache

__all__ = ["BatchEngine", "ENGINE_BATCH_BUCKETS", "ENGINE_BACKENDS"]

#: Deterministic batch-size histogram bounds (packets per batch).
ENGINE_BATCH_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384)

#: Valid ``backend=`` values: the scalar plan, the lane-compiled
#: vector plan, or "vector when fully lowered, plan otherwise".
ENGINE_BACKENDS = ("plan", "vector", "auto")


class BatchEngine:
    """Compiled batch lookups over one algorithm, with a FIB cache."""

    def __init__(
        self,
        algo,
        *,
        cache_size: int = 0,
        registry: Optional[MetricsRegistry] = None,
        name: str = "engine",
        cache_sample: int = 8,
        backend: str = "plan",
        fuse: bool = True,
        patch_threshold: int = 256,
    ):
        if backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"backend {backend!r} not one of {ENGINE_BACKENDS}")
        self.name = name
        self.registry = registry or MetricsRegistry()
        self._algo = algo
        self.backend = backend
        #: Whether the lane compiler's fusion pass runs (debug knob).
        self.fuse = fuse
        #: Largest committed delta (route count) eligible for plan
        #: patching; bigger batches take the full-recompile path, where
        #: one rebuild beats many per-step regenerations.  ``0``
        #: disables patching outright.
        self.patch_threshold = patch_threshold
        self._managed = None
        self.cache: Optional[FibCache] = (
            FibCache(cache_size, name=f"{name}-cache", sample=cache_sample)
            if cache_size else None
        )
        reg = self.registry
        self._lookups = reg.counter(
            "repro_engine_lookups_total", "Lookups served by the engine.")
        self._cache_hits = reg.counter(
            "repro_engine_cache_hits_total", "Lookups answered by the FIB cache.")
        self._cache_misses = reg.counter(
            "repro_engine_cache_misses_total", "Cache misses (plan executed).")
        self._batches = reg.counter(
            "repro_engine_batches_total", "Batches served by the engine.")
        self._batch_size = reg.histogram(
            "repro_engine_batch_size", ENGINE_BATCH_BUCKETS,
            "Packets per served batch.")
        self._cache_entries = reg.gauge(
            "repro_engine_cache_entries", "Live FIB-cache entries.")
        self._invalidated = reg.counter(
            "repro_engine_cache_invalidated_total",
            "Cache entries dropped by commit invalidation.")
        self._recompiles = reg.counter(
            "repro_engine_plan_recompiles_total",
            "Plan recompilations (one per landed update batch).")
        self._patches = reg.counter(
            "repro_engine_plan_patches_total",
            "Landed batches absorbed by in-place plan patches "
            "(no recompile).")
        self._commits = reg.counter(
            "repro_engine_commits_total",
            "Managed-runtime commits observed, by outcome.")
        self._backend_gauge = reg.gauge(
            "repro_engine_backend",
            "Active execution backend (1 on the active engine/backend "
            "label pair).")
        self._lowered_gauge = reg.gauge(
            "repro_engine_vector_lowered_steps",
            "Steps the lane compiler lowered to batch kernels.")
        self._bridged_gauge = reg.gauge(
            "repro_engine_vector_bridged_steps",
            "Steps served by the vector plan's per-lane scalar bridge.")
        self._fused_gauge = reg.gauge(
            "repro_engine_vector_fused_steps",
            "Steps executing inside fused lane kernels.")
        self._plan: LookupPlan
        self._vector: Optional[VectorPlan] = None
        self._compile()

    def _compile(self) -> None:
        """(Re)compile the scalar plan — and the vector plan when the
        backend can use it — then refresh the lowering gauges."""
        self._plan = compile_plan(self._algo)
        if self.backend != "plan":
            self._vector = compile_vector_plan(self._algo, plan=self._plan,
                                               fuse=self.fuse)
            self._lowered_gauge.set(len(self._vector.lowered_steps),
                                    engine=self.name)
            self._bridged_gauge.set(len(self._vector.bridged_steps),
                                    engine=self.name)
            self._fused_gauge.set(self._vector.fused_steps,
                                  engine=self.name)
        active = self.active_backend
        for backend in ENGINE_BACKENDS:
            self._backend_gauge.set(1 if backend == active else 0,
                                    engine=self.name, backend=backend)

    # ------------------------------------------------------------------
    @property
    def algo(self):
        """The committed structure currently being served."""
        return self._algo

    @property
    def plan(self) -> LookupPlan:
        return self._plan

    @property
    def vector_plan(self) -> Optional[VectorPlan]:
        """The lane-compiled plan (None when ``backend="plan"``)."""
        return self._vector

    @property
    def active_backend(self) -> str:
        """Which plan cache misses actually run through: ``"vector"``
        when forced or when ``auto`` found every step lowered,
        ``"plan"`` otherwise."""
        if self.backend == "vector":
            return "vector"
        if self.backend == "auto" and self._vector is not None \
                and self._vector.fully_lowered:
            return "vector"
        return "plan"

    def set_backend(self, backend: str) -> None:
        """Switch execution backend in place (health degradation path).

        A DEGRADED server falls back from ``"vector"`` to the scalar
        ``"plan"`` backend — and back — without rebuilding the engine:
        the compiled plans are kept (or recompiled when switching *to*
        a vector-capable backend for the first time) and the FIB cache
        survives the flip.
        """
        if backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"backend {backend!r} not one of {ENGINE_BACKENDS}")
        if backend == self.backend:
            return
        self.backend = backend
        if backend != "plan" and self._vector is None:
            self._compile()
        else:
            active = self.active_backend
            for candidate in ENGINE_BACKENDS:
                self._backend_gauge.set(1 if candidate == active else 0,
                                        engine=self.name, backend=candidate)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> Optional[int]:
        self._lookups.inc(1, engine=self.name)
        cache = self.cache
        if cache is not None:
            hit, hop = cache.probe(address)
            if hit:
                self._cache_hits.inc(1, engine=self.name)
                return hop
            self._cache_misses.inc(1, engine=self.name)
        if self.active_backend == "vector":
            hop = self._vector.lookup(address)
        else:
            hop = self._plan.lookup(address)
        if cache is not None:
            cache.put(address, hop)
            self._cache_entries.set(len(cache), engine=self.name)
        return hop

    def lookup_batch(self, addresses: Sequence[int]) -> List[Optional[int]]:
        n = len(addresses)
        self._batches.inc(1, engine=self.name)
        self._batch_size.observe(n)
        self._lookups.inc(n, engine=self.name)
        cache = self.cache
        if cache is None:
            if self.active_backend == "vector":
                return self._vector.lookup_batch_hops(addresses)
            return self._plan.lookup_batch(addresses)
        probe = cache.probe
        put = cache.put
        if self.active_backend == "vector":
            # Probe the cache first, then run every miss through the
            # lane kernels as ONE batch and scatter the answers back.
            results: List[Optional[int]] = [None] * n
            miss_slots: List[int] = []
            miss_addrs: List[int] = []
            hits = 0
            for i, address in enumerate(addresses):
                hit, hop = probe(address)
                if hit:
                    results[i] = hop
                    hits += 1
                else:
                    miss_slots.append(i)
                    miss_addrs.append(address)
            if miss_addrs:
                for i, address, hop in zip(
                        miss_slots, miss_addrs,
                        self._vector.lookup_batch_hops(miss_addrs)):
                    put(address, hop)
                    results[i] = hop
        else:
            plan_lookup = self._plan.lookup
            results = []
            append = results.append
            hits = 0
            for address in addresses:
                hit, hop = probe(address)
                if not hit:
                    hop = plan_lookup(address)
                    put(address, hop)
                else:
                    hits += 1
                append(hop)
        self._cache_hits.inc(hits, engine=self.name)
        self._cache_misses.inc(n - hits, engine=self.name)
        self._cache_entries.set(len(cache), engine=self.name)
        return results

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def refresh(self, algo=None,
                touched: Optional[Sequence[Prefix]] = None,
                delta=None) -> None:
        """Rebind to ``algo`` (or recompile in place) after an update.

        ``touched`` scopes cache invalidation to the prefixes a landed
        batch changed; ``None`` means "unknown extent" and clears the
        whole cache (the only safe answer without that information).

        ``delta`` is the committed :class:`~repro.control.FibDelta`
        when the runtime applied the batch in place.  If the algorithm
        can localise it (``plan_patch``/``vector_patch`` return step
        readers/specs), the existing plans are patched instead of
        recompiled — O(touched steps), not O(program) — counted in
        ``repro_engine_plan_patches_total``.  Any ``None`` hook answer,
        a delta over :attr:`patch_threshold`, a rebuilt (new) structure,
        or a patch failure falls back to the full recompile.
        """
        same_structure = algo is None or algo is self._algo
        if algo is not None:
            self._algo = algo
        if same_structure and self._try_patch(delta):
            self._patches.inc(1, engine=self.name)
        else:
            self._compile()
            self._recompiles.inc(1, engine=self.name)
        cache = self.cache
        if cache is not None:
            if touched is None:
                dropped = cache.clear()
            else:
                dropped = cache.invalidate(touched)
            self._invalidated.inc(dropped, engine=self.name)
            self._cache_entries.set(len(cache), engine=self.name)

    def _try_patch(self, delta) -> bool:
        """Patch the compiled plans in place for ``delta`` if possible.

        Returns True only when every active plan was patched.  On a
        mid-patch failure the plans are left to the caller's full
        recompile, which overwrites any partial state.
        """
        if delta is None or not self.patch_threshold \
                or len(delta) > self.patch_threshold:
            return False
        algo = self._algo
        try:
            readers = algo.plan_patch(delta, self._plan)
            if readers is None:
                return False
            specs = None
            if self._vector is not None:
                specs = algo.vector_patch(delta, self._vector)
                if specs is None:
                    return False
            self._plan.patch(readers)
            if self._vector is not None:
                self._vector.patch(specs)
        except (PlanError, VectorError):
            return False
        if self._vector is not None:
            # Re-assembly keeps the lowering partition, but refresh the
            # gauges anyway so they can never drift from the plan.
            self._lowered_gauge.set(len(self._vector.lowered_steps),
                                    engine=self.name)
            self._bridged_gauge.set(len(self._vector.bridged_steps),
                                    engine=self.name)
            self._fused_gauge.set(self._vector.fused_steps,
                                  engine=self.name)
        return True

    def warm(self, addresses: Sequence[int]) -> None:
        """Pre-populate the cache by looking the addresses up."""
        for address in addresses:
            self.lookup(address)

    def seed_cache(self, tally, limit: Optional[int] = None) -> int:
        """Warm the cache from an ``obs.accounting`` hit tally
        (addresses -> counts); see :meth:`FibCache.seed`."""
        if self.cache is None:
            return 0
        seeded = self.cache.seed(tally, self._plan.lookup, limit=limit)
        self._cache_entries.set(len(self.cache), engine=self.name)
        return seeded

    def cache_hit_ratio(self) -> float:
        return self.cache.hit_rate() if self.cache is not None else 0.0

    # ------------------------------------------------------------------
    # Managed-runtime integration
    # ------------------------------------------------------------------
    @classmethod
    def over_managed(cls, managed, *, registry: Optional[MetricsRegistry] = None,
                     **kwargs) -> "BatchEngine":
        """An engine serving ``managed``'s committed structure.

        Shares the runtime's registry by default and subscribes to its
        commits: applied/rebuilt batches recompile the plan and
        invalidate the touched cache entries; rollbacks change nothing
        and therefore notify nothing.
        """
        engine = cls(managed.algo,
                     registry=registry if registry is not None else managed.registry,
                     **kwargs)
        engine._managed = managed
        managed.add_commit_listener(engine.on_commit)
        return engine

    def on_commit(self, outcome: str, algo,
                  touched: Sequence[Prefix], delta=None) -> None:
        """Commit listener: called by ManagedFib after a landed batch.

        ``delta`` may be passed explicitly (worker pools relaying a
        shipped delta); otherwise the runtime's ``last_delta`` for the
        batch just committed is used when this engine was built with
        :meth:`over_managed`.
        """
        self._commits.inc(1, engine=self.name, outcome=outcome)
        if delta is None and self._managed is not None:
            delta = self._managed.last_delta
        self.refresh(algo, touched, delta=delta)
