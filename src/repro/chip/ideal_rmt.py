"""The ideal RMT chip model (§6.2).

"An RMT chip with Tofino-2 specifications (same memory, number of
stages, etc.) that can achieve 100% SRAM utilization and perform at
least two dependent ALU operations per stage."  Resource utilization
is obtained by the same simulation the paper uses: Tofino-2 SRAM page
(128x1024b) and TCAM block (44x512b) sizes, tables partitioned across
MAUs when they exceed per-stage memory, infeasible beyond 20 stages.
"""

from __future__ import annotations

from .layout import Layout
from .mapping import ChipMapping, map_layout
from .specs import IDEAL_RMT


def map_to_ideal_rmt(layout: Layout) -> ChipMapping:
    """Map a layout onto the ideal RMT chip."""
    return map_layout(layout, IDEAL_RMT)
