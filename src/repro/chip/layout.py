"""Chip-independent table layouts.

A :class:`Layout` is the bridge between an algorithm and a chip model:
an ordered list of :class:`Phase` objects, each holding the logical
tables that are looked up in parallel at that point of the pipeline
plus the depth of dependent ALU work the phase needs.  Chip models
(:mod:`repro.chip.ideal_rmt`, :mod:`repro.chip.tofino2`) map a layout
onto blocks, pages, and stages.

Phases correspond to the waves of the algorithm's CRAM program DAG; a
phase with no tables models pure computation (e.g. RESAIL's hash-key
construction between the bitmap wave and the hash lookup).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class MemoryKind(enum.Enum):
    TCAM = "tcam"
    SRAM = "sram"


@dataclass(frozen=True)
class LogicalTable:
    """One logical match table, described by shape only.

    ``raw_bits`` marks bit-array tables (bitmaps): their footprint is
    the bit count itself, they pack SRAM words perfectly, and they are
    exempt from per-entry overheads.  ``direct_index`` marks exact
    tables with ``entries == 2**key_width`` whose keys need no storage.
    ``unaligned_key`` marks tables whose match key is built from
    non-byte-aligned header slices; on Tofino-2 these need an extra
    ternary bitmask table for bit extraction (§6.5.2).
    """

    name: str
    kind: MemoryKind
    entries: int
    key_width: int
    data_width: int
    direct_index: bool = False
    raw_bits: Optional[int] = None
    unaligned_key: bool = False

    def __post_init__(self) -> None:
        if self.entries < 0 or self.key_width < 0 or self.data_width < 0:
            raise ValueError(f"table {self.name}: negative dimension")
        if self.kind is MemoryKind.TCAM and self.direct_index:
            raise ValueError(f"table {self.name}: TCAM cannot be direct-indexed")
        if self.direct_index and self.entries != (1 << self.key_width):
            raise ValueError(
                f"table {self.name}: direct index requires entries == 2**key_width"
            )

    @property
    def sram_entry_bits(self) -> int:
        """Bits per SRAM row: stored key (if any) plus data."""
        if self.kind is MemoryKind.TCAM or self.direct_index:
            return self.data_width
        return self.key_width + self.data_width


@dataclass
class Phase:
    """Tables looked up in parallel, plus this phase's dependent ALU depth.

    ``dependent_alu_ops`` is the longest chain of dependent ALU
    operations the phase performs after (or instead of) its lookups.
    The ideal RMT chip executes at least two dependent ops per stage;
    Tofino-2 executes one (§6.2, §6.5.3).
    """

    name: str
    tables: List[LogicalTable] = field(default_factory=list)
    dependent_alu_ops: int = 1

    def __post_init__(self) -> None:
        if self.dependent_alu_ops < 0:
            raise ValueError(f"phase {self.name}: negative ALU depth")
        if not self.tables and self.dependent_alu_ops == 0:
            raise ValueError(f"phase {self.name}: empty phase")


@dataclass
class Layout:
    """An algorithm's pipeline description, in execution order."""

    name: str
    phases: List[Phase]

    def tables(self) -> List[LogicalTable]:
        return [t for phase in self.phases for t in phase.tables]

    def total_entries(self) -> int:
        return sum(t.entries for t in self.tables())

    def scaled(self, factor: float, name: Optional[str] = None) -> "Layout":
        """Scale every table's entry count (and bitmap bits stay fixed).

        Used by the scalability analyses (§7): multiverse scaling
        multiplies the population of every BSIC/HI-BST table uniformly,
        while bitmap capacities are structural and do not grow.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        phases = []
        for phase in self.phases:
            tables = [
                LogicalTable(
                    name=t.name,
                    kind=t.kind,
                    entries=t.entries if t.raw_bits is not None or t.direct_index
                    else round(t.entries * factor),
                    key_width=t.key_width,
                    data_width=t.data_width,
                    direct_index=t.direct_index,
                    raw_bits=t.raw_bits,
                    unaligned_key=t.unaligned_key,
                )
                for t in phase.tables
            ]
            phases.append(Phase(phase.name, tables, phase.dependent_alu_ops))
        return Layout(name or f"{self.name} x{factor:g}", phases)
