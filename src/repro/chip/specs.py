"""Chip resource specifications.

The numbers here are the Tofino-2 figures the paper states or implies:

* 20 match-action stages (the "Tofino-2 Pipe Limit" rows of Tables 8/9
  give 480 TCAM blocks / 1600 SRAM pages / 20 stages),
* so 24 TCAM blocks and 80 SRAM pages per stage,
* TCAM blocks of 44 bits x 512 entries, SRAM pages of 128 bits x 1024
  words (§6.2).

The *ideal RMT chip* (§6.2) shares this geometry but achieves 100%
SRAM utilization and at least two dependent ALU operations per stage.
Tofino-2 itself reaches at most 50% SRAM word utilization (action
bits, §6.5.2) and one ALU level per stage (§6.5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.units import (
    SRAM_PAGE_BITS,
    TCAM_BLOCK_BITS,
    TCAM_BLOCK_ENTRIES,
    TCAM_BLOCK_WIDTH,
)


@dataclass(frozen=True)
class ChipSpec:
    """Static resource envelope of one RMT chip."""

    name: str
    stages: int
    tcam_blocks: int
    sram_pages: int
    alu_ops_per_stage: int
    sram_word_utilization: float
    supports_recirculation: bool = False

    @property
    def tcam_blocks_per_stage(self) -> int:
        return self.tcam_blocks // self.stages

    @property
    def sram_pages_per_stage(self) -> int:
        return self.sram_pages // self.stages

    @property
    def tcam_bits(self) -> int:
        return self.tcam_blocks * TCAM_BLOCK_BITS

    @property
    def sram_bits(self) -> int:
        return self.sram_pages * SRAM_PAGE_BITS

    @property
    def tcam_capacity_entries(self) -> int:
        """Max ternary entries at one block width (the §6.5 capacity)."""
        return self.tcam_blocks * TCAM_BLOCK_ENTRIES


#: Tofino-2 geometry with perfect utilization and 2 dependent ALU ops
#: per stage — the paper's simulation target (§6.2).
IDEAL_RMT = ChipSpec(
    name="Ideal RMT",
    stages=20,
    tcam_blocks=480,
    sram_pages=1600,
    alu_ops_per_stage=2,
    sram_word_utilization=1.0,
)

#: Tofino-2 as implemented: action bits cap SRAM utilization at 50%,
#: one ALU level per stage, and packets can be recirculated to borrow
#: a second pass through the pipe at half the port throughput (§6.5.3).
TOFINO2 = ChipSpec(
    name="Tofino-2",
    stages=20,
    tcam_blocks=480,
    sram_pages=1600,
    alu_ops_per_stage=1,
    sram_word_utilization=0.5,
    supports_recirculation=True,
)

TOFINO2_TCAM_KEY_WIDTH = TCAM_BLOCK_WIDTH  # BSIC's max initial slice (§4.1)
