"""Mapping layouts onto chips: the shared allocation arithmetic.

Both chip models follow the same process the paper describes in §6.2:
convert each logical table into whole TCAM blocks and SRAM pages, then
walk the layout's phases in order, charging each phase the stages its
memory and its dependent ALU depth require.  A table larger than one
stage's memory "is simply partitioned across multiple MAUs".

The models differ only in their :class:`~repro.chip.specs.ChipSpec`
parameters and in Tofino-2's P4-level overheads, applied by
:mod:`repro.chip.tofino2` before this arithmetic runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.units import sram_pages_for_bits, tcam_blocks_for_table
from .layout import Layout, LogicalTable, MemoryKind
from .specs import ChipSpec


@dataclass(frozen=True)
class TableAllocation:
    """Blocks/pages assigned to one logical table."""

    table: LogicalTable
    tcam_blocks: int
    sram_pages: int


@dataclass(frozen=True)
class PhaseAllocation:
    """Stage footprint of one phase."""

    phase_name: str
    tables: List[TableAllocation]
    stages: int

    @property
    def tcam_blocks(self) -> int:
        return sum(t.tcam_blocks for t in self.tables)

    @property
    def sram_pages(self) -> int:
        return sum(t.sram_pages for t in self.tables)


@dataclass(frozen=True)
class ChipMapping:
    """The result of mapping a layout onto a chip."""

    layout_name: str
    chip: ChipSpec
    phases: List[PhaseAllocation]
    recirculated: bool = False

    @property
    def tcam_blocks(self) -> int:
        return sum(p.tcam_blocks for p in self.phases)

    @property
    def sram_pages(self) -> int:
        return sum(p.sram_pages for p in self.phases)

    @property
    def stages(self) -> int:
        return sum(p.stages for p in self.phases)

    @property
    def feasible(self) -> bool:
        """Fits the chip's envelope, possibly via recirculation.

        Recirculation doubles available stages at the cost of half the
        switch ports (the paper fit BSIC's 30 Tofino-2 stages this
        way); memory is shared between passes, so block/page limits
        are unchanged.
        """
        stage_budget = self.chip.stages
        if self.chip.supports_recirculation:
            stage_budget *= 2
        return (
            self.tcam_blocks <= self.chip.tcam_blocks
            and self.sram_pages <= self.chip.sram_pages
            and self.stages <= stage_budget
        )

    @property
    def fits_single_pass(self) -> bool:
        return (
            self.tcam_blocks <= self.chip.tcam_blocks
            and self.sram_pages <= self.chip.sram_pages
            and self.stages <= self.chip.stages
        )

    def describe(self) -> str:
        note = " (recirculated)" if self.recirculated else ""
        return (
            f"{self.layout_name} on {self.chip.name}: "
            f"{self.tcam_blocks} TCAM blocks, {self.sram_pages} SRAM pages, "
            f"{self.stages} stages{note}"
        )


def allocate_table(
    table: LogicalTable,
    sram_word_utilization: float,
) -> TableAllocation:
    """Blocks/pages for one table at the given word utilization.

    * TCAM tables: whole 44x512 blocks for the keys; associated data
      lands in SRAM.
    * Raw bit arrays (bitmaps): packed perfectly regardless of
      utilization — a bitmap word is all payload, no action bits.
    * Other SRAM tables: rows of ``sram_entry_bits``, derated by the
      chip's word utilization before packing into pages.
    """
    blocks = 0
    if table.kind is MemoryKind.TCAM:
        blocks = tcam_blocks_for_table(table.entries, table.key_width)
        data_bits = table.entries * table.data_width
        pages = sram_pages_for_bits(_derate(data_bits, sram_word_utilization))
        return TableAllocation(table, blocks, pages)
    if table.raw_bits is not None:
        return TableAllocation(table, 0, sram_pages_for_bits(table.raw_bits))
    bits = table.entries * table.sram_entry_bits
    return TableAllocation(table, 0, sram_pages_for_bits(_derate(bits, sram_word_utilization)))


def _derate(bits: int, utilization: float) -> int:
    if utilization <= 0 or utilization > 1:
        raise ValueError(f"utilization {utilization} outside (0, 1]")
    return -(-bits // 1) if utilization == 1.0 else int(-(-bits // utilization))


def phase_stages(
    allocation_tables: List[TableAllocation],
    dependent_alu_ops: int,
    chip: ChipSpec,
) -> int:
    """Stages one phase occupies.

    Memory stages: enough stages to hold the phase's blocks and pages
    at the chip's per-stage capacity.  ALU stages: a chain of
    ``dependent_alu_ops`` dependent operations needs
    ``ceil(ops / alu_ops_per_stage)`` stages, the first of which can be
    the (last) memory stage — hence ``mem + alu - 1``.
    """
    blocks = sum(t.tcam_blocks for t in allocation_tables)
    pages = sum(t.sram_pages for t in allocation_tables)
    mem_stages = 0
    if allocation_tables:
        mem_stages = max(
            1,
            -(-blocks // chip.tcam_blocks_per_stage),
            -(-pages // chip.sram_pages_per_stage),
        )
    alu_stages = -(-dependent_alu_ops // chip.alu_ops_per_stage) if dependent_alu_ops else 0
    if mem_stages == 0:
        return max(1, alu_stages)
    return max(1, mem_stages + max(0, alu_stages - 1))


def map_layout(layout: Layout, chip: ChipSpec) -> ChipMapping:
    """Map every phase of ``layout`` onto ``chip`` in pipeline order."""
    phase_allocations: List[PhaseAllocation] = []
    for phase in layout.phases:
        tables = [allocate_table(t, chip.sram_word_utilization) for t in phase.tables]
        stages = phase_stages(tables, phase.dependent_alu_ops, chip)
        phase_allocations.append(PhaseAllocation(phase.name, tables, stages))
    mapping = ChipMapping(layout.name, chip, phase_allocations)
    if chip.supports_recirculation and not mapping.fits_single_pass and mapping.feasible:
        mapping = ChipMapping(layout.name, chip, phase_allocations, recirculated=True)
    return mapping
