"""The Tofino-2 implementation model.

The paper obtains its Tofino-2 numbers by compiling P4 programs with
the proprietary Intel toolchain (§6.2).  We cannot run that toolchain,
so this module is the substitution documented in DESIGN.md: an
analytic model applying exactly the overheads the paper attributes to
Tofino-2 when explaining its deltas from the ideal RMT chip:

1. **Action bits** reserve part of every SRAM word, capping usable
   SRAM word utilization at 50% (§6.5.2) — applied to every
   entry-structured SRAM table.  Raw bit arrays (bitmaps) are exempt:
   their words carry no per-entry action data, which is why RESAIL's
   observed page growth (556 -> 750, x1.35) is well below x2.
2. **One ALU level per stage** (§6.5.3): a compare-then-act pattern
   like a BST level costs two stages instead of one.
3. **Ternary bitmask tables**: extracting match keys from non-byte-
   aligned header slices requires extra ternary tables, a small
   additive TCAM cost (§6.5.2) — modelled as one TCAM block per table
   flagged ``unaligned_key``.
4. **Recirculation**: a program needing more than 20 stages can make a
   second pass through the pipe, halving the usable switch ports
   (§6.5.3); memory limits are unchanged.
"""

from __future__ import annotations

from typing import List

from .layout import Layout
from .mapping import (
    ChipMapping,
    PhaseAllocation,
    TableAllocation,
    allocate_table,
    phase_stages,
)
from .specs import TOFINO2


def map_to_tofino2(layout: Layout) -> ChipMapping:
    """Map a layout onto Tofino-2, applying the P4-level overheads."""
    phase_allocations: List[PhaseAllocation] = []
    for phase in layout.phases:
        tables: List[TableAllocation] = []
        for table in phase.tables:
            allocation = allocate_table(table, TOFINO2.sram_word_utilization)
            if table.unaligned_key:
                # One ternary bitmask block for key extraction (§6.5.2).
                allocation = TableAllocation(
                    allocation.table,
                    allocation.tcam_blocks + 1,
                    allocation.sram_pages,
                )
            tables.append(allocation)
        stages = phase_stages(tables, phase.dependent_alu_ops, TOFINO2)
        phase_allocations.append(PhaseAllocation(phase.name, tables, stages))
    mapping = ChipMapping(layout.name, TOFINO2, phase_allocations)
    if not mapping.fits_single_pass and mapping.feasible:
        mapping = ChipMapping(layout.name, TOFINO2, phase_allocations, recirculated=True)
    return mapping
