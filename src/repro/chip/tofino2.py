"""The Tofino-2 implementation model.

The paper obtains its Tofino-2 numbers by compiling P4 programs with
the proprietary Intel toolchain (§6.2).  We cannot run that toolchain,
so this module is the substitution documented in DESIGN.md: an
analytic model applying exactly the overheads the paper attributes to
Tofino-2 when explaining its deltas from the ideal RMT chip:

1. **Action bits** reserve part of every SRAM word, capping usable
   SRAM word utilization at 50% (§6.5.2) — applied to every
   entry-structured SRAM table.  Raw bit arrays (bitmaps) are exempt:
   their words carry no per-entry action data, which is why RESAIL's
   observed page growth (556 -> 750, x1.35) is well below x2.
2. **One ALU level per stage** (§6.5.3): a compare-then-act pattern
   like a BST level costs two stages instead of one.
3. **Ternary bitmask tables**: extracting match keys from non-byte-
   aligned header slices requires extra ternary tables, a small
   additive TCAM cost (§6.5.2) — modelled as one TCAM block per table
   flagged ``unaligned_key``.
4. **Recirculation**: a program needing more than 20 stages can make a
   second pass through the pipe, halving the usable switch ports
   (§6.5.3); memory limits are unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .layout import Layout
from .mapping import (
    ChipMapping,
    PhaseAllocation,
    TableAllocation,
    allocate_table,
    phase_stages,
)
from .specs import TOFINO2


def map_to_tofino2(layout: Layout) -> ChipMapping:
    """Map a layout onto Tofino-2, applying the P4-level overheads."""
    phase_allocations: List[PhaseAllocation] = []
    for phase in layout.phases:
        tables: List[TableAllocation] = []
        for table in phase.tables:
            allocation = allocate_table(table, TOFINO2.sram_word_utilization)
            if table.unaligned_key:
                # One ternary bitmask block for key extraction (§6.5.2).
                allocation = TableAllocation(
                    allocation.table,
                    allocation.tcam_blocks + 1,
                    allocation.sram_pages,
                )
            tables.append(allocation)
        stages = phase_stages(tables, phase.dependent_alu_ops, TOFINO2)
        phase_allocations.append(PhaseAllocation(phase.name, tables, stages))
    mapping = ChipMapping(layout.name, TOFINO2, phase_allocations)
    if not mapping.fits_single_pass and mapping.feasible:
        mapping = ChipMapping(layout.name, TOFINO2, phase_allocations, recirculated=True)
    return mapping


def tofino2_fit_report(
    layout: Layout,
    tcam_blocks: Optional[int] = None,
    sram_pages: Optional[int] = None,
    stage_budget: Optional[int] = None,
) -> Tuple["ChipMapping", List[str]]:
    """Map a layout onto Tofino-2 and report every exceeded limit.

    The managed FIB runtime's capacity guard calls this after each
    update batch; limits default to the full chip envelope
    (recirculation doubling the stage budget) but can be tightened to
    model a layout sharing the pipe with other programs.

    Returns the mapping plus a list of human-readable reasons, empty
    when the layout fits.
    """
    if tcam_blocks is None:
        tcam_blocks = TOFINO2.tcam_blocks
    if sram_pages is None:
        sram_pages = TOFINO2.sram_pages
    if stage_budget is None:
        stage_budget = TOFINO2.stages * 2  # one recirculation allowed
    mapping = map_to_tofino2(layout)
    reasons: List[str] = []
    if mapping.tcam_blocks > tcam_blocks:
        reasons.append(
            f"TCAM blocks {mapping.tcam_blocks} > budget {tcam_blocks}"
        )
    if mapping.sram_pages > sram_pages:
        reasons.append(
            f"SRAM pages {mapping.sram_pages} > budget {sram_pages}"
        )
    if mapping.stages > stage_budget:
        reasons.append(
            f"stages {mapping.stages} > budget {stage_budget}"
        )
    return mapping, reasons
