"""The dRMT chip model (§2, Appendix A.1).

dRMT disaggregates memory from processing: match-action processors
execute steps in any order against TCAM/SRAM relocated into a shared
external pool.  Two consequences for mapping:

* **Memory is pooled** — a table never "spills" across stages; only
  the chip-wide block/page totals bound it.
* **Latency follows the program**, not the memory: the number of
  processor rounds equals the critical path of phases (with the same
  per-round ALU depth rules as the ideal RMT chip), because a dRMT
  processor does not need extra rounds just to reach more memory.

The paper argues its RMT results carry over to dRMT since "RMT is a
stricter version of dRMT with additional access restrictions" — this
model lets that claim be checked: every layout's dRMT rounds are <=
its ideal-RMT stages, with equality exactly when memory never spills.

We give the dRMT pool the same totals as Tofino-2 so comparisons are
apples-to-apples.
"""

from __future__ import annotations

from typing import List

from .layout import Layout
from .mapping import ChipMapping, PhaseAllocation, allocate_table
from .specs import ChipSpec

#: A dRMT chip with Tofino-2-sized memory pools.  ``stages`` here means
#: processor rounds; per-stage memory quantities are meaningless for a
#: pooled memory and are never consulted by the dRMT mapper.
DRMT = ChipSpec(
    name="dRMT",
    stages=20,
    tcam_blocks=480,
    sram_pages=1600,
    alu_ops_per_stage=2,
    sram_word_utilization=1.0,
)


def map_to_drmt(layout: Layout) -> ChipMapping:
    """Map a layout onto the dRMT model.

    Each phase costs ``ceil(dependent_alu_ops / 2)`` rounds (min 1 when
    it performs a lookup); memory contributes only to the pooled
    totals.
    """
    phase_allocations: List[PhaseAllocation] = []
    for phase in layout.phases:
        tables = [allocate_table(t, DRMT.sram_word_utilization) for t in phase.tables]
        alu_rounds = -(-phase.dependent_alu_ops // DRMT.alu_ops_per_stage)
        rounds = max(1 if phase.tables else 0, alu_rounds, 1)
        phase_allocations.append(PhaseAllocation(phase.name, tables, rounds))
    return ChipMapping(layout.name, DRMT, phase_allocations)
