"""Chip models: resource specs, layouts, and the ideal-RMT/Tofino-2 mappers."""

from .drmt import DRMT, map_to_drmt
from .ideal_rmt import map_to_ideal_rmt
from .layout import Layout, LogicalTable, MemoryKind, Phase
from .mapping import (
    ChipMapping,
    PhaseAllocation,
    TableAllocation,
    allocate_table,
    map_layout,
    phase_stages,
)
from .specs import IDEAL_RMT, TOFINO2, TOFINO2_TCAM_KEY_WIDTH, ChipSpec
from .tofino2 import map_to_tofino2, tofino2_fit_report

__all__ = [
    "DRMT",
    "map_to_drmt",
    "map_to_ideal_rmt",
    "map_to_tofino2",
    "tofino2_fit_report",
    "Layout",
    "LogicalTable",
    "MemoryKind",
    "Phase",
    "ChipMapping",
    "PhaseAllocation",
    "TableAllocation",
    "allocate_table",
    "map_layout",
    "phase_stages",
    "IDEAL_RMT",
    "TOFINO2",
    "TOFINO2_TCAM_KEY_WIDTH",
    "ChipSpec",
]
