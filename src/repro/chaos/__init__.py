"""Deterministic chaos harness for the serving dataplane.

Scripted, seeded dataplane faults — worker kills, in-batch
exceptions, delayed/dropped snapshot-acks, commit-gate stalls —
mirroring :mod:`repro.control.faults` on the control plane, plus the
``chaos soak``: a full serving run under fault injection whose
answers are checked request-by-request against the per-epoch trie
oracle.  See ``docs/robustness.md`` ("Dataplane fault model").
"""

from .plan import (
    ALL_CHAOS,
    AckDelayFault,
    AckDropFault,
    BatchExceptionFault,
    ChaosBatchFault,
    ChaosEngine,
    ChaosInjector,
    ChaosPlan,
    CommitStallFault,
    WorkerKillFault,
)
from .soak import DEFAULT_CHAOS, SoakFailure, run_chaos_soak

__all__ = [
    "ALL_CHAOS",
    "AckDelayFault",
    "AckDropFault",
    "BatchExceptionFault",
    "ChaosBatchFault",
    "ChaosEngine",
    "ChaosInjector",
    "ChaosPlan",
    "CommitStallFault",
    "DEFAULT_CHAOS",
    "SoakFailure",
    "WorkerKillFault",
    "run_chaos_soak",
]
