"""The chaos soak: fault-injected serving checked against the oracle.

``run_chaos_soak`` drives a full serving stack — coalescer, worker
pool (thread or process), supervisor, managed churn with rollbacks —
under a seeded :class:`~repro.chaos.ChaosPlan`, and proves the
robustness invariants the fault model promises:

* **nothing lost** — every submitted request resolves: answered, or
  failed with a *typed* serving error (shed, timeout, crash);
* **nothing duplicated** — every answered request saw exactly one
  delivery;
* **nothing stale** — every answer equals the trie oracle's answer at
  the serving epoch the request executed under (epoch-keyed snapshots
  recorded at each landed commit, exactly like the stress suite);
* **supervision works** — every worker the chaos plan killed is
  restarted within the budget: the pool ends the soak with its full
  worker complement alive;
* **deadlines hold** — with a request deadline armed, no future is
  left unresolved after the run.

The report dict is JSON-serialisable (the ``repro chaos-soak`` CLI
writes it as the ``chaos_soak.json`` sidecar).  Invariant violations
raise :class:`SoakFailure` — the harness *fails loudly*, it never
files a bad run as statistics.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Sequence

from ..control import ChurnGenerator, ManagedFib, RuntimePolicy
from ..obs import MetricsRegistry
from ..prefix.prefix import Prefix
from ..prefix.trie import Fib
from ..server import LookupServer, RestartPolicy, ServerError
from .plan import ChaosPlan

__all__ = ["SoakFailure", "run_chaos_soak", "DEFAULT_CHAOS"]

#: The background-chaos set the soak (and ``--chaos all``) defaults to.
DEFAULT_CHAOS = ("worker_kill", "batch_exception", "commit_stall")

_WIDTH = 8  # 256 addresses: the oracle snapshot is cheap and total


class SoakFailure(AssertionError):
    """A robustness invariant did not survive the chaos soak."""


def _build_fib(seed: int, size: int = 30) -> Fib:
    rng = random.Random(f"chaos-fib:{seed}")
    fib = Fib(_WIDTH)
    while len(fib) < size:
        length = rng.randint(1, _WIDTH)
        fib.insert(
            Prefix.from_bits(rng.getrandbits(length), length, _WIDTH),
            rng.randint(1, 99))
    return fib


def _oracle_answers(oracle) -> List[Optional[int]]:
    return [oracle.lookup(a) for a in range(1 << _WIDTH)]


def run_chaos_soak(
    *,
    mode: str = "thread",
    workers: int = 3,
    requests: int = 300,
    request_size: int = 8,
    max_batch: int = 64,
    churn_every: int = 25,
    churn_ops: int = 4,
    seed: int = 0,
    chaos: Optional[Sequence[str]] = None,
    rate: Optional[float] = None,
    script: Sequence = (),
    deadline_s: Optional[float] = 30.0,
    factory=None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict:
    """Run one seeded chaos soak; returns the report dict.

    ``chaos`` names injectors from :data:`repro.chaos.ALL_CHAOS`
    (default :data:`DEFAULT_CHAOS`); ``script`` adds exact
    ``(kind, worker, seq)`` triggers.  ``request_size`` must divide
    ``max_batch`` so no request spans batches (single-delivery and
    single-epoch assertions stay exact).
    """
    if max_batch % request_size:
        raise ValueError("request_size must divide max_batch")
    if factory is None:
        from ..algorithms.hibst import HiBst
        factory = HiBst
    names = list(DEFAULT_CHAOS if chaos is None else chaos)
    plan = ChaosPlan.build(names, seed, rate=rate, script=tuple(script))

    base = _build_fib(seed)
    managed = ManagedFib(lambda fib: factory(fib), base,
                         policy=RuntimePolicy(check_every=4),
                         registry=registry)
    # Fast, effectively unbounded restarts: the soak asserts recovery,
    # the budget path is exercised by the unit tests.
    restart_policy = RestartPolicy(
        base_backoff_s=0.005, max_backoff_s=0.02,
        budget=10 * requests, window_s=3600.0, seed=seed)
    server = LookupServer(
        managed=managed, workers=workers, mode=mode,
        max_batch=max_batch, max_wait_s=0.001,
        request_deadline_s=deadline_s, chaos=plan,
        restart_policy=restart_policy,
        ack_timeout_s=2.0 if any(n.startswith("ack") for n in names)
        or any(k.startswith("ack") for k, *_ in script) else 60.0)

    snapshots = {0: _oracle_answers(managed.oracle)}

    def record(outcome, algo, touched):
        snapshots[server.epoch] = _oracle_answers(managed.oracle)

    managed.add_commit_listener(record)

    rng = random.Random(f"chaos-traffic:{seed}")
    generator = ChurnGenerator(base, seed=seed + 1)
    submitted = []
    landed = rolled_back = 0
    with server:
        for i in range(requests):
            addresses = [rng.randrange(1 << _WIDTH)
                         for _ in range(request_size)]
            submitted.append((addresses, server.submit(addresses)))
            if churn_every and (i + 1) % churn_every == 0:
                server.flush()
                outcome = managed.apply_batch(list(generator.ops(churn_ops)))
                if outcome == "batch_rolled_back":
                    rolled_back += 1
                else:
                    landed += 1
        server.flush()

        answered = shed = timeouts = crash_failures = 0
        errors: Dict[str, int] = {}
        stale = lost = duplicated = 0
        for addresses, handle in submitted:
            try:
                hops = handle.result(timeout=60)
            except ServerError as exc:
                kind = type(exc).__name__
                errors[kind] = errors.get(kind, 0) + 1
                if kind == "RequestShed":
                    shed += 1
                elif kind == "RequestTimeout":
                    timeouts += 1
                else:
                    crash_failures += 1
                continue
            except TimeoutError:
                lost += 1
                continue
            answered += 1
            if handle.deliveries != 1:
                duplicated += 1
                continue
            lo, hi = handle.epoch_span
            if lo != hi:
                stale += 1  # request spanned a commit: cannot happen here
                continue
            expected = snapshots.get(hi)
            if expected is None:
                stale += 1
                continue
            for address, hop in zip(addresses, hops):
                if hop != expected[address]:
                    stale += 1
                    break

        # Recovery: every killed worker must come back.  Give the
        # supervisor's (tiny) backoffs a bounded window to land.
        recovered = threading.Event()
        for _ in range(2000):
            # Counter parity matters too: restart_worker can have
            # spawned the replacement (alive_workers is full) while
            # the supervisor's restarts counter increment is still a
            # step behind on the timer thread — reading the report in
            # that window shows deaths > restarts + giveups.
            caught_up = (server.supervisor.restarts
                         + server.supervisor.giveups
                         >= server.supervisor.deaths)
            if caught_up and server.pool.alive_workers() == workers:
                break
            recovered.wait(0.005)
        final_alive = server.pool.alive_workers()
        unresolved = sum(1 for _a, h in submitted if not h.done())

    request_pcts = server.slo.percentiles("request")
    supervisor = server.supervisor
    report = {
        "mode": mode,
        "seed": seed,
        "workers": workers,
        "chaos": names,
        "script": [list(event) for event in script],
        "requests": len(submitted),
        "answered": answered,
        "shed": shed,
        "deadline_timeouts": timeouts,
        "failed_typed": crash_failures,
        "errors": errors,
        "lost": lost,
        "duplicated": duplicated,
        "stale": stale,
        "unresolved_after_close": unresolved,
        "commits_landed": landed,
        "commits_rolled_back": rolled_back,
        "worker_deaths": supervisor.deaths,
        "worker_restarts": supervisor.restarts,
        "restart_giveups": supervisor.giveups,
        "requeued_batches": supervisor.requeued_batches,
        "simulated_backoff_s": round(supervisor.simulated_backoff_s, 6),
        "health_transitions": server.health.transitions,
        "final_health": str(server.health_state),
        "final_alive_workers": final_alive,
        "slo_breaches": server.slo.breaches,
        "latency": {
            "request_p50_s": request_pcts.get("p50"),
            "request_p99_s": request_pcts.get("p99"),
            "request_p999_s": request_pcts.get("p999"),
        },
        "ok": True,
    }

    failures = []
    if lost:
        failures.append(f"{lost} request(s) lost (never resolved)")
    if duplicated:
        failures.append(f"{duplicated} request(s) double-delivered")
    if stale:
        failures.append(f"{stale} stale read(s) vs the per-epoch oracle")
    if unresolved:
        failures.append(
            f"{unresolved} future(s) unresolved after close")
    if final_alive != workers and not supervisor.giveups:
        failures.append(
            f"only {final_alive}/{workers} workers alive after recovery "
            f"window with no budget give-ups")
    if answered == 0:
        failures.append("chaos starved the soak: nothing was answered")
    if failures:
        report["ok"] = False
        report["failures"] = failures
        raise SoakFailure("; ".join(failures), report)
    return report
