"""Deterministic dataplane fault injection: the chaos plan.

The serving-side twin of :class:`repro.control.faults.FaultPlan`.
Where the control plane's injectors corrupt the *update stream*, these
corrupt the *serving machinery*: kill a worker mid-batch, raise inside
batch execution, delay or drop a snapshot-ack, stall the commit gate.

Determinism is stricter than the control plane's: a fault decision is
a **pure function of** ``(injector name, seed, worker, sequence
number)`` — each query derives a fresh
``random.Random(f"{name}:{seed}:{worker}:{seq}")`` — so the schedule
does not depend on call order, thread interleaving, or when a forked
worker was (re)started.  A restarted worker resumes its sequence
numbers where the dead one stopped, so "kill worker 1 at batch 7"
means the same thing on every run with the same seed.

Two scheduling modes, combinable:

* **rate** — each injector fires on a seeded fraction of events
  (soak-style background chaos);
* **script** — exact ``(kind, worker, seq)`` triggers ("kill worker N
  at batch K"), for pinpoint regression tests.

:class:`ChaosEngine` adapts the plan to thread-mode workers by
wrapping a :class:`~repro.engine.BatchEngine` replica: a ``kill``
raises :class:`~repro.server.coalescer.WorkerCrash` (the worker loop
re-raises it and dies with the batch unscattered), a ``raise`` throws
a retry-safe :class:`ChaosBatchFault` (the batch's futures fail with
a typed error).  Process-mode workers consult the plan directly in
the child: a ``kill`` is a real ``os._exit`` — no cleanup, no goodbye
— and ack faults act on the snapshot-ack protocol itself.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..server.coalescer import ServerError, WorkerCrash

__all__ = [
    "ALL_CHAOS",
    "ChaosBatchFault",
    "ChaosEngine",
    "ChaosInjector",
    "ChaosPlan",
    "WorkerKillFault",
    "BatchExceptionFault",
    "AckDelayFault",
    "AckDropFault",
    "CommitStallFault",
]


class ChaosBatchFault(ServerError):
    """An injected exception inside batch execution (transient)."""

    #: Consulted by :class:`repro.server.supervisor.RetryPolicy`:
    #: the fault fired before any scatter, so a resubmit is safe.
    retry_safe = True


class ChaosInjector:
    """Base class: a named injector with seed-pure decisions."""

    name: str = "chaos"
    #: Probability the injector fires on one event (batch or ack).
    rate: float = 0.05

    def __init__(self, seed: int, rate: Optional[float] = None):
        if rate is not None:
            self.rate = rate
        self.seed = seed

    def _fires(self, worker: int, seq: int) -> bool:
        rng = random.Random(f"{self.name}:{self.seed}:{worker}:{seq}")
        return rng.random() < self.rate

    # Batch-execution faults override this: None, "crash", or "raise".
    def batch_action(self, worker: int, seq: int) -> Optional[str]:
        return None

    # Snapshot-ack faults override this: None or (delay_s, drop).
    def ack_action(self, worker: int,
                   seq: int) -> Optional[Tuple[float, bool]]:
        return None

    # Commit faults override this: seconds to stall the gate (0 = no).
    def commit_stall(self, epoch: int) -> float:
        return 0.0


class WorkerKillFault(ChaosInjector):
    """Hard-kill a worker mid-batch.

    Thread mode: raises :class:`WorkerCrash` out of the engine — the
    worker loop dies with the batch unscattered.  Process mode: the
    child ``os._exit``\\ s.  Either way the supervisor must notice,
    re-queue the orphans, and restart the worker.
    """

    name = "worker_kill"
    rate = 0.05

    def batch_action(self, worker: int, seq: int) -> Optional[str]:
        return "crash" if self._fires(worker, seq) else None


class BatchExceptionFault(ChaosInjector):
    """Raise inside batch execution (a transient engine fault).

    Unlike a kill, the worker survives: the batch's futures fail with
    a retry-safe :class:`ChaosBatchFault` and the worker serves on.
    """

    name = "batch_exception"
    rate = 0.05

    def batch_action(self, worker: int, seq: int) -> Optional[str]:
        return "raise" if self._fires(worker, seq) else None


class AckDelayFault(ChaosInjector):
    """Delay a worker's snapshot-ack by ``delay_s`` (slow re-sync)."""

    name = "ack_delay"
    rate = 0.1
    delay_s = 0.05

    def __init__(self, seed: int, rate: Optional[float] = None,
                 delay_s: Optional[float] = None):
        super().__init__(seed, rate)
        if delay_s is not None:
            self.delay_s = delay_s

    def ack_action(self, worker: int,
                   seq: int) -> Optional[Tuple[float, bool]]:
        if self._fires(worker, seq):
            return (self.delay_s, False)
        return None


class AckDropFault(ChaosInjector):
    """Drop a worker's snapshot-ack entirely (hung worker).

    The commit's ack wait times out, the worker is killed, and the
    restart rebuilds it from the very snapshot it failed to ack — the
    fleet converges instead of wedging every future commit.
    """

    name = "ack_drop"
    rate = 0.05

    def ack_action(self, worker: int,
                   seq: int) -> Optional[Tuple[float, bool]]:
        if self._fires(worker, seq):
            return (0.0, True)
        return None


class CommitStallFault(ChaosInjector):
    """Stall the commit gate (a slow refresh) for ``stall_s``.

    Serving stays quiesced for the stall — queue depth climbs and
    request deadlines keep ticking, which is exactly the pressure the
    health state machine must absorb.
    """

    name = "commit_stall"
    rate = 0.25
    stall_s = 0.02

    def __init__(self, seed: int, rate: Optional[float] = None,
                 stall_s: Optional[float] = None):
        super().__init__(seed, rate)
        if stall_s is not None:
            self.stall_s = stall_s

    def commit_stall(self, epoch: int) -> float:
        # Commits are a single global sequence: key by epoch, worker 0.
        return self.stall_s if self._fires(0, epoch) else 0.0


#: Registry, in a fixed order so ``--chaos all`` is deterministic
#: (mirrors :data:`repro.control.faults.ALL_FAULTS`).
ALL_CHAOS: Dict[str, Type[ChaosInjector]] = {
    cls.name: cls
    for cls in (
        WorkerKillFault,
        BatchExceptionFault,
        AckDelayFault,
        AckDropFault,
        CommitStallFault,
    )
}


class ChaosPlan:
    """An ordered set of chaos injectors plus an exact-trigger script.

    Script events are ``(kind, worker, seq)`` tuples with ``kind`` in
    ``{"kill", "raise", "ack_delay", "ack_drop"}`` — e.g.
    ``("kill", 1, 7)`` kills worker 1 at its 7th batch.  Scripted
    triggers are checked before the rate-based injectors.
    """

    SCRIPT_KINDS = ("kill", "raise", "ack_delay", "ack_drop")

    def __init__(self, injectors: Sequence[ChaosInjector],
                 script: Sequence[Tuple[str, int, int]] = (),
                 *, script_delay_s: float = 0.05):
        self.injectors = list(injectors)
        for kind, _worker, _seq in script:
            if kind not in self.SCRIPT_KINDS:
                raise ValueError(
                    f"unknown script kind {kind!r}; "
                    f"available: {self.SCRIPT_KINDS}")
        self.script = {(kind, worker, seq)
                       for kind, worker, seq in script}
        self.script_delay_s = script_delay_s

    @classmethod
    def build(cls, names: Sequence[str], seed: int,
              rate: Optional[float] = None,
              script: Sequence[Tuple[str, int, int]] = ()) -> "ChaosPlan":
        unknown = [n for n in names if n not in ALL_CHAOS]
        if unknown:
            raise ValueError(
                f"unknown chaos faults {unknown}; "
                f"available: {sorted(ALL_CHAOS)}")
        return cls([ALL_CHAOS[n](seed, rate) for n in names], script)

    @classmethod
    def none(cls) -> "ChaosPlan":
        return cls([])

    # -- queried by the pools / server ---------------------------------
    def batch_action(self, worker: int, seq: int) -> Optional[str]:
        if ("kill", worker, seq) in self.script:
            return "crash"
        if ("raise", worker, seq) in self.script:
            return "raise"
        for injector in self.injectors:
            action = injector.batch_action(worker, seq)
            if action is not None:
                return action
        return None

    def ack_action(self, worker: int,
                   seq: int) -> Optional[Tuple[float, bool]]:
        if ("ack_drop", worker, seq) in self.script:
            return (0.0, True)
        if ("ack_delay", worker, seq) in self.script:
            return (self.script_delay_s, False)
        for injector in self.injectors:
            action = injector.ack_action(worker, seq)
            if action is not None:
                return action
        return None

    def commit_stall(self, epoch: int) -> float:
        return max((injector.commit_stall(epoch)
                    for injector in self.injectors), default=0.0)


class ChaosEngine:
    """A thread-worker engine proxy that executes the chaos plan.

    Wraps one :class:`~repro.engine.BatchEngine` replica; everything
    except ``lookup_batch`` delegates to the wrapped engine (including
    ``set_backend`` and the plan/cache introspection the server uses).
    """

    def __init__(self, engine, plan: ChaosPlan, worker: int):
        self._engine = engine
        self._plan = plan
        self._worker = worker
        self._seq = 0

    def lookup_batch(self, addresses):
        seq = self._seq
        self._seq += 1
        action = self._plan.batch_action(self._worker, seq)
        if action == "crash":
            raise WorkerCrash(
                f"[chaos] worker {self._worker} killed at batch {seq}")
        if action == "raise":
            raise ChaosBatchFault(
                f"[chaos] injected batch exception on worker "
                f"{self._worker} (batch {seq})")
        return self._engine.lookup_batch(addresses)

    def __getattr__(self, name):
        return getattr(self._engine, name)
