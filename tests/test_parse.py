"""Unit tests for repro.prefix.parse."""

import pytest

from repro.prefix import (
    IPV4_WIDTH,
    IPV6_WIDTH,
    Prefix,
    as_prefix,
    format_address,
    parse_ipv4_address,
    parse_ipv4_prefix,
    parse_ipv6_address,
    parse_ipv6_prefix,
    parse_prefix,
)


class TestIPv4:
    def test_parse_prefix(self):
        p = parse_ipv4_prefix("10.1.2.0/23")
        assert p.width == IPV4_WIDTH
        assert p.length == 23
        assert str(p) == "10.1.2.0/23"

    def test_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            parse_ipv4_prefix("10.1.2.3/23")

    def test_parse_address(self):
        assert parse_ipv4_address("10.0.0.1") == 0x0A000001

    def test_format_address(self):
        assert format_address(0x0A000001, IPV4_WIDTH) == "10.0.0.1"


class TestIPv6:
    def test_parse_prefix_truncates_to_64(self):
        p = parse_ipv6_prefix("2001:db8::/32")
        assert p.width == IPV6_WIDTH
        assert p.length == 32
        assert p.value == 0x2001_0DB8_0000_0000

    def test_rejects_longer_than_64(self):
        with pytest.raises(ValueError):
            parse_ipv6_prefix("2001:db8::/96")

    def test_parse_address_top_64(self):
        assert parse_ipv6_address("2001:db8::1") == 0x2001_0DB8_0000_0000


class TestGeneric:
    def test_parse_prefix_dispatch(self):
        assert parse_prefix("10.0.0.0/8").width == IPV4_WIDTH
        assert parse_prefix("2001:db8::/32").width == IPV6_WIDTH

    def test_bitstring_needs_width(self):
        with pytest.raises(ValueError):
            parse_prefix("0101")
        p = parse_prefix("0101*", width=8)
        assert p.length == 4 and p.width == 8

    def test_as_prefix_passthrough(self):
        p = Prefix.from_bits(1, 1, 8)
        assert as_prefix(p) is p
        assert as_prefix("10.0.0.0/8") == parse_ipv4_prefix("10.0.0.0/8")
