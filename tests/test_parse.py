"""Unit tests for repro.prefix.parse."""

import pytest

from repro.prefix import (
    IPV4_WIDTH,
    IPV6_WIDTH,
    Prefix,
    as_prefix,
    format_address,
    parse_ipv4_address,
    parse_ipv4_prefix,
    parse_ipv6_address,
    parse_ipv6_prefix,
    parse_prefix,
)


class TestIPv4:
    def test_parse_prefix(self):
        p = parse_ipv4_prefix("10.1.2.0/23")
        assert p.width == IPV4_WIDTH
        assert p.length == 23
        assert str(p) == "10.1.2.0/23"

    def test_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            parse_ipv4_prefix("10.1.2.3/23")

    def test_parse_address(self):
        assert parse_ipv4_address("10.0.0.1") == 0x0A000001

    def test_format_address(self):
        assert format_address(0x0A000001, IPV4_WIDTH) == "10.0.0.1"


class TestIPv6:
    def test_parse_prefix_truncates_to_64(self):
        p = parse_ipv6_prefix("2001:db8::/32")
        assert p.width == IPV6_WIDTH
        assert p.length == 32
        assert p.value == 0x2001_0DB8_0000_0000

    def test_rejects_longer_than_64(self):
        with pytest.raises(ValueError):
            parse_ipv6_prefix("2001:db8::/96")

    def test_parse_address_top_64(self):
        assert parse_ipv6_address("2001:db8::1") == 0x2001_0DB8_0000_0000


class TestGeneric:
    def test_parse_prefix_dispatch(self):
        assert parse_prefix("10.0.0.0/8").width == IPV4_WIDTH
        assert parse_prefix("2001:db8::/32").width == IPV6_WIDTH

    def test_bitstring_needs_width(self):
        with pytest.raises(ValueError):
            parse_prefix("0101")
        p = parse_prefix("0101*", width=8)
        assert p.length == 4 and p.width == 8

    def test_as_prefix_passthrough(self):
        p = Prefix.from_bits(1, 1, 8)
        assert as_prefix(p) is p
        assert as_prefix("10.0.0.0/8") == parse_ipv4_prefix("10.0.0.0/8")


class TestMalformedText:
    """parse.py hardening: malformed CIDR/bitstring text raises
    PrefixError (not AddressValueError or a bare ValueError from the
    ipaddress module)."""

    @pytest.mark.parametrize("text", [
        "10.0.0.0/33",        # length out of range
        "10.0.0.1/8",         # host bits set
        "256.0.0.0/8",        # bad octet
        "10.0.0.0/-1",        # negative length
        "not-a-prefix",
        "",
        "   ",
    ])
    def test_parse_prefix_rejects(self, text):
        from repro.prefix import PrefixError

        with pytest.raises(PrefixError):
            parse_prefix(text, width=32)

    @pytest.mark.parametrize("text", [
        "2001:db8::/129",
        "2001:db8::1/32",     # host bits set
        "2001:zz8::/32",
        "2001:db8::/96",      # beyond the 64-bit routing view
    ])
    def test_parse_ipv6_prefix_rejects(self, text):
        from repro.prefix import PrefixError

        with pytest.raises(PrefixError):
            parse_ipv6_prefix(text)

    def test_bitstring_without_width_is_prefix_error(self):
        from repro.prefix import PrefixError

        with pytest.raises(PrefixError):
            parse_prefix("0101")

    def test_non_string_rejected(self):
        from repro.prefix import PrefixError

        with pytest.raises(PrefixError):
            parse_prefix(12345)
