"""Unit tests for repro.obs: registry, histograms, accounting.

The determinism contract is the point: everything in ``snapshot()`` /
``render_prometheus()`` derives from the workload alone, so the golden
tests below compare byte-for-byte.
"""

import json

import pytest

from repro.algorithms import Resail
from repro.control import ALL_FAULTS, ChurnGenerator, FaultPlan, ManagedFib
from repro.datasets import synthesize_as65000
from repro.obs import (
    AccessStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    access_skew,
    collect_access_stats,
    enable_hit_tracking,
    export_access_stats,
    hot_table_report,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("demo_total")
        c.inc()
        c.inc(2, algo="resail")
        assert c.value() == 1
        assert c.value(algo="resail") == 2
        assert c.value(algo="bsic") == 0

    def test_negative_increment_rejected(self):
        c = Counter("demo_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_order_is_canonical(self):
        c = Counter("demo_total")
        c.inc(1, b=2, a=1)
        c.inc(1, a=1, b=2)
        assert c.value(a=1, b=2) == 2
        assert c.samples() == [('demo_total{a="1",b="2"}', "2")]


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("demo_gauge")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value() == 4

    def test_gauges_may_go_negative(self):
        g = Gauge("demo_gauge")
        g.dec(3)
        assert g.value() == -3


class TestHistogram:
    def test_observation_on_bucket_bound_is_le(self):
        """Prometheus ``le`` semantics: a value equal to a bound lands
        in that bucket, not the next."""
        h = Histogram("h", (1, 2, 5))
        h.observe(1)
        h.observe(2)
        assert h.bucket_counts() == {"1": 1, "2": 1, "5": 0, "+Inf": 0}

    def test_overflow_goes_to_inf(self):
        h = Histogram("h", (1, 2))
        h.observe(2.0001)
        h.observe(1e9)
        assert h.bucket_counts()["+Inf"] == 2

    def test_below_first_bound(self):
        h = Histogram("h", (1, 2))
        h.observe(-5)
        h.observe(0)
        assert h.bucket_counts()["1"] == 2

    def test_sum_and_count(self):
        h = Histogram("h", (1, 2))
        for v in (0.5, 1.5, 3):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.0)
        assert h.count(algo="x") == 0

    def test_cumulative_rendering(self):
        h = Histogram("h", (1, 2))
        for v in (0.5, 1.5, 3):
            h.observe(v)
        assert h.samples() == [
            ('h_bucket{le="1"}', "1"),
            ('h_bucket{le="2"}', "2"),
            ('h_bucket{le="+Inf"}', "3"),
            ("h_sum", "5"),
            ("h_count", "3"),
        ]

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", (1, 1))
        with pytest.raises(ValueError):
            Histogram("h", (2, 1))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_trailing_inf_bound_is_dropped(self):
        h = Histogram("h", (1, float("inf")))
        assert h.bounds == (1.0,)


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_excludes_timings(self):
        reg = MetricsRegistry()
        reg.counter("ops_total").inc(4)
        with reg.timer("phase"):
            pass
        snap = reg.snapshot()
        assert snap["counters"]["ops_total"][""] == 4
        assert "timings" not in snap
        assert "phase" in reg.timings_snapshot()

    def test_prometheus_golden(self):
        """Byte-exact rendering — the ordering/escaping contract."""
        reg = MetricsRegistry()
        c = reg.counter("repro_ops_total", "Operations applied.")
        c.inc(3, algo="resail")
        c.inc(1, algo='b"s\\ic')
        reg.gauge("repro_health_state").set(2)
        h = reg.histogram("repro_batch_size", (1, 10), "Ops per batch.")
        h.observe(1)
        h.observe(7)
        h.observe(100)
        assert reg.render_prometheus() == (
            "# HELP repro_batch_size Ops per batch.\n"
            "# TYPE repro_batch_size histogram\n"
            'repro_batch_size_bucket{le="1"} 1\n'
            'repro_batch_size_bucket{le="10"} 2\n'
            'repro_batch_size_bucket{le="+Inf"} 3\n'
            "repro_batch_size_sum 108\n"
            "repro_batch_size_count 3\n"
            "# TYPE repro_health_state gauge\n"
            "repro_health_state 2\n"
            "# HELP repro_ops_total Operations applied.\n"
            "# TYPE repro_ops_total counter\n"
            'repro_ops_total{algo="b\\"s\\\\ic"} 1\n'
            'repro_ops_total{algo="resail"} 3\n'
        )

    def test_prometheus_excludes_timings_by_default(self):
        reg = MetricsRegistry()
        reg.observe_seconds("slow_phase", 0.5)
        assert "slow_phase" not in reg.render_prometheus()
        assert "slow_phase" in reg.render_prometheus(include_timings=True)

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("ops_total").inc(2)
        with reg.timer("phase"):
            pass
        doc = json.loads(reg.to_json())
        assert doc["metrics"]["counters"]["ops_total"][""] == 2
        assert doc["timings"]["phase"]["count"] == 1
        lean = json.loads(reg.to_json(include_timings=False))
        assert "timings" not in lean

    def test_timer_records_latency_buckets(self):
        reg = MetricsRegistry()
        reg.observe_seconds("phase", 0.5e-6)
        reg.observe_seconds("phase", 99.0)
        stats = reg.timings_snapshot()["phase"]
        assert stats["count"] == 2
        assert stats["min_s"] == 0.5e-6
        assert stats["max_s"] == 99.0
        assert stats["buckets"]["1e-06"] == 1
        assert stats["buckets"]["+Inf"] == 1


class TestAccessStats:
    def test_hit_rate(self):
        stats = AccessStats("t")
        assert stats.hit_rate == 0.0
        stats.reads = 4
        stats.hits = 3
        assert stats.hit_rate == pytest.approx(0.75)

    def test_reset_clears_tally(self):
        stats = AccessStats("t")
        stats.enable_hit_tracking()
        stats.hit_tally[0x0A000000] += 2
        stats.reads = 5
        stats.reset()
        assert stats.reads == 0
        assert not stats.hit_tally

    def test_snapshot_orders_tally_by_count(self):
        stats = AccessStats("t")
        stats.enable_hit_tracking()
        stats.hit_tally[1] = 2
        stats.hit_tally[2] = 9
        doc = stats.snapshot()
        assert list(doc["hit_tally"]) == ["0x2", "0x1"]

    def test_access_skew(self):
        stats = AccessStats("t")
        assert access_skew(stats) is None
        stats.enable_hit_tracking()
        stats.hit_tally[1] = 9
        stats.hit_tally[2] = 1
        assert access_skew(stats) == pytest.approx(0.9)


class TestAlgorithmAccounting:
    def test_lookups_bump_read_counters(self, ipv4_fib, ipv4_addresses):
        algo = Resail(ipv4_fib, min_bmp=13)
        stats_list = collect_access_stats(algo)
        assert stats_list, "RESAIL should expose instrumented structures"
        for stats in stats_list:
            stats.reset()
        for addr in ipv4_addresses[:50]:
            algo.lookup(addr)
        assert sum(s.reads for s in stats_list) > 0

    def test_hit_tracking_surfaces_skew(self, ipv4_fib, ipv4_addresses):
        algo = Resail(ipv4_fib, min_bmp=13)
        stats_list = enable_hit_tracking(algo)
        for stats in stats_list:
            stats.reset()
        hot = ipv4_addresses[0]
        for _ in range(20):
            algo.lookup(hot)
        report = hot_table_report(stats_list)
        assert "reads=" in report
        assert any(s.hit_tally for s in stats_list)

    def test_export_into_registry_is_deterministic(self, ipv4_fib,
                                                   ipv4_addresses):
        def run_once():
            algo = Resail(ipv4_fib, min_bmp=13)
            stats_list = collect_access_stats(algo)
            for stats in stats_list:
                stats.reset()
            for addr in ipv4_addresses[:50]:
                algo.lookup(addr)
            reg = MetricsRegistry()
            export_access_stats(reg, stats_list, algorithm="resail")
            return reg.render_prometheus()

        assert run_once() == run_once()


class TestChurnAccountingIdentity:
    """Registry counters must equal EventLog counters after churn."""

    def _run(self, seed=19, ops=150, batch=25):
        base = synthesize_as65000(scale=0.002)
        managed = ManagedFib(
            lambda fib: Resail(fib, min_bmp=13, hash_capacity=1 << 16),
            base,
            faults=FaultPlan.build(sorted(ALL_FAULTS), seed=seed),
            check_seed=seed,
        )
        generator = ChurnGenerator(base, seed=seed)
        for ops_batch in generator.batches(ops, batch):
            managed.apply_batch(ops_batch)
        return managed

    def test_registry_mirrors_event_log(self):
        managed = self._run()
        managed.log.check_accounting()
        managed.log.check_registry_consistency()
        mirror = managed.registry.get("repro_events_total")
        assert mirror is not None
        for kind, count in managed.log.counters.items():
            assert mirror.value(kind=kind) == count, kind
        # Batch outcomes counted exactly once per batch.
        outcomes = managed.registry.get("repro_batch_outcomes_total")
        total = sum(v for _k, v in outcomes.items())
        assert total == managed.log.batches_total

    def test_batch_size_histogram_counts_batches(self):
        managed = self._run()
        hist = managed.registry.get("repro_batch_size")
        assert hist.count() == managed.log.batches_total

    def test_health_gauge_tracks_final_state(self):
        from repro.control import HEALTH_GAUGE_VALUES

        managed = self._run()
        gauge = managed.registry.get("repro_health_state")
        assert gauge.value() == HEALTH_GAUGE_VALUES[managed.health]

    def test_tampered_mirror_detected(self):
        managed = self._run(ops=50)
        mirror = managed.registry.get("repro_events_total")
        mirror.inc(1, kind="batch_applied")
        with pytest.raises(AssertionError):
            managed.log.check_registry_consistency()

    def test_foreign_kind_detected(self):
        managed = self._run(ops=50)
        mirror = managed.registry.get("repro_events_total")
        mirror.inc(1, kind="never_recorded")
        with pytest.raises(AssertionError):
            managed.log.check_registry_consistency()

    def test_event_log_jsonl_round_trip(self):
        managed = self._run(ops=50)
        lines = managed.log.to_jsonl().splitlines()
        assert len(lines) == len(managed.log.events)
        docs = [json.loads(line) for line in lines]
        for doc, event in zip(docs, managed.log.events):
            assert doc["kind"] == event.kind
            assert doc["batch"] == event.batch
        # Deterministic: a same-seed run archives identically.
        assert self._run(ops=50).log.to_jsonl() == managed.log.to_jsonl()
