"""Unit tests for the HI-BST baseline."""

import pytest

from repro.algorithms import HiBst
from repro.algorithms.hibst import NODE_BITS, _common_bits, hibst_layout_from_size
from repro.chip import map_to_ideal_rmt
from repro.prefix import Fib, from_bitstring, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


class TestCommonBits:
    def test_basic(self):
        assert _common_bits(0b1010, 0b1010, 4) == 4
        assert _common_bits(0b1010, 0b1011, 4) == 3
        assert _common_bits(0b0000, 0b1000, 4) == 0


class TestLookup:
    def test_exhaustive_on_example(self, example_fib):
        hibst = HiBst(example_fib)
        for addr in range(256):
            assert hibst.lookup(addr) == example_fib.lookup(addr), addr

    def test_nested_prefix_fallback(self):
        """The predecessor-miss path: answer comes from an ancestor."""
        fib = Fib(32)
        fib.insert(P("10.0.0.0/8"), 1)
        fib.insert(P("10.0.0.64/26"), 2)
        hibst = HiBst(fib)
        # Predecessor of 10.0.0.255 is the /26, which does not cover it.
        assert hibst.lookup(A("10.0.0.255")) == 1
        assert hibst.lookup(A("10.0.0.70")) == 2

    def test_deep_nesting_chain(self):
        fib = Fib(32)
        for length, hop in [(4, 1), (8, 2), (12, 3), (16, 4)]:
            fib.insert(P(f"16.0.0.0/{length}"), hop)
        hibst = HiBst(fib)
        assert hibst.lookup(A("16.0.0.1")) == 4
        assert hibst.lookup(A("16.1.0.1")) == 3
        assert hibst.lookup(A("16.255.0.1")) == 2
        assert hibst.lookup(A("31.0.0.1")) == 1

    def test_matches_oracle_ipv6(self, ipv6_fib, ipv6_addresses):
        hibst = HiBst(ipv6_fib)
        for addr in ipv6_addresses:
            assert hibst.lookup(addr) == ipv6_fib.lookup(addr)

    def test_empty(self):
        hibst = HiBst(Fib(32))
        assert hibst.lookup(0) is None


class TestUpdates:
    def test_insert_delete(self, example_fib):
        hibst = HiBst(example_fib)
        extra = from_bitstring("1111", 8)
        hibst.insert(extra, 7)
        assert hibst.lookup(0b11110000) == 7
        hibst.delete(extra)
        for addr in range(256):
            assert hibst.lookup(addr) == example_fib.lookup(addr)
        with pytest.raises(KeyError):
            hibst.delete(extra)


class TestModel:
    def test_balanced_depth(self, ipv6_fib):
        hibst = HiBst(ipv6_fib)
        import math

        assert len(hibst.levels) == math.ceil(math.log2(len(ipv6_fib) + 1))

    def test_cram_program_equivalence(self, example_fib):
        hibst = HiBst(example_fib)
        for addr in range(0, 256, 3):
            assert hibst.cram_lookup(addr) == hibst.lookup(addr)

    def test_paper_scale_accounting(self):
        """Paper Table 9: ~219 pages / 18 stages at ~190k prefixes."""
        mapping = map_to_ideal_rmt(hibst_layout_from_size(190_000))
        assert 200 <= mapping.sram_pages <= 235
        assert mapping.stages == 18
        assert mapping.feasible

    def test_stage_ceiling_near_340k(self):
        """Paper §7.2: HI-BST tops out around 340k prefixes.

        Our exact ceiling is 339,244: levels 0..16 take one stage
        each, the full level 17 takes two, and level 18 fits one stage
        only up to 77,101 nodes.
        """
        assert map_to_ideal_rmt(hibst_layout_from_size(339_000)).feasible
        assert not map_to_ideal_rmt(hibst_layout_from_size(345_000)).feasible

    def test_node_bits_constant(self):
        assert NODE_BITS == 136
