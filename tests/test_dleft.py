"""Unit tests for the d-left hash table."""

import pytest

from repro.memory import DLEFT_OVERHEAD, DLeftHashTable, dleft_cells


class TestBasics:
    def test_insert_lookup(self):
        t = DLeftHashTable(25, 8, capacity=100)
        t.insert(12345, 7)
        assert t.lookup(12345) == 7
        assert t.lookup(54321) is None

    def test_overwrite_same_key(self):
        t = DLeftHashTable(25, 8, capacity=100)
        t.insert(1, 1)
        t.insert(1, 9)
        assert t.lookup(1) == 9
        assert len(t) == 1

    def test_delete(self):
        t = DLeftHashTable(25, 8, capacity=100)
        t.insert(1, 1)
        t.delete(1)
        assert t.lookup(1) is None
        assert len(t) == 0
        with pytest.raises(KeyError):
            t.delete(1)

    def test_key_width_enforced(self):
        t = DLeftHashTable(4, 8, capacity=16)
        with pytest.raises(ValueError):
            t.insert(16, 1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DLeftHashTable(8, 8, capacity=0)
        with pytest.raises(ValueError):
            DLeftHashTable(8, 8, capacity=10, d=0)
        with pytest.raises(ValueError):
            DLeftHashTable(8, 8, capacity=10, overhead=-0.5)


class TestLoadBehaviour:
    def test_no_overflow_at_design_load(self):
        """The paper's premise: ~80% fill with negligible collisions."""
        t = DLeftHashTable(25, 8, capacity=50_000)
        for i in range(50_000):
            t.insert((i * 2_654_435_761) % (1 << 25), i & 0xFF)
        assert t.overflow_count == 0
        assert 0.75 <= t.load_factor <= 0.81

    def test_all_keys_retrievable_at_load(self):
        t = DLeftHashTable(20, 8, capacity=5_000)
        keys = [(i * 48_271) % (1 << 20) for i in range(5_000)]
        for i, key in enumerate(set(keys)):
            t.insert(key, i & 0xFF)
        for i, key in enumerate(set(keys)):
            assert t.lookup(key) == i & 0xFF

    def test_overflow_counted_beyond_provisioning(self):
        # A deliberately tiny table must spill, not lose entries.
        t = DLeftHashTable(16, 8, capacity=8, d=1, bucket_cells=1, overhead=0.0)
        for i in range(64):
            t.insert(i * 131, i & 0xFF)
        assert len(t) == 64
        assert t.overflow_count > 0
        for i in range(64):
            assert t.lookup(i * 131) == i & 0xFF


class TestAccounting:
    def test_sram_bits_charges_provisioned_cells(self):
        t = DLeftHashTable(25, 8, capacity=1000)
        empty_bits = t.sram_bits()
        assert empty_bits == t.allocated_cells * 33
        t.insert(1, 1)
        assert t.sram_bits() == empty_bits  # provisioning, not population

    def test_dleft_cells_rule(self):
        assert dleft_cells(1000) == 1250
        assert dleft_cells(1000, overhead=0.0) == 1000
        assert DLEFT_OVERHEAD == 0.25


class TestAutoGrow:
    def test_growth_absorbs_overload(self):
        table = DLeftHashTable(20, 8, capacity=64, auto_grow=True)
        for i in range(1024):
            table.insert((i * 48_271) % (1 << 20), i & 0xFF)
        assert len(table) == 1024
        assert table.capacity >= 1024
        assert table.overflow_count == 0
        assert table.load_factor <= 0.81
        for i in range(1024):
            assert table.lookup((i * 48_271) % (1 << 20)) == i & 0xFF

    def test_provisioned_footprint_tracks_growth(self):
        table = DLeftHashTable(20, 8, capacity=64, auto_grow=True)
        before = table.sram_bits()
        for i in range(256):
            table.insert(i * 977, i & 0xFF)
        assert table.sram_bits() > before

    def test_no_growth_when_disabled(self):
        table = DLeftHashTable(20, 8, capacity=64, auto_grow=False)
        for i in range(512):
            table.insert(i * 977, i & 0xFF)
        assert table.capacity == 64
        assert len(table) == 512  # correctness kept via overflow
